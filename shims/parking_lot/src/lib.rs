//! Std-backed stand-in for the subset of
//! [parking_lot](https://docs.rs/parking_lot) that HyLite uses.
//!
//! The build environment has no network access to crates.io. This shim
//! keeps parking_lot's non-poisoning API (`lock()`/`read()`/`write()`
//! return guards directly) on top of `std::sync` primitives; a poisoned
//! lock is recovered rather than propagated, matching parking_lot's
//! behavior of not tracking poison at all.

use std::sync::{self, PoisonError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutex (parking_lot API shape).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock (parking_lot API shape).
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let l = RwLock::new(10);
        assert_eq!(*l.read(), 10);
        *l.write() += 5;
        assert_eq!(*l.read(), 15);
        assert_eq!(l.into_inner(), 15);
    }
}
