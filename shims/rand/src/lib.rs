//! Deterministic stand-in for the subset of [rand](https://docs.rs/rand)
//! that HyLite uses.
//!
//! The build environment has no network access to crates.io. This shim
//! implements `SeedableRng::seed_from_u64`, `Rng::gen`, `gen_bool` and
//! `gen_range` on top of the SplitMix64/xorshift* generators. It is
//! *not* cryptographically secure — it only needs to produce
//! well-distributed, reproducible streams for data generation and
//! randomized tests, which is exactly how the real crate is used here.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible from a random bit stream via `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value of `T` drawn from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — also used to expand seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The shim's standard generator: xoshiro256** seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 of any seed
        // cannot produce four zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
    /// Small generator alias (same engine in the shim).
    pub type SmallRng = super::StdRng;
}

/// Distribution helpers, mirroring `rand::distributions` loosely.
pub mod distributions {
    pub use super::{SampleRange, Standard};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
            let x = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn range_bounds_hit() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
