//! Sequential stand-in for the subset of [rayon](https://docs.rs/rayon)
//! that HyLite uses.
//!
//! The build environment has no network access to crates.io, so this
//! in-tree shim provides the same surface (`par_iter`, `par_iter_mut`,
//! `par_chunks`, `with_min_len`) backed by ordinary sequential
//! iterators. Call sites are written against rayon's API; swapping the
//! workspace dependency back to the real crate re-enables hardware
//! parallelism without touching any operator code.

pub mod prelude {
    /// `par_iter`-family entry points on slices (and, via deref, `Vec`).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon::slice::par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon::slice::par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon::slice::par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Adapter methods rayon exposes on indexed parallel iterators.
    /// Granularity hints are no-ops for a sequential iterator.
    pub trait IndexedParallelIterator: Iterator + Sized {
        /// No-op work-splitting hint (`rayon`'s `with_min_len`).
        fn with_min_len(self, _min: usize) -> Self {
            self
        }
        /// No-op work-splitting hint (`rayon`'s `with_max_len`).
        fn with_max_len(self, _max: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> IndexedParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_adapters_behave_like_std() {
        let v = [1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sums: Vec<i32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7]);
        let mut m = [1, 2, 3];
        let total: i32 = m
            .par_iter_mut()
            .enumerate()
            .with_min_len(64)
            .map(|(i, x)| {
                *x += i as i32;
                *x
            })
            .sum();
        assert_eq!(total, 1 + 3 + 5);
    }
}
