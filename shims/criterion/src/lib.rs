//! Minimal stand-in for the subset of
//! [criterion](https://docs.rs/criterion) that HyLite's benches use.
//!
//! The build environment has no network access to crates.io. This shim
//! keeps the bench files source-compatible (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) and measures
//! with a plain warm-up + timed-samples loop, reporting mean and min
//! per benchmark to stdout. It has no statistics engine, plotting, or
//! CLI filtering — swap the workspace dependency back to the real crate
//! for publication-grade numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => write!(f, "{}/{}", self.function, p),
            Some(p) => write!(f, "{p}"),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            function: s.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Mean/min of the measured samples, filled by `iter`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Run `f` through warm-up and measurement, recording per-call time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        let measure_end = Instant::now() + self.measurement;
        for done in 0.. {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed());
            if done + 1 >= self.sample_size && Instant::now() >= measure_end {
                break;
            }
            // Never loop unbounded on a sub-nanosecond body.
            if done >= self.sample_size * 1000 {
                break;
            }
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        self.result = Some((mean, min));
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((mean, min)) => println!("{}/{id}: mean {mean:?}, min {min:?}", self.name),
            None => println!("{}/{id}: no measurement (iter not called)", self.name),
        }
        self.criterion.benchmarks_run += 1;
    }

    /// End the group (kept for API compatibility; prints a separator).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// A driver with default settings.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_owned();
        let mut group = self.benchmark_group(name);
        group.bench_function("bench", &mut f);
        group.finish();
        self
    }

    /// Benchmarks executed so far (used by `criterion_main!`'s summary).
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Opaque-value hint, re-exported like criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group-function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
            eprintln!(
                "[criterion-shim] {} benchmark(s) complete",
                criterion.benchmarks_run()
            );
        }
    };
}

/// Declare `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            g.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
            g.bench_function("plain", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("sys", 42).to_string(), "sys/42");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
        assert_eq!(BenchmarkId::from("x").to_string(), "x");
    }
}
