//! Spam classification: the two-phase model-application workflow (§6.2).
//!
//! Trains a Gaussian Naive Bayes model on labeled messages, stores the
//! model as an ordinary relation, applies it to held-out data, and
//! computes the confusion matrix — everything in SQL.
//!
//! ```sh
//! cargo run --release --example spam_classification
//! ```

use hylite::{Database, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let db = Database::new();
    db.execute(
        "CREATE TABLE messages (id BIGINT, length DOUBLE, caps_ratio DOUBLE, \
         links DOUBLE, label VARCHAR)",
    )?;

    // Synthetic message features: spam is longer, shoutier, linkier.
    let mut rng = StdRng::seed_from_u64(7);
    let mut rows = Vec::new();
    for id in 0..4000i64 {
        let spam = rng.gen_bool(0.3);
        let (len, caps, links, label) = if spam {
            (
                120.0 + rng.gen::<f64>() * 80.0,
                0.3 + rng.gen::<f64>() * 0.4,
                2.0 + rng.gen::<f64>() * 3.0,
                "spam",
            )
        } else {
            (
                40.0 + rng.gen::<f64>() * 60.0,
                rng.gen::<f64>() * 0.15,
                rng.gen::<f64>() * 1.2,
                "ham",
            )
        };
        rows.push(format!(
            "({id}, {len:.2}, {caps:.3}, {links:.2}, '{label}')"
        ));
    }
    db.execute(&format!("INSERT INTO messages VALUES {}", rows.join(", ")))?;

    // Train on ids < 3000, hold out the rest — the split is plain SQL.
    db.execute(
        "CREATE TABLE model (class VARCHAR, attribute VARCHAR, prior DOUBLE, \
         mean DOUBLE, stddev DOUBLE)",
    )?;
    db.execute(
        "INSERT INTO model SELECT * FROM NAIVE_BAYES_TRAIN(\
            (SELECT length, caps_ratio, links, label FROM messages WHERE id < 3000), label)",
    )?;
    println!(
        "-- the stored model relation\n{}",
        db.execute("SELECT * FROM model ORDER BY class, attribute")?
            .to_table_string()
    );

    // Inspect the per-class statistics building block (CLASS_STATS).
    println!(
        "-- CLASS_STATS building block\n{}",
        db.execute(
            "SELECT * FROM CLASS_STATS(\
               (SELECT length, label FROM messages WHERE id < 3000), label)"
        )?
        .to_table_string()
    );

    // Apply the model to the held-out messages. The prediction operator
    // passes the feature columns through, so the confusion matrix joins
    // predictions back to ground truth on the (unique) feature vector —
    // a pure-SQL post-processing step on the operator's output.
    let confusion = db.execute(
        "SELECT m.label AS actual, p.label AS predicted, count(*) AS n \
         FROM messages m \
         JOIN NAIVE_BAYES_PREDICT((SELECT * FROM model), \
              (SELECT length, caps_ratio, links FROM messages WHERE id >= 3000)) p \
           ON m.length = p.length AND m.caps_ratio = p.caps_ratio AND m.links = p.links \
         WHERE m.id >= 3000 \
         GROUP BY m.label, p.label \
         ORDER BY 1, 2",
    )?;
    println!(
        "-- confusion matrix (held-out messages)\n{}",
        confusion.to_table_string()
    );

    // Accuracy, computed over the same join.
    let accuracy = db.execute(
        "SELECT avg(CASE WHEN m.label = p.label THEN 1.0 ELSE 0.0 END) AS accuracy \
         FROM messages m \
         JOIN NAIVE_BAYES_PREDICT((SELECT * FROM model), \
              (SELECT length, caps_ratio, links FROM messages WHERE id >= 3000)) p \
           ON m.length = p.length AND m.caps_ratio = p.caps_ratio AND m.links = p.links \
         WHERE m.id >= 3000",
    )?;
    let acc = accuracy.scalar()?.as_float()?;
    println!("accuracy: {acc:.3}");
    assert!(acc > 0.95, "well-separated classes should classify cleanly");
    Ok(())
}
