//! Social-network influencer ranking: PageRank over an LDBC-like graph.
//!
//! Shows the layer-4 operator (§6.3) next to the SQL-layer formulation
//! with the ITERATE construct (§5.1) on the same data — the comparison
//! behind Figure 5 (left) of the paper.
//!
//! ```sh
//! cargo run --release --example social_network_ranking
//! ```

use std::time::Instant;

use hylite::graph::{LdbcConfig, LdbcGraph};
use hylite::{Database, Result};
use hylite_common::{Chunk, ColumnVector};

fn main() -> Result<()> {
    let db = Database::new();

    // Generate a small LDBC-like person-knows-person graph and load it.
    let config = LdbcConfig {
        vertices: 2_000,
        edges: 20_000,
        triangle_fraction: 0.3,
        seed: 42,
    };
    let graph = LdbcGraph::generate(&config);
    println!(
        "generated LDBC-like graph: {} persons, {} directed edges",
        config.vertices,
        graph.num_edges()
    );

    db.execute("CREATE TABLE knows (src BIGINT, dest BIGINT)")?;
    {
        let table = db.catalog().get_table("knows")?;
        let chunk = Chunk::new(vec![
            ColumnVector::from_i64(graph.src.clone()),
            ColumnVector::from_i64(graph.dest.clone()),
        ]);
        let mut guard = table.write();
        guard.insert_chunk(chunk)?;
        guard.commit();
    }
    db.execute("CREATE TABLE persons (id BIGINT, name VARCHAR)")?;
    let names: Vec<String> = (0..config.vertices)
        .map(|i| format!("({}, 'person_{}')", 1000 + 7 * i as i64, i))
        .collect();
    db.execute(&format!("INSERT INTO persons VALUES {}", names.join(", ")))?;

    // Layer 4: the physical PageRank operator, joined with the persons
    // table and post-processed — one query.
    let start = Instant::now();
    let top = db.execute(
        "SELECT p.name, pr.rank \
         FROM PAGERANK((SELECT src, dest FROM knows), 0.85, 0.0001, 45) pr \
         JOIN persons p ON p.id = pr.vertex \
         ORDER BY pr.rank DESC LIMIT 5",
    )?;
    let operator_time = start.elapsed();
    println!("-- top influencers (HyPer-style operator, {operator_time:?})");
    println!("{}", top.to_table_string());

    // Layer 3: the same computation in SQL with the non-appending ITERATE
    // construct. The rank relation is recomputed (replaced) per round via
    // joins against the edge table — no CSR index, as §8.4.2 discusses.
    let start = Instant::now();
    let n = config.vertices as f64;
    let sql_top = db.execute(&format!(
        "SELECT p.name, r.rank \
         FROM ITERATE(\
            (SELECT v.id AS vertex, 1.0 / {n:.1} AS rank, 0 AS i \
             FROM (SELECT id FROM persons) v), \
            (SELECT e.dest AS vertex, \
                    0.15 / {n:.1} + 0.85 * sum(it.rank / deg.degree) AS rank, \
                    min(it.i) + 1 AS i \
             FROM iterate it \
             JOIN knows e ON e.src = it.vertex \
             JOIN (SELECT src, CAST(count(*) AS DOUBLE) AS degree FROM knows GROUP BY src) deg \
               ON deg.src = it.vertex \
             GROUP BY e.dest), \
            (SELECT i FROM iterate WHERE i >= 10)) r \
         JOIN persons p ON p.id = r.vertex \
         ORDER BY r.rank DESC LIMIT 5",
    ))?;
    let iterate_time = start.elapsed();
    println!("-- top influencers (ITERATE SQL formulation, {iterate_time:?})");
    println!("{}", sql_top.to_table_string());

    println!(
        "operator vs SQL speedup: {:.1}× (the paper's §8.4.2: the CSR-backed \
         operator wins on graphs because the SQL plan is join-dominated)",
        iterate_time.as_secs_f64() / operator_time.as_secs_f64()
    );
    Ok(())
}
