//! Quickstart: create tables, run SQL, and use every analytics operator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hylite::{Database, Result};

fn show(db: &Database, title: &str, sql: &str) -> Result<()> {
    let result = db.execute(sql)?;
    println!("-- {title}\n{sql}\n{}", result.to_table_string());
    Ok(())
}

fn main() -> Result<()> {
    let db = Database::new();

    // Plain SQL: DDL, DML, queries.
    db.execute("CREATE TABLE sensors (id BIGINT, room VARCHAR, temp DOUBLE)")?;
    db.execute(
        "INSERT INTO sensors VALUES \
         (1, 'lab', 21.5), (2, 'lab', 22.0), (3, 'office', 19.5), \
         (4, 'office', 25.0), (5, 'server', 31.0), (6, 'server', 32.5)",
    )?;
    show(
        &db,
        "aggregation",
        "SELECT room, count(*) AS sensors, avg(temp) AS avg_temp \
         FROM sensors GROUP BY room ORDER BY room",
    )?;

    // The paper's ITERATE construct (Listing 1): the smallest three-digit
    // multiple of seven.
    show(
        &db,
        "ITERATE (paper Listing 1)",
        "SELECT * FROM ITERATE ((SELECT 7 \"x\"), (SELECT x+7 FROM iterate), \
         (SELECT x FROM iterate WHERE x >= 100))",
    )?;

    // k-Means with a user-defined lambda distance (paper Listing 3).
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)")?;
    db.execute(
        "INSERT INTO pts VALUES (0.1, 0.2), (0.0, 0.1), (0.3, 0.0), \
         (5.0, 5.1), (5.2, 4.9), (4.8, 5.0)",
    )?;
    show(
        &db,
        "KMEANS with lambda (paper Listing 3)",
        "SELECT * FROM KMEANS((SELECT x, y FROM pts), \
         (SELECT x, y FROM pts LIMIT 2), \
         LAMBDA(a, b) (a.x - b.x)^2 + (a.y - b.y)^2, 10)",
    )?;

    // PageRank (paper Listing 2), composed with relational post-processing.
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")?;
    db.execute("INSERT INTO edges VALUES (1,2),(2,1),(3,1),(4,1),(4,2),(2,3)")?;
    show(
        &db,
        "PAGERANK + ORDER BY (paper Listing 2)",
        "SELECT * FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0001) \
         ORDER BY rank DESC",
    )?;

    // Naive Bayes: train a model, store it, apply it — all in SQL.
    db.execute("CREATE TABLE train (len DOUBLE, caps DOUBLE, label VARCHAR)")?;
    db.execute(
        "INSERT INTO train VALUES (12, 0.1, 'ham'), (15, 0.2, 'ham'), \
         (10, 0.0, 'ham'), (45, 3.0, 'spam'), (50, 2.5, 'spam'), (40, 2.8, 'spam')",
    )?;
    db.execute(
        "CREATE TABLE model (class VARCHAR, attribute VARCHAR, \
         prior DOUBLE, mean DOUBLE, stddev DOUBLE)",
    )?;
    db.execute(
        "INSERT INTO model SELECT * FROM \
         NAIVE_BAYES_TRAIN((SELECT len, caps, label FROM train), label)",
    )?;
    show(
        &db,
        "NAIVE_BAYES_PREDICT",
        "SELECT * FROM NAIVE_BAYES_PREDICT((SELECT * FROM model), \
         (SELECT 11.0 len, 0.1 caps UNION ALL SELECT 47.0, 2.9))",
    )?;

    // Transactions: analytics see a consistent snapshot.
    db.execute("BEGIN")?;
    db.execute("INSERT INTO sensors VALUES (7, 'lab', 100.0)")?;
    let mut other = db.session();
    let visible = other.execute("SELECT count(*) FROM sensors")?.scalar()?;
    println!("-- another session during the open transaction sees {visible} rows");
    db.execute("ROLLBACK")?;

    // EXPLAIN shows the optimized plan with analytics operators inline.
    show(
        &db,
        "EXPLAIN",
        "EXPLAIN SELECT * FROM PAGERANK((SELECT src, dest FROM edges), 0.85, 0.0) \
         ORDER BY rank DESC LIMIT 3",
    )?;

    Ok(())
}
