//! The ITERATE construct as a general-purpose building block (§5.1).
//!
//! Three iterative computations expressed directly in SQL, plus the
//! memory comparison against recursive CTEs that motivates the operator.
//!
//! ```sh
//! cargo run --release --example iterative_sql
//! ```

use hylite::{Database, Result};

fn main() -> Result<()> {
    let db = Database::new();

    // 1. The paper's Listing 1: smallest three-digit multiple of seven.
    let r = db.execute(
        "SELECT * FROM ITERATE ((SELECT 7 \"x\"), (SELECT x+7 FROM iterate), \
         (SELECT x FROM iterate WHERE x >= 100))",
    )?;
    println!("smallest three-digit multiple of 7: {}", r.scalar()?);

    // 2. Newton's method for sqrt(2), entirely in SQL: iterate
    //    x ← (x + 2/x)/2 until |x² − 2| < 1e-12.
    let r = db.execute(
        "SELECT * FROM ITERATE (\
            (SELECT 1.0 AS x), \
            (SELECT (x + 2.0 / x) / 2.0 FROM iterate), \
            (SELECT x FROM iterate WHERE abs(x * x - 2.0) < 0.000000000001))",
    )?;
    let sqrt2 = r.scalar()?.as_float()?;
    println!(
        "Newton sqrt(2) = {sqrt2} (error {:e})",
        (sqrt2 - 2f64.sqrt()).abs()
    );

    // 3. Collatz trajectory length of 27 — a whole working *relation*
    //    (value, steps) is replaced each round.
    let r = db.execute(
        "SELECT steps FROM ITERATE (\
            (SELECT 27 AS value, 0 AS steps), \
            (SELECT CASE WHEN value % 2 = 0 THEN value / 2 ELSE 3 * value + 1 END, \
                    steps + 1 FROM iterate), \
            (SELECT value FROM iterate WHERE value = 1))",
    )?;
    println!("Collatz(27) reaches 1 after {} steps", r.value(0, 0)?);

    // 4. Gradient descent in SQL: minimize f(w) = (w-3)² from w=0 with
    //    learning rate 0.25; stop when the gradient is tiny.
    let r = db.execute(
        "SELECT * FROM ITERATE (\
            (SELECT 0.0 AS w), \
            (SELECT w - 0.25 * 2.0 * (w - 3.0) FROM iterate), \
            (SELECT w FROM iterate WHERE abs(2.0 * (w - 3.0)) < 0.0001))",
    )?;
    println!("gradient descent minimizer ≈ {}", r.scalar()?);

    // 5. The memory argument (§5.1): a 1000-round loop over a 1000-row
    //    relation. ITERATE keeps ≤ 2·n rows alive; the recursive CTE
    //    accumulates n·i.
    db.execute("CREATE TABLE base (v BIGINT)")?;
    let rows: Vec<String> = (0..1000).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO base VALUES {}", rows.join(",")))?;

    let it = db.execute(
        "SELECT count(*) FROM ITERATE (\
            (SELECT v, 0 AS i FROM base), \
            (SELECT v + 1, i + 1 FROM iterate), \
            (SELECT i FROM iterate WHERE i >= 1000))",
    )?;
    println!(
        "ITERATE: result rows = {}, peak intermediate rows = {} (≤ 2n = 2000)",
        it.value(0, 0)?,
        it.stats.peak_working_rows
    );

    let cte = db.execute(
        "WITH RECURSIVE r (v, i) AS (\
            SELECT v, 0 FROM base \
            UNION ALL \
            SELECT v + 1, i + 1 FROM r WHERE i < 1000) \
         SELECT count(*) FROM r",
    )?;
    println!(
        "recursive CTE: result rows = {}, peak intermediate rows = {} (n·i ≈ 1,001,000)",
        cte.value(0, 0)?,
        cte.stats.peak_working_rows
    );
    println!(
        "memory ratio CTE/ITERATE = {:.0}×",
        cte.stats.peak_working_rows as f64 / it.stats.peak_working_rows as f64
    );
    Ok(())
}
