//! Customer segmentation: k-Means vs k-Medians via lambda distances.
//!
//! Demonstrates the paper's §7: one tuned operator, many algorithms —
//! the distance lambda turns KMEANS into k-Medians (L1) or a custom
//! weighted metric, with all pre/post-processing in the same SQL query.
//!
//! ```sh
//! cargo run --release --example customer_segmentation
//! ```

use hylite::{Database, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let db = Database::new();
    db.execute(
        "CREATE TABLE customers (id BIGINT, recency DOUBLE, frequency DOUBLE, \
         monetary DOUBLE, churned BOOLEAN)",
    )?;

    // Three synthetic behavioural segments + a few outliers.
    let mut rng = StdRng::seed_from_u64(2017);
    let mut values = Vec::new();
    let segments: [(f64, f64, f64); 3] = [
        (5.0, 40.0, 900.0),  // loyal big spenders
        (30.0, 10.0, 150.0), // occasional shoppers
        (90.0, 1.0, 20.0),   // churn-risk
    ];
    for id in 0..3000i64 {
        let (r, f, m) = segments[(id % 3) as usize];
        values.push(format!(
            "({id}, {:.2}, {:.2}, {:.2}, {})",
            r + rng.gen::<f64>() * 8.0,
            f + rng.gen::<f64>() * 4.0,
            m + rng.gen::<f64>() * 60.0,
            id % 3 == 2 && rng.gen_bool(0.5),
        ));
    }
    // Outliers with extreme monetary values — these distort L2 means.
    for id in 3000..3010i64 {
        values.push(format!("({id}, 10.0, 20.0, 100000.0, FALSE)"));
    }
    db.execute(&format!(
        "INSERT INTO customers VALUES {}",
        values.join(", ")
    ))?;

    // Pre-processing (filter churned customers) happens in the same
    // query as the clustering; the centers come from a subquery too.
    let kmeans = db.execute(
        "SELECT * FROM KMEANS(\
            (SELECT recency, frequency, monetary FROM customers WHERE NOT churned), \
            (SELECT recency, frequency, monetary FROM customers WHERE NOT churned LIMIT 3), \
            3)",
    )?;
    println!(
        "-- k-Means (default squared-L2 lambda)\n{}",
        kmeans.to_table_string()
    );

    // k-Medians-style clustering: just swap in an L1 lambda. The outliers
    // drag L2 means far more than L1.
    let kmedians = db.execute(
        "SELECT * FROM KMEANS(\
            (SELECT recency, frequency, monetary FROM customers WHERE NOT churned), \
            (SELECT recency, frequency, monetary FROM customers WHERE NOT churned LIMIT 3), \
            LAMBDA(a, b) abs(a.recency - b.recency) + abs(a.frequency - b.frequency) \
                        + abs(a.monetary - b.monetary), \
            3)",
    )?;
    println!("-- k-Medians via L1 lambda\n{}", kmedians.to_table_string());

    // A domain-specific metric: recency matters 100× more than money.
    let weighted = db.execute(
        "SELECT * FROM KMEANS(\
            (SELECT recency, frequency, monetary FROM customers WHERE NOT churned), \
            (SELECT recency, frequency, monetary FROM customers WHERE NOT churned LIMIT 3), \
            λ(a, b) 100.0 * (a.recency - b.recency)^2 + (a.frequency - b.frequency)^2 \
                    + 0.0001 * (a.monetary - b.monetary)^2, \
            5)",
    )?;
    println!("-- custom weighted lambda\n{}", weighted.to_table_string());

    // Model application: assign customers to the learned segments and
    // post-process relationally — per-segment revenue, in one query.
    db.execute("CREATE TABLE segments (recency DOUBLE, frequency DOUBLE, monetary DOUBLE)")?;
    db.execute(
        "INSERT INTO segments SELECT recency, frequency, monetary FROM KMEANS(\
            (SELECT recency, frequency, monetary FROM customers WHERE NOT churned), \
            (SELECT recency, frequency, monetary FROM customers WHERE NOT churned LIMIT 3), \
            3)",
    )?;
    let report = db.execute(
        "SELECT cluster_id, count(*) AS customers, sum(monetary) AS revenue, \
                avg(recency) AS avg_recency \
         FROM KMEANS_ASSIGN(\
            (SELECT recency, frequency, monetary FROM customers WHERE NOT churned), \
            (SELECT recency, frequency, monetary FROM segments)) \
         GROUP BY cluster_id ORDER BY revenue DESC",
    )?;
    println!(
        "-- per-segment revenue (KMEANS_ASSIGN + GROUP BY)\n{}",
        report.to_table_string()
    );
    Ok(())
}
