//! Bound scalar expressions and their vectorized evaluation.

use std::fmt;

use hylite_common::{Bitmap, Chunk, ColumnVector, DataType, HyError, Result, Value};

use crate::functions::ScalarFunc;
use crate::kernels::{self, merge_validity};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^` — power, always DOUBLE.
    Pow,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND` (three-valued)
    And,
    /// `OR` (three-valued)
    Or,
}

impl BinaryOp {
    /// Whether this is `+ - * / % ^`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Add
                | BinaryOp::Sub
                | BinaryOp::Mul
                | BinaryOp::Div
                | BinaryOp::Mod
                | BinaryOp::Pow
        )
    }

    /// Whether this is a comparison.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Pow => "^",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT (three-valued: NOT NULL = NULL).
    Not,
}

/// A bound, typed scalar expression. Column references are indices into
/// the input chunk. Constructors perform type checking so that a built
/// tree is always well-typed.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Input column by index.
    Column {
        /// Index into the input chunk.
        index: usize,
        /// The column's type.
        data_type: DataType,
    },
    /// Constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
        /// Pre-computed result type.
        data_type: DataType,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        input: Box<ScalarExpr>,
    },
    /// Built-in scalar function call.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<ScalarExpr>,
        /// Pre-computed result type.
        data_type: DataType,
    },
    /// Searched CASE: first branch whose condition is true wins.
    Case {
        /// `(condition, result)` pairs.
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        /// `ELSE` result (NULL if absent).
        else_expr: Option<Box<ScalarExpr>>,
        /// Pre-computed result type.
        data_type: DataType,
    },
    /// Explicit cast.
    Cast {
        /// Operand.
        input: Box<ScalarExpr>,
        /// Target type.
        target: DataType,
    },
    /// `IS NULL` / `IS NOT NULL`.
    IsNull {
        /// Operand.
        input: Box<ScalarExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)` over literal values.
    InList {
        /// Tested expression.
        input: Box<ScalarExpr>,
        /// Candidate literals (pre-cast to the input type).
        list: Vec<Value>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr LIKE pattern`.
    Like {
        /// Tested string expression.
        input: Box<ScalarExpr>,
        /// LIKE pattern with `%`/`_` wildcards.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

impl ScalarExpr {
    /// Column reference.
    pub fn column(index: usize, data_type: DataType) -> ScalarExpr {
        ScalarExpr::Column { index, data_type }
    }

    /// Literal value.
    pub fn literal(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    /// Type-checked binary expression.
    pub fn binary(op: BinaryOp, left: ScalarExpr, right: ScalarExpr) -> Result<ScalarExpr> {
        let (lt, rt) = (left.data_type(), right.data_type());
        let data_type = if op.is_arithmetic() {
            let common = lt.common_type(rt)?;
            if !common.is_numeric() && common != DataType::Null {
                return Err(HyError::Type(format!(
                    "operator {} requires numeric operands, got {lt} and {rt}",
                    op.symbol()
                )));
            }
            if op == BinaryOp::Pow {
                DataType::Float64
            } else {
                common
            }
        } else if op.is_comparison() {
            // Validates comparability.
            lt.common_type(rt)?;
            DataType::Bool
        } else {
            // AND / OR
            for t in [lt, rt] {
                if t != DataType::Bool && t != DataType::Null {
                    return Err(HyError::Type(format!(
                        "operator {} requires boolean operands, got {t}",
                        op.symbol()
                    )));
                }
            }
            DataType::Bool
        };
        Ok(ScalarExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
            data_type,
        })
    }

    /// Type-checked unary expression.
    pub fn unary(op: UnaryOp, input: ScalarExpr) -> Result<ScalarExpr> {
        let t = input.data_type();
        match op {
            UnaryOp::Neg if !t.is_numeric() && t != DataType::Null => {
                return Err(HyError::Type(format!("cannot negate {t}")))
            }
            UnaryOp::Not if t != DataType::Bool && t != DataType::Null => {
                return Err(HyError::Type(format!("NOT requires boolean, got {t}")))
            }
            _ => {}
        }
        Ok(ScalarExpr::Unary {
            op,
            input: Box::new(input),
        })
    }

    /// Type-checked function call.
    pub fn func(func: ScalarFunc, args: Vec<ScalarExpr>) -> Result<ScalarExpr> {
        let arg_types: Vec<DataType> = args.iter().map(ScalarExpr::data_type).collect();
        let data_type = func.result_type(&arg_types)?;
        Ok(ScalarExpr::Func {
            func,
            args,
            data_type,
        })
    }

    /// Type-checked searched CASE.
    pub fn case(
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        else_expr: Option<ScalarExpr>,
    ) -> Result<ScalarExpr> {
        if branches.is_empty() {
            return Err(HyError::Bind("CASE requires at least one WHEN".into()));
        }
        let mut data_type = DataType::Null;
        for (cond, result) in &branches {
            let ct = cond.data_type();
            if ct != DataType::Bool && ct != DataType::Null {
                return Err(HyError::Type(format!(
                    "CASE condition must be boolean, got {ct}"
                )));
            }
            data_type = data_type.common_type(result.data_type())?;
        }
        if let Some(e) = &else_expr {
            data_type = data_type.common_type(e.data_type())?;
        }
        if data_type == DataType::Null {
            data_type = DataType::Int64;
        }
        Ok(ScalarExpr::Case {
            branches,
            else_expr: else_expr.map(Box::new),
            data_type,
        })
    }

    /// The expression's result type.
    pub fn data_type(&self) -> DataType {
        match self {
            ScalarExpr::Column { data_type, .. } => *data_type,
            ScalarExpr::Literal(v) => v.data_type(),
            ScalarExpr::Binary { data_type, .. } => *data_type,
            ScalarExpr::Unary { op, input } => match op {
                UnaryOp::Neg => input.data_type(),
                UnaryOp::Not => DataType::Bool,
            },
            ScalarExpr::Func { data_type, .. } => *data_type,
            ScalarExpr::Case { data_type, .. } => *data_type,
            ScalarExpr::Cast { target, .. } => *target,
            ScalarExpr::IsNull { .. } | ScalarExpr::InList { .. } | ScalarExpr::Like { .. } => {
                DataType::Bool
            }
        }
    }

    /// Indices of all referenced input columns (for projection pruning).
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Column { index, .. } => out.push(*index),
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            ScalarExpr::Unary { input, .. }
            | ScalarExpr::Cast { input, .. }
            | ScalarExpr::IsNull { input, .. }
            | ScalarExpr::InList { input, .. }
            | ScalarExpr::Like { input, .. } => input.referenced_columns(out),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            ScalarExpr::Case {
                branches,
                else_expr,
                ..
            } => {
                for (c, r) in branches {
                    c.referenced_columns(out);
                    r.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
        }
    }

    /// Rewrite all column indices through `mapping` (old index → new index).
    /// Used by the optimizer when columns are pruned or reordered.
    pub fn remap_columns(&mut self, mapping: &[usize]) {
        match self {
            ScalarExpr::Column { index, .. } => *index = mapping[*index],
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.remap_columns(mapping);
                right.remap_columns(mapping);
            }
            ScalarExpr::Unary { input, .. }
            | ScalarExpr::Cast { input, .. }
            | ScalarExpr::IsNull { input, .. }
            | ScalarExpr::InList { input, .. }
            | ScalarExpr::Like { input, .. } => input.remap_columns(mapping),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.remap_columns(mapping);
                }
            }
            ScalarExpr::Case {
                branches,
                else_expr,
                ..
            } => {
                for (c, r) in branches {
                    c.remap_columns(mapping);
                    r.remap_columns(mapping);
                }
                if let Some(e) = else_expr {
                    e.remap_columns(mapping);
                }
            }
        }
    }

    /// Vectorized evaluation over a chunk, producing one column with
    /// `chunk.len()` rows.
    pub fn eval(&self, chunk: &Chunk) -> Result<ColumnVector> {
        let n = chunk.len();
        match self {
            ScalarExpr::Column { index, .. } => Ok(chunk.column(*index).clone()),
            ScalarExpr::Literal(v) => broadcast(v, n),
            ScalarExpr::Binary {
                op, left, right, ..
            } => {
                let l = left.eval(chunk)?;
                let r = right.eval(chunk)?;
                eval_binary(*op, &l, &r)
            }
            ScalarExpr::Unary { op, input } => {
                let c = input.eval(chunk)?;
                match op {
                    UnaryOp::Neg => match &c {
                        ColumnVector::Int64 { data, validity } => Ok(ColumnVector::Int64 {
                            data: data.iter().map(|v| v.wrapping_neg()).collect(),
                            validity: validity.clone(),
                        }),
                        ColumnVector::Float64 { data, validity } => Ok(ColumnVector::Float64 {
                            data: data.iter().map(|v| -v).collect(),
                            validity: validity.clone(),
                        }),
                        other => Err(HyError::Type(format!(
                            "cannot negate {}",
                            other.data_type()
                        ))),
                    },
                    UnaryOp::Not => {
                        let b = c.as_bool()?;
                        Ok(ColumnVector::Bool {
                            data: b.iter().map(|v| !v).collect(),
                            validity: c.validity().cloned(),
                        })
                    }
                }
            }
            ScalarExpr::Func { func, args, .. } => {
                let cols: Vec<ColumnVector> =
                    args.iter().map(|a| a.eval(chunk)).collect::<Result<_>>()?;
                func.eval(&cols)
            }
            ScalarExpr::Case {
                branches,
                else_expr,
                data_type,
            } => {
                // Evaluate all branches over the chunk, then select
                // row-wise: the cost model is fine because CASE inputs in
                // analytical queries are cheap scalar columns.
                let conds: Vec<ColumnVector> = branches
                    .iter()
                    .map(|(c, _)| c.eval(chunk))
                    .collect::<Result<_>>()?;
                let results: Vec<ColumnVector> = branches
                    .iter()
                    .map(|(_, r)| r.eval(chunk)?.cast_to(*data_type))
                    .collect::<Result<_>>()?;
                let else_col = match else_expr {
                    Some(e) => Some(e.eval(chunk)?.cast_to(*data_type)?),
                    None => None,
                };
                let mut out = ColumnVector::empty(*data_type);
                for i in 0..n {
                    let mut v = Value::Null;
                    let mut matched = false;
                    for (b, cond) in conds.iter().enumerate() {
                        if cond.is_valid(i) && cond.as_bool()?[i] {
                            v = results[b].value(i);
                            matched = true;
                            break;
                        }
                    }
                    if !matched {
                        if let Some(e) = &else_col {
                            v = e.value(i);
                        }
                    }
                    out.push_value(&v)?;
                }
                Ok(out)
            }
            ScalarExpr::Cast { input, target } => input.eval(chunk)?.cast_to(*target),
            ScalarExpr::IsNull { input, negated } => {
                let c = input.eval(chunk)?;
                let data: Vec<bool> = (0..n)
                    .map(|i| {
                        let isnull = !c.is_valid(i);
                        if *negated {
                            !isnull
                        } else {
                            isnull
                        }
                    })
                    .collect();
                Ok(ColumnVector::from_bool(data))
            }
            ScalarExpr::InList {
                input,
                list,
                negated,
            } => {
                let c = input.eval(chunk)?;
                let mut data = Vec::with_capacity(n);
                let mut validity = Bitmap::filled(n, true);
                let mut any_null = false;
                for i in 0..n {
                    let v = c.value(i);
                    if v.is_null() {
                        data.push(false);
                        validity.set(i, false);
                        any_null = true;
                        continue;
                    }
                    let hit = list.iter().any(|cand| {
                        !cand.is_null() && v.sort_cmp(cand) == std::cmp::Ordering::Equal
                    });
                    data.push(hit != *negated);
                }
                Ok(ColumnVector::Bool {
                    data,
                    validity: any_null.then_some(validity),
                })
            }
            ScalarExpr::Like {
                input,
                pattern,
                negated,
            } => {
                let c = input.eval(chunk)?;
                let s = c.as_varchar()?;
                let data: Vec<bool> = s
                    .iter()
                    .map(|v| kernels::like_match(v, pattern) != *negated)
                    .collect();
                Ok(ColumnVector::Bool {
                    data,
                    validity: c.validity().cloned(),
                })
            }
        }
    }

    /// Evaluate on a single materialized row (used by the UDF baseline and
    /// for constant folding: fold by evaluating over an empty-row chunk).
    pub fn eval_row(&self, row: &hylite_common::Row) -> Result<Value> {
        // Build a one-row chunk lazily; row-at-a-time evaluation is only
        // used off the hot path. Column types come from the expression's
        // own column references (a NULL cell carries no type information).
        let mut max_col = Vec::new();
        self.referenced_columns(&mut max_col);
        let width = max_col.iter().max().map_or(0, |m| m + 1).max(row.len());
        let mut padded: Vec<Value> = row.values().to_vec();
        padded.resize(width, Value::Null);
        let mut col_types: Vec<DataType> = padded.iter().map(Value::data_type).collect();
        let mut typed_refs = Vec::new();
        self.referenced_column_types(&mut typed_refs);
        for (index, dt) in typed_refs {
            // The expression's static type wins over an untyped NULL cell;
            // a genuine value/type mismatch will surface in push_value.
            if col_types[index] == DataType::Null {
                col_types[index] = dt;
            }
        }
        let chunk = Chunk::from_rows(&col_types, &[padded])?;
        let col = self.eval(&chunk)?;
        Ok(col.value(0))
    }

    /// Collect `(column index, declared type)` for every column reference.
    pub fn referenced_column_types(&self, out: &mut Vec<(usize, DataType)>) {
        match self {
            ScalarExpr::Column { index, data_type } => out.push((*index, *data_type)),
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.referenced_column_types(out);
                right.referenced_column_types(out);
            }
            ScalarExpr::Unary { input, .. }
            | ScalarExpr::Cast { input, .. }
            | ScalarExpr::IsNull { input, .. }
            | ScalarExpr::InList { input, .. }
            | ScalarExpr::Like { input, .. } => input.referenced_column_types(out),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.referenced_column_types(out);
                }
            }
            ScalarExpr::Case {
                branches,
                else_expr,
                ..
            } => {
                for (c, r) in branches {
                    c.referenced_column_types(out);
                    r.referenced_column_types(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_column_types(out);
                }
            }
        }
    }

    /// True when the expression references no columns (a constant).
    pub fn is_constant(&self) -> bool {
        let mut cols = Vec::new();
        self.referenced_columns(&mut cols);
        cols.is_empty()
    }
}

/// Evaluate a binary operator over two columns.
pub fn eval_binary(op: BinaryOp, l: &ColumnVector, r: &ColumnVector) -> Result<ColumnVector> {
    use BinaryOp::*;
    match op {
        And => {
            let validity_l = l.validity().cloned();
            let validity_r = r.validity().cloned();
            Ok(kernels::and_3vl(
                l.as_bool()?,
                validity_l.as_ref(),
                r.as_bool()?,
                validity_r.as_ref(),
            ))
        }
        Or => {
            let validity_l = l.validity().cloned();
            let validity_r = r.validity().cloned();
            Ok(kernels::or_3vl(
                l.as_bool()?,
                validity_l.as_ref(),
                r.as_bool()?,
                validity_r.as_ref(),
            ))
        }
        _ => {
            let common = l.data_type().common_type(r.data_type())?;
            let common = if op == Pow { DataType::Float64 } else { common };
            let lc = l.cast_to(common)?;
            let rc = r.cast_to(common)?;
            let validity = merge_validity(lc.validity(), rc.validity());
            if op.is_comparison() {
                let sym = op.symbol();
                match common {
                    DataType::Int64 => kernels::compare(sym, lc.as_i64()?, rc.as_i64()?, validity),
                    DataType::Float64 => {
                        kernels::compare(sym, lc.as_f64()?, rc.as_f64()?, validity)
                    }
                    DataType::Bool => kernels::compare(sym, lc.as_bool()?, rc.as_bool()?, validity),
                    DataType::Varchar => {
                        kernels::compare(sym, lc.as_varchar()?, rc.as_varchar()?, validity)
                    }
                    DataType::Null => Ok(all_null_bool(lc.len())),
                }
            } else {
                let sym = op.symbol();
                match common {
                    DataType::Int64 => {
                        kernels::arith_i64(sym, lc.as_i64()?, rc.as_i64()?, validity)
                    }
                    DataType::Float64 => {
                        kernels::arith_f64(sym, lc.as_f64()?, rc.as_f64()?, validity)
                    }
                    DataType::Null => {
                        let mut c = ColumnVector::empty(DataType::Int64);
                        for _ in 0..lc.len() {
                            c.push_null();
                        }
                        Ok(c)
                    }
                    other => Err(HyError::Type(format!(
                        "operator {sym} not defined for {other}"
                    ))),
                }
            }
        }
    }
}

fn all_null_bool(n: usize) -> ColumnVector {
    let mut c = ColumnVector::empty(DataType::Bool);
    for _ in 0..n {
        c.push_null();
    }
    c
}

/// Broadcast a scalar into an `n`-row column.
pub fn broadcast(v: &Value, n: usize) -> Result<ColumnVector> {
    match v {
        Value::Null => {
            let mut c = ColumnVector::empty(DataType::Int64);
            for _ in 0..n {
                c.push_null();
            }
            Ok(c)
        }
        Value::Int(x) => Ok(ColumnVector::from_i64(vec![*x; n])),
        Value::Float(x) => Ok(ColumnVector::from_f64(vec![*x; n])),
        Value::Bool(x) => Ok(ColumnVector::from_bool(vec![*x; n])),
        Value::Str(x) => Ok(ColumnVector::from_str(vec![x.clone(); n])),
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column { index, .. } => write!(f, "#{index}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Binary {
                op, left, right, ..
            } => write!(f, "({left} {} {right})", op.symbol()),
            ScalarExpr::Unary { op, input } => match op {
                UnaryOp::Neg => write!(f, "(-{input})"),
                UnaryOp::Not => write!(f, "(NOT {input})"),
            },
            ScalarExpr::Func { func, args, .. } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Case {
                branches,
                else_expr,
                ..
            } => {
                write!(f, "CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            ScalarExpr::Cast { input, target } => write!(f, "CAST({input} AS {target})"),
            ScalarExpr::IsNull { input, negated } => {
                write!(f, "({input} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::InList {
                input,
                list,
                negated,
            } => {
                write!(f, "({input} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            ScalarExpr::Like {
                input,
                pattern,
                negated,
            } => write!(
                f,
                "({input} {}LIKE '{pattern}')",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> Chunk {
        Chunk::new(vec![
            ColumnVector::from_i64(vec![1, 2, 3]),
            ColumnVector::from_f64(vec![0.5, 1.5, 2.5]),
            ColumnVector::from_str(vec!["apple", "banana", "avocado"]),
        ])
    }

    fn col(i: usize, t: DataType) -> ScalarExpr {
        ScalarExpr::column(i, t)
    }

    #[test]
    fn arithmetic_promotes() {
        let e = ScalarExpr::binary(
            BinaryOp::Add,
            col(0, DataType::Int64),
            col(1, DataType::Float64),
        )
        .unwrap();
        assert_eq!(e.data_type(), DataType::Float64);
        let c = e.eval(&chunk()).unwrap();
        assert_eq!(c.as_f64().unwrap(), &[1.5, 3.5, 5.5]);
    }

    #[test]
    fn power_is_float() {
        let e = ScalarExpr::binary(
            BinaryOp::Pow,
            col(0, DataType::Int64),
            ScalarExpr::literal(2i64),
        )
        .unwrap();
        assert_eq!(e.data_type(), DataType::Float64);
        let c = e.eval(&chunk()).unwrap();
        assert_eq!(c.as_f64().unwrap(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn comparison_and_logic() {
        let gt = ScalarExpr::binary(
            BinaryOp::Gt,
            col(0, DataType::Int64),
            ScalarExpr::literal(1i64),
        )
        .unwrap();
        let lt = ScalarExpr::binary(
            BinaryOp::Lt,
            col(1, DataType::Float64),
            ScalarExpr::literal(2.0f64),
        )
        .unwrap();
        let and = ScalarExpr::binary(BinaryOp::And, gt, lt).unwrap();
        let c = and.eval(&chunk()).unwrap();
        assert_eq!(c.as_bool().unwrap(), &[false, true, false]);
    }

    #[test]
    fn type_errors_at_construction() {
        assert!(ScalarExpr::binary(
            BinaryOp::Add,
            col(2, DataType::Varchar),
            ScalarExpr::literal(1i64)
        )
        .is_err());
        assert!(ScalarExpr::binary(
            BinaryOp::And,
            col(0, DataType::Int64),
            ScalarExpr::literal(true)
        )
        .is_err());
        assert!(ScalarExpr::unary(UnaryOp::Not, col(0, DataType::Int64)).is_err());
    }

    #[test]
    fn case_expression() {
        let e = ScalarExpr::case(
            vec![
                (
                    ScalarExpr::binary(
                        BinaryOp::Eq,
                        col(0, DataType::Int64),
                        ScalarExpr::literal(1i64),
                    )
                    .unwrap(),
                    ScalarExpr::literal("one"),
                ),
                (
                    ScalarExpr::binary(
                        BinaryOp::Eq,
                        col(0, DataType::Int64),
                        ScalarExpr::literal(2i64),
                    )
                    .unwrap(),
                    ScalarExpr::literal("two"),
                ),
            ],
            Some(ScalarExpr::literal("many")),
        )
        .unwrap();
        let c = e.eval(&chunk()).unwrap();
        assert_eq!(
            c.as_varchar().unwrap(),
            &["one".to_string(), "two".to_string(), "many".to_string()]
        );
    }

    #[test]
    fn case_without_else_yields_null() {
        let e = ScalarExpr::case(
            vec![(
                ScalarExpr::binary(
                    BinaryOp::Eq,
                    col(0, DataType::Int64),
                    ScalarExpr::literal(1i64),
                )
                .unwrap(),
                ScalarExpr::literal(10i64),
            )],
            None,
        )
        .unwrap();
        let c = e.eval(&chunk()).unwrap();
        assert_eq!(c.value(0), Value::Int(10));
        assert!(c.value(1).is_null());
    }

    #[test]
    fn in_list_and_like() {
        let e = ScalarExpr::InList {
            input: Box::new(col(0, DataType::Int64)),
            list: vec![Value::Int(1), Value::Int(3)],
            negated: false,
        };
        assert_eq!(
            e.eval(&chunk()).unwrap().as_bool().unwrap(),
            &[true, false, true]
        );
        let e = ScalarExpr::Like {
            input: Box::new(col(2, DataType::Varchar)),
            pattern: "a%".into(),
            negated: false,
        };
        assert_eq!(
            e.eval(&chunk()).unwrap().as_bool().unwrap(),
            &[true, false, true]
        );
    }

    #[test]
    fn is_null_and_not() {
        let mut c0 = ColumnVector::empty(DataType::Int64);
        c0.push_value(&Value::Int(1)).unwrap();
        c0.push_null();
        let ch = Chunk::new(vec![c0]);
        let e = ScalarExpr::IsNull {
            input: Box::new(col(0, DataType::Int64)),
            negated: false,
        };
        assert_eq!(e.eval(&ch).unwrap().as_bool().unwrap(), &[false, true]);
        let e = ScalarExpr::IsNull {
            input: Box::new(col(0, DataType::Int64)),
            negated: true,
        };
        assert_eq!(e.eval(&ch).unwrap().as_bool().unwrap(), &[true, false]);
    }

    #[test]
    fn referenced_and_remap() {
        let e = ScalarExpr::binary(
            BinaryOp::Add,
            col(0, DataType::Int64),
            col(2, DataType::Int64),
        )
        .unwrap();
        let mut refs = Vec::new();
        e.referenced_columns(&mut refs);
        assert_eq!(refs, vec![0, 2]);
        let mut e2 = e;
        e2.remap_columns(&[5, 9, 7]);
        let mut refs = Vec::new();
        e2.referenced_columns(&mut refs);
        assert_eq!(refs, vec![5, 7]);
    }

    #[test]
    fn row_eval_matches_chunk_eval() {
        let e = ScalarExpr::binary(
            BinaryOp::Mul,
            col(0, DataType::Int64),
            ScalarExpr::literal(3i64),
        )
        .unwrap();
        let ch = chunk();
        let c = e.eval(&ch).unwrap();
        for i in 0..ch.len() {
            assert_eq!(e.eval_row(&ch.row(i)).unwrap(), c.value(i));
        }
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = ScalarExpr::binary(
            BinaryOp::Add,
            col(0, DataType::Int64),
            ScalarExpr::literal(1i64),
        )
        .unwrap();
        assert_eq!(e.to_string(), "(#0 + 1)");
    }

    #[test]
    fn constant_detection() {
        assert!(ScalarExpr::literal(1i64).is_constant());
        assert!(!col(0, DataType::Int64).is_constant());
    }
}
