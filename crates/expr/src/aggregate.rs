//! Aggregate functions with mergeable partial states.
//!
//! Aggregation follows the classic parallel pattern the paper's operators
//! use: each worker folds its morsels into a local [`AggregateState`],
//! states are merged, then finalized — so the same code serves both the
//! serial and the morsel-parallel aggregate operator.

use hylite_common::{ColumnVector, DataType, HyError, Result, Value};

/// The built-in aggregate function set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFunction {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(x)` — counts non-NULL values.
    Count,
    /// `SUM(x)`.
    Sum,
    /// `AVG(x)` — always DOUBLE.
    Avg,
    /// `MIN(x)`.
    Min,
    /// `MAX(x)`.
    Max,
    /// `STDDEV(x)` — sample standard deviation, DOUBLE.
    Stddev,
    /// `VAR_SAMP(x)` — sample variance, DOUBLE.
    VarSamp,
}

impl AggregateFunction {
    /// Look up by (case-insensitive) SQL name. `COUNT(*)` is resolved by
    /// the binder into [`AggregateFunction::CountStar`].
    pub fn from_name(name: &str) -> Option<AggregateFunction> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggregateFunction::Count,
            "sum" => AggregateFunction::Sum,
            "avg" | "mean" => AggregateFunction::Avg,
            "min" => AggregateFunction::Min,
            "max" => AggregateFunction::Max,
            "stddev" | "stddev_samp" => AggregateFunction::Stddev,
            "var_samp" | "variance" => AggregateFunction::VarSamp,
            _ => return None,
        })
    }

    /// SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunction::CountStar => "count(*)",
            AggregateFunction::Count => "count",
            AggregateFunction::Sum => "sum",
            AggregateFunction::Avg => "avg",
            AggregateFunction::Min => "min",
            AggregateFunction::Max => "max",
            AggregateFunction::Stddev => "stddev",
            AggregateFunction::VarSamp => "var_samp",
        }
    }

    /// Result type given the input type.
    pub fn result_type(&self, input: DataType) -> Result<DataType> {
        match self {
            AggregateFunction::CountStar | AggregateFunction::Count => Ok(DataType::Int64),
            AggregateFunction::Sum => {
                if input.is_numeric() || input == DataType::Null {
                    Ok(if input == DataType::Int64 {
                        DataType::Int64
                    } else {
                        DataType::Float64
                    })
                } else {
                    Err(HyError::Type(format!(
                        "sum() requires numeric, got {input}"
                    )))
                }
            }
            AggregateFunction::Avg | AggregateFunction::Stddev | AggregateFunction::VarSamp => {
                if input.is_numeric() || input == DataType::Null {
                    Ok(DataType::Float64)
                } else {
                    Err(HyError::Type(format!(
                        "{}() requires numeric, got {input}",
                        self.name()
                    )))
                }
            }
            AggregateFunction::Min | AggregateFunction::Max => Ok(input),
        }
    }

    /// Create an empty accumulator.
    pub fn init(&self) -> AggregateState {
        match self {
            AggregateFunction::CountStar | AggregateFunction::Count => {
                AggregateState::Count { n: 0 }
            }
            AggregateFunction::Sum => AggregateState::Sum {
                int: 0,
                float: 0.0,
                saw_float: false,
                n: 0,
            },
            AggregateFunction::Avg => AggregateState::Avg { sum: 0.0, n: 0 },
            AggregateFunction::Min => AggregateState::Extreme {
                best: Value::Null,
                is_min: true,
            },
            AggregateFunction::Max => AggregateState::Extreme {
                best: Value::Null,
                is_min: false,
            },
            AggregateFunction::Stddev => AggregateState::Moments {
                n: 0,
                sum: 0.0,
                sum_sq: 0.0,
                stddev: true,
            },
            AggregateFunction::VarSamp => AggregateState::Moments {
                n: 0,
                sum: 0.0,
                sum_sq: 0.0,
                stddev: false,
            },
        }
    }
}

/// Mergeable accumulator for one aggregate over one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateState {
    /// COUNT / COUNT(*).
    Count {
        /// Rows (or non-NULL values) seen.
        n: i64,
    },
    /// SUM with integer/float duality: stays integer until a float is seen.
    Sum {
        /// Integer accumulator.
        int: i64,
        /// Float accumulator.
        float: f64,
        /// Whether any float value was consumed.
        saw_float: bool,
        /// Non-NULL values consumed (SUM of zero rows is NULL).
        n: i64,
    },
    /// AVG.
    Avg {
        /// Running sum.
        sum: f64,
        /// Non-NULL count.
        n: i64,
    },
    /// MIN/MAX.
    Extreme {
        /// Best value so far (NULL until any value is seen).
        best: Value,
        /// True for MIN.
        is_min: bool,
    },
    /// STDDEV / VAR_SAMP via (n, Σx, Σx²) — exactly the per-class
    /// statistics the paper's Naive Bayes training operator keeps.
    Moments {
        /// Non-NULL count.
        n: i64,
        /// Σx.
        sum: f64,
        /// Σx².
        sum_sq: f64,
        /// Finalize as stddev (true) or variance (false).
        stddev: bool,
    },
}

impl AggregateState {
    /// Fold one scalar into the state. For `CountStar` pass any value
    /// (including NULL); row counting is handled by `update_count_star`.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            AggregateState::Count { n } => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggregateState::Sum {
                int,
                float,
                saw_float,
                n,
            } => match v {
                Value::Null => {}
                Value::Int(x) => {
                    *int = int.wrapping_add(*x);
                    *float += *x as f64;
                    *n += 1;
                }
                Value::Float(x) => {
                    *float += *x;
                    *saw_float = true;
                    *n += 1;
                }
                other => return Err(HyError::Type(format!("sum() over non-numeric {other}"))),
            },
            AggregateState::Avg { sum, n } => {
                if !v.is_null() {
                    *sum += v.as_float()?;
                    *n += 1;
                }
            }
            AggregateState::Extreme { best, is_min } => {
                if !v.is_null() {
                    let replace = best.is_null()
                        || (*is_min && v.sort_cmp(best).is_lt())
                        || (!*is_min && v.sort_cmp(best).is_gt());
                    if replace {
                        *best = v.clone();
                    }
                }
            }
            AggregateState::Moments { n, sum, sum_sq, .. } => {
                if !v.is_null() {
                    let x = v.as_float()?;
                    *n += 1;
                    *sum += x;
                    *sum_sq += x * x;
                }
            }
        }
        Ok(())
    }

    /// Fold `rows` rows into a COUNT(*) state.
    pub fn update_count_star(&mut self, rows: i64) {
        if let AggregateState::Count { n } = self {
            *n += rows;
        }
    }

    /// Vectorized fold of a whole column (fast path used by operators).
    pub fn update_column(&mut self, col: &ColumnVector) -> Result<()> {
        match (&mut *self, col) {
            (AggregateState::Count { n }, c) => {
                *n += (c.len() - c.null_count()) as i64;
            }
            (AggregateState::Sum { int, float, n, .. }, ColumnVector::Int64 { data, validity }) => {
                match validity {
                    None => {
                        for &x in data {
                            *int = int.wrapping_add(x);
                            *float += x as f64;
                        }
                        *n += data.len() as i64;
                    }
                    Some(v) => {
                        for i in v.iter_ones() {
                            *int = int.wrapping_add(data[i]);
                            *float += data[i] as f64;
                            *n += 1;
                        }
                    }
                }
            }
            (
                AggregateState::Sum {
                    float,
                    saw_float,
                    n,
                    ..
                },
                ColumnVector::Float64 { data, validity },
            ) => {
                *saw_float = true;
                match validity {
                    None => {
                        for &x in data {
                            *float += x;
                        }
                        *n += data.len() as i64;
                    }
                    Some(v) => {
                        for i in v.iter_ones() {
                            *float += data[i];
                            *n += 1;
                        }
                    }
                }
            }
            (AggregateState::Avg { sum, n }, ColumnVector::Float64 { data, validity }) => {
                match validity {
                    None => {
                        for &x in data {
                            *sum += x;
                        }
                        *n += data.len() as i64;
                    }
                    Some(v) => {
                        for i in v.iter_ones() {
                            *sum += data[i];
                            *n += 1;
                        }
                    }
                }
            }
            (
                AggregateState::Moments { n, sum, sum_sq, .. },
                ColumnVector::Float64 { data, validity },
            ) => match validity {
                None => {
                    for &x in data {
                        *sum += x;
                        *sum_sq += x * x;
                    }
                    *n += data.len() as i64;
                }
                Some(v) => {
                    for i in v.iter_ones() {
                        let x = data[i];
                        *sum += x;
                        *sum_sq += x * x;
                        *n += 1;
                    }
                }
            },
            // Generic fallback: per-value loop.
            (state, c) => {
                for i in 0..c.len() {
                    state.update(&c.value(i))?;
                }
            }
        }
        Ok(())
    }

    /// Merge another state of the same shape into `self`.
    pub fn merge(&mut self, other: &AggregateState) -> Result<()> {
        match (&mut *self, other) {
            (AggregateState::Count { n }, AggregateState::Count { n: m }) => *n += m,
            (
                AggregateState::Sum {
                    int,
                    float,
                    saw_float,
                    n,
                },
                AggregateState::Sum {
                    int: i2,
                    float: f2,
                    saw_float: s2,
                    n: n2,
                },
            ) => {
                *int = int.wrapping_add(*i2);
                *float += f2;
                *saw_float |= s2;
                *n += n2;
            }
            (AggregateState::Avg { sum, n }, AggregateState::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (
                AggregateState::Extreme { best, is_min },
                AggregateState::Extreme { best: b2, .. },
            ) => {
                if !b2.is_null() {
                    let replace = best.is_null()
                        || (*is_min && b2.sort_cmp(best).is_lt())
                        || (!*is_min && b2.sort_cmp(best).is_gt());
                    if replace {
                        *best = b2.clone();
                    }
                }
            }
            (
                AggregateState::Moments { n, sum, sum_sq, .. },
                AggregateState::Moments {
                    n: n2,
                    sum: s2,
                    sum_sq: q2,
                    ..
                },
            ) => {
                *n += n2;
                *sum += s2;
                *sum_sq += q2;
            }
            (a, b) => {
                return Err(HyError::Internal(format!(
                    "cannot merge aggregate states {a:?} and {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Produce the final aggregate value.
    pub fn finalize(&self) -> Value {
        match self {
            AggregateState::Count { n } => Value::Int(*n),
            AggregateState::Sum {
                int,
                float,
                saw_float,
                n,
            } => {
                if *n == 0 {
                    Value::Null
                } else if *saw_float {
                    Value::Float(*float)
                } else {
                    Value::Int(*int)
                }
            }
            AggregateState::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
            AggregateState::Extreme { best, .. } => best.clone(),
            AggregateState::Moments {
                n,
                sum,
                sum_sq,
                stddev,
            } => {
                if *n < 2 {
                    return Value::Null;
                }
                let nf = *n as f64;
                let var = ((sum_sq - sum * sum / nf) / (nf - 1.0)).max(0.0);
                Value::Float(if *stddev { var.sqrt() } else { var })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector as CV;

    fn run(f: AggregateFunction, vals: &[Value]) -> Value {
        let mut s = f.init();
        for v in vals {
            s.update(v).unwrap();
        }
        s.finalize()
    }

    #[test]
    fn count_ignores_nulls() {
        assert_eq!(
            run(
                AggregateFunction::Count,
                &[Value::Int(1), Value::Null, Value::Int(2)]
            ),
            Value::Int(2)
        );
    }

    #[test]
    fn count_star_counts_rows() {
        let mut s = AggregateFunction::CountStar.init();
        s.update_count_star(5);
        s.update_count_star(2);
        assert_eq!(s.finalize(), Value::Int(7));
    }

    #[test]
    fn sum_integer_stays_integer() {
        assert_eq!(
            run(AggregateFunction::Sum, &[Value::Int(1), Value::Int(2)]),
            Value::Int(3)
        );
        assert_eq!(
            run(AggregateFunction::Sum, &[Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
        assert_eq!(run(AggregateFunction::Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn avg_and_empty() {
        assert_eq!(
            run(
                AggregateFunction::Avg,
                &[Value::Int(1), Value::Int(2), Value::Null]
            ),
            Value::Float(1.5)
        );
        assert_eq!(run(AggregateFunction::Avg, &[]), Value::Null);
    }

    #[test]
    fn min_max() {
        let vals = [Value::Int(3), Value::Int(1), Value::Null, Value::Int(2)];
        assert_eq!(run(AggregateFunction::Min, &vals), Value::Int(1));
        assert_eq!(run(AggregateFunction::Max, &vals), Value::Int(3));
        assert_eq!(run(AggregateFunction::Min, &[Value::Null]), Value::Null);
    }

    #[test]
    fn stddev_matches_reference() {
        // stddev of 2,4,4,4,5,5,7,9 (sample) = sqrt(32/7)
        let vals: Vec<Value> = [2, 4, 4, 4, 5, 5, 7, 9]
            .iter()
            .map(|&v| Value::Int(v))
            .collect();
        let got = run(AggregateFunction::Stddev, &vals);
        let expect = (32.0f64 / 7.0).sqrt();
        assert!((got.as_float().unwrap() - expect).abs() < 1e-12);
        assert_eq!(
            run(AggregateFunction::Stddev, &[Value::Int(1)]),
            Value::Null,
            "sample stddev of one value is undefined"
        );
    }

    #[test]
    fn merge_equals_sequential() {
        let vals: Vec<Value> = (1..=10).map(Value::Int).collect();
        for f in [
            AggregateFunction::Count,
            AggregateFunction::Sum,
            AggregateFunction::Avg,
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Stddev,
            AggregateFunction::VarSamp,
        ] {
            let mut whole = f.init();
            for v in &vals {
                whole.update(v).unwrap();
            }
            let (mut a, mut b) = (f.init(), f.init());
            for v in &vals[..4] {
                a.update(v).unwrap();
            }
            for v in &vals[4..] {
                b.update(v).unwrap();
            }
            a.merge(&b).unwrap();
            assert_eq!(a.finalize(), whole.finalize(), "{}", f.name());
        }
    }

    #[test]
    fn update_column_matches_scalar_loop() {
        let col = CV::from_f64(vec![1.0, 2.0, 3.5]);
        for f in [
            AggregateFunction::Sum,
            AggregateFunction::Avg,
            AggregateFunction::Stddev,
        ] {
            let mut fast = f.init();
            fast.update_column(&col).unwrap();
            let mut slow = f.init();
            for i in 0..col.len() {
                slow.update(&col.value(i)).unwrap();
            }
            assert_eq!(fast.finalize(), slow.finalize(), "{}", f.name());
        }
    }

    #[test]
    fn update_column_with_validity() {
        let mut col = CV::empty(DataType::Int64);
        col.push_value(&Value::Int(10)).unwrap();
        col.push_null();
        col.push_value(&Value::Int(20)).unwrap();
        let mut s = AggregateFunction::Sum.init();
        s.update_column(&col).unwrap();
        assert_eq!(s.finalize(), Value::Int(30));
        let mut c = AggregateFunction::Count.init();
        c.update_column(&col).unwrap();
        assert_eq!(c.finalize(), Value::Int(2));
    }

    #[test]
    fn result_types() {
        assert_eq!(
            AggregateFunction::Sum.result_type(DataType::Int64).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggregateFunction::Avg.result_type(DataType::Int64).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            AggregateFunction::Min
                .result_type(DataType::Varchar)
                .unwrap(),
            DataType::Varchar
        );
        assert!(AggregateFunction::Sum
            .result_type(DataType::Varchar)
            .is_err());
    }

    #[test]
    fn from_name_lookup() {
        assert_eq!(
            AggregateFunction::from_name("STDDEV"),
            Some(AggregateFunction::Stddev)
        );
        assert_eq!(AggregateFunction::from_name("median"), None);
    }
}
