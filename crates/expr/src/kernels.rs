//! Monomorphic vectorized kernels for binary/unary operations.
//!
//! Each kernel takes raw slices plus optional validity masks and produces
//! a full output column. NULL handling follows SQL: arithmetic and
//! comparison propagate NULL; AND/OR use three-valued logic.

use hylite_common::{Bitmap, ColumnVector, HyError, Result};

/// Combine two optional validity masks by AND (NULL-propagating ops).
pub fn merge_validity(a: Option<&Bitmap>, b: Option<&Bitmap>) -> Option<Bitmap> {
    match (a, b) {
        (None, None) => None,
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (Some(x), Some(y)) => {
            let mut m = x.clone();
            m.and_with(y);
            Some(m)
        }
    }
}

/// Element-wise arithmetic over `i64` slices.
pub fn arith_i64(op: &str, l: &[i64], r: &[i64], validity: Option<Bitmap>) -> Result<ColumnVector> {
    let n = l.len();
    let mut out = Vec::with_capacity(n);
    let valid_at = |i: usize| validity.as_ref().is_none_or(|v| v.get(i));
    match op {
        "+" => {
            for i in 0..n {
                out.push(l[i].wrapping_add(r[i]));
            }
        }
        "-" => {
            for i in 0..n {
                out.push(l[i].wrapping_sub(r[i]));
            }
        }
        "*" => {
            for i in 0..n {
                out.push(l[i].wrapping_mul(r[i]));
            }
        }
        "/" => {
            for i in 0..n {
                if r[i] == 0 && valid_at(i) {
                    return Err(HyError::Execution("division by zero".into()));
                }
                out.push(if r[i] == 0 {
                    0
                } else {
                    l[i].wrapping_div(r[i])
                });
            }
        }
        "%" => {
            for i in 0..n {
                if r[i] == 0 && valid_at(i) {
                    return Err(HyError::Execution("modulo by zero".into()));
                }
                out.push(if r[i] == 0 {
                    0
                } else {
                    l[i].wrapping_rem(r[i])
                });
            }
        }
        other => return Err(HyError::Internal(format!("unknown i64 arith op '{other}'"))),
    }
    Ok(ColumnVector::Int64 {
        data: out,
        validity,
    })
}

/// Element-wise arithmetic over `f64` slices. `^` is power.
pub fn arith_f64(op: &str, l: &[f64], r: &[f64], validity: Option<Bitmap>) -> Result<ColumnVector> {
    let n = l.len();
    let mut out = Vec::with_capacity(n);
    match op {
        "+" => out.extend((0..n).map(|i| l[i] + r[i])),
        "-" => out.extend((0..n).map(|i| l[i] - r[i])),
        "*" => out.extend((0..n).map(|i| l[i] * r[i])),
        "/" => {
            let valid_at = |i: usize| validity.as_ref().is_none_or(|v| v.get(i));
            for i in 0..n {
                if r[i] == 0.0 && valid_at(i) {
                    return Err(HyError::Execution("division by zero".into()));
                }
                out.push(if r[i] == 0.0 { 0.0 } else { l[i] / r[i] });
            }
        }
        "%" => out.extend((0..n).map(|i| l[i] % r[i])),
        "^" => out.extend((0..n).map(|i| l[i].powf(r[i]))),
        other => return Err(HyError::Internal(format!("unknown f64 arith op '{other}'"))),
    }
    Ok(ColumnVector::Float64 {
        data: out,
        validity,
    })
}

/// Element-wise comparison producing a Bool column; generic over the
/// element type so one code path serves ints, floats, bools and strings.
pub fn compare<T: PartialOrd>(
    op: &str,
    l: &[T],
    r: &[T],
    validity: Option<Bitmap>,
) -> Result<ColumnVector> {
    let n = l.len();
    let mut out = Vec::with_capacity(n);
    macro_rules! cmp_loop {
        ($f:expr) => {
            for i in 0..n {
                out.push($f(&l[i], &r[i]));
            }
        };
    }
    match op {
        "=" => cmp_loop!(|a: &T, b: &T| a == b),
        "<>" => cmp_loop!(|a: &T, b: &T| a != b),
        "<" => cmp_loop!(|a: &T, b: &T| a < b),
        "<=" => cmp_loop!(|a: &T, b: &T| a <= b),
        ">" => cmp_loop!(|a: &T, b: &T| a > b),
        ">=" => cmp_loop!(|a: &T, b: &T| a >= b),
        other => {
            return Err(HyError::Internal(format!(
                "unknown comparison op '{other}'"
            )))
        }
    }
    Ok(ColumnVector::Bool {
        data: out,
        validity,
    })
}

/// Three-valued logical AND.
///
/// Truth table: F AND x = F; T AND T = T; otherwise NULL.
pub fn and_3vl(l: &[bool], lv: Option<&Bitmap>, r: &[bool], rv: Option<&Bitmap>) -> ColumnVector {
    let n = l.len();
    let mut data = Vec::with_capacity(n);
    let mut validity = Bitmap::filled(n, true);
    let mut any_null = false;
    for i in 0..n {
        let a = if lv.is_none_or(|v| v.get(i)) {
            Some(l[i])
        } else {
            None
        };
        let b = if rv.is_none_or(|v| v.get(i)) {
            Some(r[i])
        } else {
            None
        };
        match (a, b) {
            (Some(false), _) | (_, Some(false)) => data.push(false),
            (Some(true), Some(true)) => data.push(true),
            _ => {
                data.push(false);
                validity.set(i, false);
                any_null = true;
            }
        }
    }
    ColumnVector::Bool {
        data,
        validity: any_null.then_some(validity),
    }
}

/// Three-valued logical OR.
///
/// Truth table: T OR x = T; F OR F = F; otherwise NULL.
pub fn or_3vl(l: &[bool], lv: Option<&Bitmap>, r: &[bool], rv: Option<&Bitmap>) -> ColumnVector {
    let n = l.len();
    let mut data = Vec::with_capacity(n);
    let mut validity = Bitmap::filled(n, true);
    let mut any_null = false;
    for i in 0..n {
        let a = if lv.is_none_or(|v| v.get(i)) {
            Some(l[i])
        } else {
            None
        };
        let b = if rv.is_none_or(|v| v.get(i)) {
            Some(r[i])
        } else {
            None
        };
        match (a, b) {
            (Some(true), _) | (_, Some(true)) => data.push(true),
            (Some(false), Some(false)) => data.push(false),
            _ => {
                data.push(false);
                validity.set(i, false);
                any_null = true;
            }
        }
    }
    ColumnVector::Bool {
        data,
        validity: any_null.then_some(validity),
    }
}

/// SQL LIKE pattern match: `%` matches any run, `_` matches one char.
pub fn like_match(s: &str, pattern: &str) -> bool {
    // Classic two-pointer algorithm with backtracking on the last `%`.
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            pi = star_p + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_arith() {
        let c = arith_i64("+", &[1, 2], &[10, 20], None).unwrap();
        assert_eq!(c.as_i64().unwrap(), &[11, 22]);
        let c = arith_i64("%", &[7, 9], &[4, 5], None).unwrap();
        assert_eq!(c.as_i64().unwrap(), &[3, 4]);
        assert!(arith_i64("/", &[1], &[0], None).is_err());
    }

    #[test]
    fn i64_div_by_zero_in_null_slot_ok() {
        // Row is NULL: its zero divisor must not raise.
        let validity: Bitmap = [false].into_iter().collect();
        let c = arith_i64("/", &[1], &[0], Some(validity)).unwrap();
        assert!(c.value(0).is_null());
    }

    #[test]
    fn f64_arith_and_power() {
        let c = arith_f64("^", &[2.0, 3.0], &[3.0, 2.0], None).unwrap();
        assert_eq!(c.as_f64().unwrap(), &[8.0, 9.0]);
        assert!(arith_f64("/", &[1.0], &[0.0], None).is_err());
    }

    #[test]
    fn comparisons() {
        let c = compare("<", &[1, 5], &[3, 3], None).unwrap();
        assert_eq!(c.as_bool().unwrap(), &[true, false]);
        let c = compare("=", &["a", "b"], &["a", "c"], None).unwrap();
        assert_eq!(c.as_bool().unwrap(), &[true, false]);
    }

    #[test]
    fn three_valued_and() {
        // rows: (T,T) (T,N) (F,N) (N,N)
        let l = [true, true, false, false];
        let lv: Bitmap = [true, true, true, false].into_iter().collect();
        let r = [true, false, false, false];
        let rv: Bitmap = [true, false, false, false].into_iter().collect();
        let c = and_3vl(&l, Some(&lv), &r, Some(&rv));
        assert_eq!(c.value(0), hylite_common::Value::Bool(true));
        assert!(c.value(1).is_null(), "T AND N = N");
        assert_eq!(c.value(2), hylite_common::Value::Bool(false), "F AND N = F");
        assert!(c.value(3).is_null());
    }

    #[test]
    fn three_valued_or() {
        let l = [true, false, false];
        let lv: Bitmap = [true, true, false].into_iter().collect();
        let r = [false, false, true];
        let rv: Bitmap = [false, true, true].into_iter().collect();
        let c = or_3vl(&l, Some(&lv), &r, Some(&rv));
        assert_eq!(c.value(0), hylite_common::Value::Bool(true), "T OR N = T");
        assert_eq!(c.value(1), hylite_common::Value::Bool(false));
        assert_eq!(c.value(2), hylite_common::Value::Bool(true), "N OR T = T");
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("hello", "h_lo"));
        assert!(!like_match("hello", "hello_"));
        assert!(like_match("a.b.c", "a%c"));
        assert!(like_match("abc", "%%c"));
    }

    #[test]
    fn validity_merge() {
        let a: Bitmap = [true, false].into_iter().collect();
        let b: Bitmap = [true, true].into_iter().collect();
        let m = merge_validity(Some(&a), Some(&b)).unwrap();
        assert!(m.get(0));
        assert!(!m.get(1));
        assert!(merge_validity(None, None).is_none());
    }
}
