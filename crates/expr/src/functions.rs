//! Built-in scalar functions.

use hylite_common::{ColumnVector, DataType, HyError, Result, Value};

use crate::kernels::merge_validity;

/// The built-in scalar function set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `abs(x)` — absolute value, keeps the input's numeric type.
    Abs,
    /// `sqrt(x)` — square root, DOUBLE.
    Sqrt,
    /// `exp(x)` — eˣ, DOUBLE.
    Exp,
    /// `ln(x)` — natural log, DOUBLE.
    Ln,
    /// `pow(x, y)` — xʸ, DOUBLE.
    Pow,
    /// `floor(x)` — round toward −∞, DOUBLE.
    Floor,
    /// `ceil(x)` — round toward +∞, DOUBLE.
    Ceil,
    /// `round(x)` — round half away from zero, DOUBLE.
    Round,
    /// `least(a, b, ...)` — smallest non-NULL argument.
    Least,
    /// `greatest(a, b, ...)` — largest non-NULL argument.
    Greatest,
    /// `length(s)` — string length in characters, BIGINT.
    Length,
    /// `lower(s)` — lowercase, VARCHAR.
    Lower,
    /// `upper(s)` — uppercase, VARCHAR.
    Upper,
    /// `substr(s, start [, len])` — 1-based substring, VARCHAR.
    Substr,
    /// `coalesce(a, b, ...)` — first non-NULL argument.
    Coalesce,
    /// `sign(x)` — −1, 0 or 1 as DOUBLE.
    Sign,
}

impl ScalarFunc {
    /// Look up a function by (case-insensitive) SQL name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "abs" => ScalarFunc::Abs,
            "sqrt" => ScalarFunc::Sqrt,
            "exp" => ScalarFunc::Exp,
            "ln" | "log" => ScalarFunc::Ln,
            "pow" | "power" => ScalarFunc::Pow,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "round" => ScalarFunc::Round,
            "least" => ScalarFunc::Least,
            "greatest" => ScalarFunc::Greatest,
            "length" | "len" => ScalarFunc::Length,
            "lower" => ScalarFunc::Lower,
            "upper" => ScalarFunc::Upper,
            "substr" | "substring" => ScalarFunc::Substr,
            "coalesce" => ScalarFunc::Coalesce,
            "sign" => ScalarFunc::Sign,
            _ => return None,
        })
    }

    /// SQL name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarFunc::Abs => "abs",
            ScalarFunc::Sqrt => "sqrt",
            ScalarFunc::Exp => "exp",
            ScalarFunc::Ln => "ln",
            ScalarFunc::Pow => "pow",
            ScalarFunc::Floor => "floor",
            ScalarFunc::Ceil => "ceil",
            ScalarFunc::Round => "round",
            ScalarFunc::Least => "least",
            ScalarFunc::Greatest => "greatest",
            ScalarFunc::Length => "length",
            ScalarFunc::Lower => "lower",
            ScalarFunc::Upper => "upper",
            ScalarFunc::Substr => "substr",
            ScalarFunc::Coalesce => "coalesce",
            ScalarFunc::Sign => "sign",
        }
    }

    /// Result type given argument types; validates arity and types.
    pub fn result_type(&self, args: &[DataType]) -> Result<DataType> {
        let expect_arity = |lo: usize, hi: usize| -> Result<()> {
            if args.len() < lo || args.len() > hi {
                return Err(HyError::Bind(format!(
                    "{}() expects {lo}..{hi} arguments, got {}",
                    self.name(),
                    args.len()
                )));
            }
            Ok(())
        };
        let numeric = |i: usize| -> Result<()> {
            if !args[i].is_numeric() && args[i] != DataType::Null {
                return Err(HyError::Type(format!(
                    "{}() argument {} must be numeric, got {}",
                    self.name(),
                    i + 1,
                    args[i]
                )));
            }
            Ok(())
        };
        match self {
            ScalarFunc::Abs => {
                expect_arity(1, 1)?;
                numeric(0)?;
                Ok(args[0])
            }
            ScalarFunc::Sqrt
            | ScalarFunc::Exp
            | ScalarFunc::Ln
            | ScalarFunc::Floor
            | ScalarFunc::Ceil
            | ScalarFunc::Round
            | ScalarFunc::Sign => {
                expect_arity(1, 1)?;
                numeric(0)?;
                Ok(DataType::Float64)
            }
            ScalarFunc::Pow => {
                expect_arity(2, 2)?;
                numeric(0)?;
                numeric(1)?;
                Ok(DataType::Float64)
            }
            ScalarFunc::Least | ScalarFunc::Greatest => {
                expect_arity(1, usize::MAX)?;
                let mut t = args[0];
                for &a in &args[1..] {
                    t = t.common_type(a)?;
                }
                Ok(t)
            }
            ScalarFunc::Length => {
                expect_arity(1, 1)?;
                Ok(DataType::Int64)
            }
            ScalarFunc::Lower | ScalarFunc::Upper => {
                expect_arity(1, 1)?;
                Ok(DataType::Varchar)
            }
            ScalarFunc::Substr => {
                expect_arity(2, 3)?;
                Ok(DataType::Varchar)
            }
            ScalarFunc::Coalesce => {
                expect_arity(1, usize::MAX)?;
                let mut t = args[0];
                for &a in &args[1..] {
                    t = t.common_type(a)?;
                }
                Ok(t)
            }
        }
    }

    /// Evaluate over already-evaluated argument columns.
    pub fn eval(&self, args: &[ColumnVector]) -> Result<ColumnVector> {
        match self {
            ScalarFunc::Abs => match &args[0] {
                ColumnVector::Int64 { data, validity } => Ok(ColumnVector::Int64 {
                    data: data.iter().map(|v| v.wrapping_abs()).collect(),
                    validity: validity.clone(),
                }),
                col => unary_f64(col, f64::abs),
            },
            ScalarFunc::Sqrt => unary_f64(&args[0], f64::sqrt),
            ScalarFunc::Exp => unary_f64(&args[0], f64::exp),
            ScalarFunc::Ln => unary_f64(&args[0], f64::ln),
            ScalarFunc::Floor => unary_f64(&args[0], f64::floor),
            ScalarFunc::Ceil => unary_f64(&args[0], f64::ceil),
            ScalarFunc::Round => unary_f64(&args[0], f64::round),
            ScalarFunc::Sign => unary_f64(&args[0], |v| {
                if v > 0.0 {
                    1.0
                } else if v < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }),
            ScalarFunc::Pow => {
                let l = args[0].cast_to(DataType::Float64)?;
                let r = args[1].cast_to(DataType::Float64)?;
                let validity = merge_validity(l.validity(), r.validity());
                let (l, r) = (l.as_f64()?, r.as_f64()?);
                Ok(ColumnVector::Float64 {
                    data: l.iter().zip(r).map(|(a, b)| a.powf(*b)).collect(),
                    validity,
                })
            }
            ScalarFunc::Least => selective(args, |a, b| a.sort_cmp(b).is_le()),
            ScalarFunc::Greatest => selective(args, |a, b| a.sort_cmp(b).is_ge()),
            ScalarFunc::Length => {
                let s = args[0].as_varchar()?;
                Ok(ColumnVector::Int64 {
                    data: s.iter().map(|v| v.chars().count() as i64).collect(),
                    validity: args[0].validity().cloned(),
                })
            }
            ScalarFunc::Lower => map_str(&args[0], |s| s.to_lowercase()),
            ScalarFunc::Upper => map_str(&args[0], |s| s.to_uppercase()),
            ScalarFunc::Substr => {
                let s = args[0].as_varchar()?;
                let start = args[1].cast_to(DataType::Int64)?;
                let start = start.as_i64()?;
                let len_col = if args.len() == 3 {
                    Some(args[2].cast_to(DataType::Int64)?)
                } else {
                    None
                };
                let mut out = Vec::with_capacity(s.len());
                for i in 0..s.len() {
                    let chars: Vec<char> = s[i].chars().collect();
                    // SQL substr is 1-based; clamp out-of-range gracefully.
                    let from = (start[i].max(1) as usize - 1).min(chars.len());
                    let take = match &len_col {
                        Some(lc) => lc.as_i64()?[i].max(0) as usize,
                        None => chars.len() - from,
                    };
                    out.push(chars[from..(from + take).min(chars.len())].iter().collect());
                }
                Ok(ColumnVector::Varchar {
                    data: out,
                    validity: args[0].validity().cloned(),
                })
            }
            ScalarFunc::Coalesce => {
                let n = args[0].len();
                let target = {
                    let mut t = args[0].data_type();
                    for a in &args[1..] {
                        t = t.common_type(a.data_type())?;
                    }
                    t
                };
                let cast: Vec<ColumnVector> = args
                    .iter()
                    .map(|a| a.cast_to(target))
                    .collect::<Result<_>>()?;
                let mut out = ColumnVector::empty(target);
                for i in 0..n {
                    let v = cast
                        .iter()
                        .map(|c| c.value(i))
                        .find(|v| !v.is_null())
                        .unwrap_or(Value::Null);
                    out.push_value(&v)?;
                }
                Ok(out)
            }
        }
    }
}

fn unary_f64(col: &ColumnVector, f: impl Fn(f64) -> f64) -> Result<ColumnVector> {
    let c = col.cast_to(DataType::Float64)?;
    let data = c.as_f64()?;
    Ok(ColumnVector::Float64 {
        data: data.iter().map(|&v| f(v)).collect(),
        validity: c.validity().cloned(),
    })
}

fn map_str(col: &ColumnVector, f: impl Fn(&str) -> String) -> Result<ColumnVector> {
    let s = col.as_varchar()?;
    Ok(ColumnVector::Varchar {
        data: s.iter().map(|v| f(v)).collect(),
        validity: col.validity().cloned(),
    })
}

/// least/greatest: per-row pick among non-NULL arguments using `better`.
fn selective(
    args: &[ColumnVector],
    better: impl Fn(&Value, &Value) -> bool,
) -> Result<ColumnVector> {
    let n = args[0].len();
    let target = {
        let mut t = args[0].data_type();
        for a in &args[1..] {
            t = t.common_type(a.data_type())?;
        }
        t
    };
    let cast: Vec<ColumnVector> = args
        .iter()
        .map(|a| a.cast_to(target))
        .collect::<Result<_>>()?;
    let mut out = ColumnVector::empty(target);
    for i in 0..n {
        let mut best = Value::Null;
        for c in &cast {
            let v = c.value(i);
            if v.is_null() {
                continue;
            }
            if best.is_null() || better(&v, &best) {
                best = v;
            }
        }
        out.push_value(&best)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector as CV;

    #[test]
    fn lookup_by_name() {
        assert_eq!(ScalarFunc::from_name("SQRT"), Some(ScalarFunc::Sqrt));
        assert_eq!(ScalarFunc::from_name("power"), Some(ScalarFunc::Pow));
        assert_eq!(ScalarFunc::from_name("nope"), None);
    }

    #[test]
    fn abs_keeps_int_type() {
        let c = ScalarFunc::Abs.eval(&[CV::from_i64(vec![-3, 4])]).unwrap();
        assert_eq!(c.as_i64().unwrap(), &[3, 4]);
    }

    #[test]
    fn sqrt_casts_ints() {
        let c = ScalarFunc::Sqrt.eval(&[CV::from_i64(vec![4, 9])]).unwrap();
        assert_eq!(c.as_f64().unwrap(), &[2.0, 3.0]);
    }

    #[test]
    fn pow_and_validity() {
        let mut a = CV::empty(DataType::Float64);
        a.push_value(&Value::Float(2.0)).unwrap();
        a.push_null();
        let b = CV::from_f64(vec![3.0, 3.0]);
        let c = ScalarFunc::Pow.eval(&[a, b]).unwrap();
        assert_eq!(c.value(0), Value::Float(8.0));
        assert!(c.value(1).is_null());
    }

    #[test]
    fn least_greatest_skip_nulls() {
        let mut a = CV::empty(DataType::Int64);
        a.push_null();
        a.push_value(&Value::Int(5)).unwrap();
        let b = CV::from_i64(vec![3, 2]);
        let l = ScalarFunc::Least.eval(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(l.value(0), Value::Int(3));
        assert_eq!(l.value(1), Value::Int(2));
        let g = ScalarFunc::Greatest.eval(&[a, b]).unwrap();
        assert_eq!(g.value(1), Value::Int(5));
    }

    #[test]
    fn string_functions() {
        let s = CV::from_str(vec!["Hello", "WORLD"]);
        assert_eq!(
            ScalarFunc::Lower
                .eval(std::slice::from_ref(&s))
                .unwrap()
                .as_varchar()
                .unwrap(),
            &["hello".to_string(), "world".to_string()]
        );
        assert_eq!(
            ScalarFunc::Length
                .eval(std::slice::from_ref(&s))
                .unwrap()
                .as_i64()
                .unwrap(),
            &[5, 5]
        );
        let sub = ScalarFunc::Substr
            .eval(&[s, CV::from_i64(vec![2, 1]), CV::from_i64(vec![3, 2])])
            .unwrap();
        assert_eq!(
            sub.as_varchar().unwrap(),
            &["ell".to_string(), "WO".to_string()]
        );
    }

    #[test]
    fn substr_out_of_range_clamps() {
        let s = CV::from_str(vec!["ab"]);
        let sub = ScalarFunc::Substr
            .eval(&[s, CV::from_i64(vec![5]), CV::from_i64(vec![3])])
            .unwrap();
        assert_eq!(sub.as_varchar().unwrap(), &["".to_string()]);
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let mut a = CV::empty(DataType::Int64);
        a.push_null();
        a.push_value(&Value::Int(1)).unwrap();
        let b = CV::from_i64(vec![9, 9]);
        let c = ScalarFunc::Coalesce.eval(&[a, b]).unwrap();
        assert_eq!(c.value(0), Value::Int(9));
        assert_eq!(c.value(1), Value::Int(1));
    }

    #[test]
    fn result_types() {
        assert_eq!(
            ScalarFunc::Abs.result_type(&[DataType::Int64]).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            ScalarFunc::Sqrt.result_type(&[DataType::Int64]).unwrap(),
            DataType::Float64
        );
        assert!(ScalarFunc::Sqrt.result_type(&[DataType::Varchar]).is_err());
        assert!(ScalarFunc::Pow.result_type(&[DataType::Float64]).is_err());
        assert_eq!(
            ScalarFunc::Least
                .result_type(&[DataType::Int64, DataType::Float64])
                .unwrap(),
            DataType::Float64
        );
    }
}
