//! Vectorized scalar and aggregate expression evaluation.
//!
//! Expressions arrive here already *bound*: column references are plain
//! indices into the input [`Chunk`](hylite_common::Chunk), and every node
//! knows its result [`DataType`](hylite_common::DataType). Binding happens
//! in `hylite-planner`; this crate is the runtime.
//!
//! The evaluation model substitutes for HyPer's LLVM code generation (see
//! DESIGN.md): each node dispatches once per *chunk* into a monomorphic
//! kernel that loops over plain slices, so the per-row cost is a tight
//! scalar loop with no dynamic dispatch — the property the paper's
//! data-centric compilation is after.
//!
//! [`lambda`] implements the paper's §7: user-defined lambda expressions
//! that analytics operators evaluate vectorized, broadcasting one side
//! (e.g. a cluster center) as constants over a whole data chunk.

pub mod aggregate;
pub mod functions;
pub mod kernels;
pub mod lambda;
pub mod scalar;

pub use aggregate::{AggregateFunction, AggregateState};
pub use functions::ScalarFunc;
pub use lambda::BoundLambda;
pub use scalar::{BinaryOp, ScalarExpr, UnaryOp};
