//! Bound SQL lambda expressions (the paper's §7).
//!
//! A lambda `λ(a, b) (a.x-b.x)^2 + (a.y-b.y)^2` is bound by the planner
//! into a [`BoundLambda`]: the body is an ordinary [`ScalarExpr`] whose
//! column indices `0..left_width` refer to the first tuple variable's
//! attributes and `left_width..left_width+right_width` to the second's.
//!
//! Analytics operators evaluate lambdas *vectorized*: for a fixed right
//! tuple (e.g. one cluster center) the right-hand attributes are
//! substituted as constants ([`BoundLambda::bind_right`]) and the
//! resulting unary expression is evaluated over whole data chunks. All
//! dispatch happens per chunk, not per row — the vectorized equivalent of
//! the paper's "all code is compiled together, no virtual function calls".

use hylite_common::{Chunk, ColumnVector, DataType, HyError, Result, Value};

use crate::scalar::ScalarExpr;

/// A type-checked lambda with two tuple parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundLambda {
    /// Number of attributes of the first parameter (`a`).
    left_width: usize,
    /// Number of attributes of the second parameter (`b`).
    right_width: usize,
    /// Body over the concatenated attribute space.
    body: ScalarExpr,
}

impl BoundLambda {
    /// Wrap a bound body. Validates that referenced columns are in range.
    pub fn new(left_width: usize, right_width: usize, body: ScalarExpr) -> Result<BoundLambda> {
        let mut refs = Vec::new();
        body.referenced_columns(&mut refs);
        if let Some(&max) = refs.iter().max() {
            if max >= left_width + right_width {
                return Err(HyError::Bind(format!(
                    "lambda body references column {max} but parameters provide {} attributes",
                    left_width + right_width
                )));
            }
        }
        Ok(BoundLambda {
            left_width,
            right_width,
            body,
        })
    }

    /// Number of attributes of the first parameter.
    pub fn left_width(&self) -> usize {
        self.left_width
    }

    /// Number of attributes of the second parameter.
    pub fn right_width(&self) -> usize {
        self.right_width
    }

    /// The lambda body.
    pub fn body(&self) -> &ScalarExpr {
        &self.body
    }

    /// The body's result type.
    pub fn result_type(&self) -> DataType {
        self.body.data_type()
    }

    /// Substitute concrete values for the second parameter's attributes,
    /// yielding an expression over the first parameter's attributes only.
    ///
    /// This is how operators evaluate a lambda against one model tuple
    /// (cluster center, class centroid, ...) for a whole data chunk at a
    /// time without materializing pair chunks.
    pub fn bind_right(&self, values: &[Value]) -> Result<ScalarExpr> {
        if values.len() != self.right_width {
            return Err(HyError::Internal(format!(
                "lambda bind_right: expected {} values, got {}",
                self.right_width,
                values.len()
            )));
        }
        let mut expr = self.body.clone();
        substitute_from(&mut expr, self.left_width, values);
        Ok(expr)
    }

    /// Evaluate the lambda over a pair chunk whose columns are the first
    /// parameter's attributes followed by the second's (generic path,
    /// used when both sides vary per row).
    pub fn eval_pairs(&self, pair_chunk: &Chunk) -> Result<ColumnVector> {
        if pair_chunk.num_columns() != self.left_width + self.right_width {
            return Err(HyError::Internal(format!(
                "lambda pair chunk has {} columns, expected {}",
                pair_chunk.num_columns(),
                self.left_width + self.right_width
            )));
        }
        self.body.eval(pair_chunk)
    }

    /// Convenience: evaluate against a fixed right tuple over a data
    /// chunk holding the first parameter's attributes.
    pub fn eval_broadcast(&self, data: &Chunk, right: &[Value]) -> Result<ColumnVector> {
        let bound = self.bind_right(right)?;
        bound.eval(data)
    }

    /// The default k-Means distance: squared Euclidean over `dims`
    /// attributes — `Σ (a.i - b.i)^2`. This is the "default lambda" the
    /// paper supplies when the user specifies none.
    pub fn default_squared_l2(dims: usize) -> Result<BoundLambda> {
        let mut body: Option<ScalarExpr> = None;
        for i in 0..dims {
            let a = ScalarExpr::column(i, DataType::Float64);
            let b = ScalarExpr::column(dims + i, DataType::Float64);
            let diff = ScalarExpr::binary(crate::BinaryOp::Sub, a, b)?;
            let sq = ScalarExpr::binary(crate::BinaryOp::Mul, diff.clone(), diff)?;
            body = Some(match body {
                Some(acc) => ScalarExpr::binary(crate::BinaryOp::Add, acc, sq)?,
                None => sq,
            });
        }
        let body = body.ok_or_else(|| HyError::Analytics("lambda over zero attributes".into()))?;
        BoundLambda::new(dims, dims, body)
    }

    /// The Manhattan (L1) distance lambda — `Σ |a.i - b.i|` — the
    /// k-Medians variant from the paper's §7 discussion.
    pub fn manhattan_l1(dims: usize) -> Result<BoundLambda> {
        let mut body: Option<ScalarExpr> = None;
        for i in 0..dims {
            let a = ScalarExpr::column(i, DataType::Float64);
            let b = ScalarExpr::column(dims + i, DataType::Float64);
            let diff = ScalarExpr::binary(crate::BinaryOp::Sub, a, b)?;
            let abs = ScalarExpr::func(crate::ScalarFunc::Abs, vec![diff])?;
            body = Some(match body {
                Some(acc) => ScalarExpr::binary(crate::BinaryOp::Add, acc, abs)?,
                None => abs,
            });
        }
        let body = body.ok_or_else(|| HyError::Analytics("lambda over zero attributes".into()))?;
        BoundLambda::new(dims, dims, body)
    }
}

/// Replace column references at or past `from` with literals.
fn substitute_from(expr: &mut ScalarExpr, from: usize, values: &[Value]) {
    match expr {
        ScalarExpr::Column { index, .. } => {
            if *index >= from {
                *expr = ScalarExpr::Literal(values[*index - from].clone());
            }
        }
        ScalarExpr::Literal(_) => {}
        ScalarExpr::Binary { left, right, .. } => {
            substitute_from(left, from, values);
            substitute_from(right, from, values);
        }
        ScalarExpr::Unary { input, .. }
        | ScalarExpr::Cast { input, .. }
        | ScalarExpr::IsNull { input, .. }
        | ScalarExpr::InList { input, .. }
        | ScalarExpr::Like { input, .. } => substitute_from(input, from, values),
        ScalarExpr::Func { args, .. } => {
            for a in args {
                substitute_from(a, from, values);
            }
        }
        ScalarExpr::Case {
            branches,
            else_expr,
            ..
        } => {
            for (c, r) in branches {
                substitute_from(c, from, values);
                substitute_from(r, from, values);
            }
            if let Some(e) = else_expr {
                substitute_from(e, from, values);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryOp;

    fn data_chunk() -> Chunk {
        Chunk::new(vec![
            ColumnVector::from_f64(vec![0.0, 1.0, 2.0]),
            ColumnVector::from_f64(vec![0.0, 1.0, 2.0]),
        ])
    }

    #[test]
    fn default_l2_distances() {
        let l = BoundLambda::default_squared_l2(2).unwrap();
        let d = l
            .eval_broadcast(&data_chunk(), &[Value::Float(1.0), Value::Float(1.0)])
            .unwrap();
        assert_eq!(d.as_f64().unwrap(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn manhattan_distances() {
        let l = BoundLambda::manhattan_l1(2).unwrap();
        let d = l
            .eval_broadcast(&data_chunk(), &[Value::Float(1.0), Value::Float(1.0)])
            .unwrap();
        assert_eq!(d.as_f64().unwrap(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn custom_body_and_pair_eval() {
        // λ(a, b) a.x * b.w  — a has 1 attr, b has 1 attr
        let body = ScalarExpr::binary(
            BinaryOp::Mul,
            ScalarExpr::column(0, DataType::Float64),
            ScalarExpr::column(1, DataType::Float64),
        )
        .unwrap();
        let l = BoundLambda::new(1, 1, body).unwrap();
        let pair = Chunk::new(vec![
            ColumnVector::from_f64(vec![2.0, 3.0]),
            ColumnVector::from_f64(vec![10.0, 100.0]),
        ]);
        let out = l.eval_pairs(&pair).unwrap();
        assert_eq!(out.as_f64().unwrap(), &[20.0, 300.0]);
    }

    #[test]
    fn out_of_range_reference_rejected() {
        let body = ScalarExpr::column(5, DataType::Float64);
        assert!(BoundLambda::new(2, 2, body).is_err());
    }

    #[test]
    fn bind_right_arity_checked() {
        let l = BoundLambda::default_squared_l2(2).unwrap();
        assert!(l.bind_right(&[Value::Float(1.0)]).is_err());
    }

    #[test]
    fn bound_expression_is_unary_in_left() {
        let l = BoundLambda::default_squared_l2(2).unwrap();
        let bound = l
            .bind_right(&[Value::Float(0.5), Value::Float(0.5)])
            .unwrap();
        let mut refs = Vec::new();
        bound.referenced_columns(&mut refs);
        assert!(refs.iter().all(|&c| c < 2));
    }

    #[test]
    fn broadcast_equals_pairwise() {
        let l = BoundLambda::default_squared_l2(2).unwrap();
        let data = data_chunk();
        let center = [Value::Float(0.25), Value::Float(0.75)];
        let fast = l.eval_broadcast(&data, &center).unwrap();
        // Build explicit pair chunk and compare.
        let n = data.len();
        let pair = Chunk::new(vec![
            data.column(0).clone(),
            data.column(1).clone(),
            ColumnVector::from_f64(vec![0.25; n]),
            ColumnVector::from_f64(vec![0.75; n]),
        ]);
        let slow = l.eval_pairs(&pair).unwrap();
        assert_eq!(fast, slow);
    }
}
