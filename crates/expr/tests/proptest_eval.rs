//! Properties of vectorized evaluation: chunk evaluation must agree with
//! row-at-a-time evaluation, and the produced column must match the
//! expression's static type.

use hylite_common::{Chunk, ColumnVector, DataType, Value};
use hylite_expr::{BinaryOp, ScalarExpr, ScalarFunc, UnaryOp};
use proptest::prelude::*;

/// Input schema: #0 BIGINT, #1 DOUBLE, #2 BOOLEAN (with NULLs sprinkled).
fn arb_chunk() -> impl Strategy<Value = Chunk> {
    proptest::collection::vec(
        (
            proptest::option::weighted(0.9, -20i64..20),
            proptest::option::weighted(0.9, -50.0f64..50.0),
            proptest::option::weighted(0.9, any::<bool>()),
        ),
        1..40,
    )
    .prop_map(|rows| {
        let mut a = ColumnVector::empty(DataType::Int64);
        let mut b = ColumnVector::empty(DataType::Float64);
        let mut c = ColumnVector::empty(DataType::Bool);
        for (x, y, z) in rows {
            match x {
                Some(v) => a.push_value(&Value::Int(v)).unwrap(),
                None => a.push_null(),
            }
            match y {
                Some(v) => b.push_value(&Value::Float(v)).unwrap(),
                None => b.push_null(),
            }
            match z {
                Some(v) => c.push_value(&Value::Bool(v)).unwrap(),
                None => c.push_null(),
            }
        }
        Chunk::new(vec![a, b, c])
    })
}

/// Random well-typed numeric expressions over the schema.
fn arb_numeric_expr() -> impl Strategy<Value = ScalarExpr> {
    let leaf = prop_oneof![
        Just(ScalarExpr::column(0, DataType::Int64)),
        Just(ScalarExpr::column(1, DataType::Float64)),
        (-10i64..10).prop_map(ScalarExpr::literal),
        (-10i64..10).prop_map(|v| ScalarExpr::literal(v as f64 / 2.0)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinaryOp::Add),
                Just(BinaryOp::Sub),
                Just(BinaryOp::Mul),
            ])
                .prop_map(|(l, r, op)| ScalarExpr::binary(op, l, r).expect("numeric")),
            inner
                .clone()
                .prop_map(|e| ScalarExpr::unary(UnaryOp::Neg, e).expect("numeric")),
            inner
                .clone()
                .prop_map(|e| ScalarExpr::func(ScalarFunc::Abs, vec![e]).expect("numeric")),
            (inner.clone(), inner).prop_map(|(l, r)| {
                ScalarExpr::func(ScalarFunc::Least, vec![l, r]).expect("numeric")
            }),
        ]
    })
}

/// Random well-typed boolean expressions.
fn arb_bool_expr() -> impl Strategy<Value = ScalarExpr> {
    let base = arb_numeric_expr().boxed();
    let leaf = prop_oneof![
        Just(ScalarExpr::column(2, DataType::Bool)),
        (base.clone(), base, prop_oneof![
            Just(BinaryOp::Lt),
            Just(BinaryOp::Eq),
            Just(BinaryOp::GtEq),
        ])
            .prop_map(|(l, r, op)| ScalarExpr::binary(op, l, r).expect("comparison")),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinaryOp::And),
                Just(BinaryOp::Or),
            ])
                .prop_map(|(l, r, op)| ScalarExpr::binary(op, l, r).expect("boolean")),
            inner
                .clone()
                .prop_map(|e| ScalarExpr::unary(UnaryOp::Not, e).expect("boolean")),
            (inner, any::<bool>()).prop_map(|(e, negated)| ScalarExpr::IsNull {
                input: Box::new(e),
                negated,
            }),
        ]
    })
}

fn check_chunk_vs_rows(e: &ScalarExpr, chunk: &Chunk) -> std::result::Result<(), TestCaseError> {
    let vectorized = e.eval(chunk);
    match vectorized {
        Ok(col) => {
            prop_assert_eq!(col.len(), chunk.len());
            if !col.is_empty() && e.data_type() != DataType::Null {
                prop_assert_eq!(col.data_type(), e.data_type(), "static type honored");
            }
            for i in 0..chunk.len() {
                let row_result = e
                    .eval_row(&chunk.row(i))
                    .expect("row eval agrees on success");
                let cell = col.value(i);
                // NaN-safe comparison.
                let equal = match (&cell, &row_result) {
                    (Value::Float(a), Value::Float(b)) => {
                        (a.is_nan() && b.is_nan()) || a == b
                    }
                    (a, b) => a == b,
                };
                prop_assert!(equal, "row {i}: chunk={cell} row={row_result} expr={e}");
            }
        }
        Err(_) => {
            // A vectorized error must be reproducible by at least one row.
            let any_row_errs = (0..chunk.len()).any(|i| e.eval_row(&chunk.row(i)).is_err());
            prop_assert!(any_row_errs, "vectorized error with no failing row: {e}");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn numeric_chunk_eval_matches_row_eval(e in arb_numeric_expr(), chunk in arb_chunk()) {
        check_chunk_vs_rows(&e, &chunk)?;
    }

    #[test]
    fn boolean_chunk_eval_matches_row_eval(e in arb_bool_expr(), chunk in arb_chunk()) {
        check_chunk_vs_rows(&e, &chunk)?;
    }

    #[test]
    fn filter_selection_subset(e in arb_bool_expr(), chunk in arb_chunk()) {
        if let Ok(col) = e.eval(&chunk) {
            let sel = col.to_selection().unwrap();
            prop_assert_eq!(sel.len(), chunk.len());
            // Selected rows are exactly those evaluating to TRUE.
            for i in 0..chunk.len() {
                let expect = matches!(col.value(i), Value::Bool(true));
                prop_assert_eq!(sel.get(i), expect);
            }
        }
    }
}
