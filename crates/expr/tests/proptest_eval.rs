//! Properties of vectorized evaluation: chunk evaluation must agree with
//! row-at-a-time evaluation, and the produced column must match the
//! expression's static type.
//!
//! Expressions and chunks are generated from a seeded RNG so every run
//! replays the same cases (the offline stand-in for proptest).

use hylite_common::{Chunk, ColumnVector, DataType, Value};
use hylite_expr::{BinaryOp, ScalarExpr, ScalarFunc, UnaryOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input schema: #0 BIGINT, #1 DOUBLE, #2 BOOLEAN (with NULLs sprinkled).
fn arb_chunk(rng: &mut StdRng) -> Chunk {
    let rows = rng.gen_range(1usize..40);
    let mut a = ColumnVector::empty(DataType::Int64);
    let mut b = ColumnVector::empty(DataType::Float64);
    let mut c = ColumnVector::empty(DataType::Bool);
    for _ in 0..rows {
        if rng.gen_bool(0.9) {
            a.push_value(&Value::Int(rng.gen_range(-20i64..20)))
                .unwrap();
        } else {
            a.push_null();
        }
        if rng.gen_bool(0.9) {
            b.push_value(&Value::Float(rng.gen_range(-50.0f64..50.0)))
                .unwrap();
        } else {
            b.push_null();
        }
        if rng.gen_bool(0.9) {
            c.push_value(&Value::Bool(rng.gen_bool(0.5))).unwrap();
        } else {
            c.push_null();
        }
    }
    Chunk::new(vec![a, b, c])
}

/// Random well-typed numeric expressions over the schema.
fn arb_numeric_expr(rng: &mut StdRng, depth: usize) -> ScalarExpr {
    if depth == 0 {
        return match rng.gen_range(0u32..4) {
            0 => ScalarExpr::column(0, DataType::Int64),
            1 => ScalarExpr::column(1, DataType::Float64),
            2 => ScalarExpr::literal(rng.gen_range(-10i64..10)),
            _ => ScalarExpr::literal(rng.gen_range(-10i64..10) as f64 / 2.0),
        };
    }
    match rng.gen_range(0u32..5) {
        0 => arb_numeric_expr(rng, 0),
        1 => {
            let op = [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul][rng.gen_range(0usize..3)];
            ScalarExpr::binary(
                op,
                arb_numeric_expr(rng, depth - 1),
                arb_numeric_expr(rng, depth - 1),
            )
            .expect("numeric")
        }
        2 => ScalarExpr::unary(UnaryOp::Neg, arb_numeric_expr(rng, depth - 1)).expect("numeric"),
        3 => ScalarExpr::func(ScalarFunc::Abs, vec![arb_numeric_expr(rng, depth - 1)])
            .expect("numeric"),
        _ => ScalarExpr::func(
            ScalarFunc::Least,
            vec![
                arb_numeric_expr(rng, depth - 1),
                arb_numeric_expr(rng, depth - 1),
            ],
        )
        .expect("numeric"),
    }
}

/// Random well-typed boolean expressions.
fn arb_bool_expr(rng: &mut StdRng, depth: usize) -> ScalarExpr {
    if depth == 0 {
        return if rng.gen_bool(0.5) {
            ScalarExpr::column(2, DataType::Bool)
        } else {
            let op = [BinaryOp::Lt, BinaryOp::Eq, BinaryOp::GtEq][rng.gen_range(0usize..3)];
            let d = rng.gen_range(0usize..3);
            ScalarExpr::binary(op, arb_numeric_expr(rng, d), arb_numeric_expr(rng, d))
                .expect("comparison")
        };
    }
    match rng.gen_range(0u32..4) {
        0 => arb_bool_expr(rng, 0),
        1 => {
            let op = if rng.gen_bool(0.5) {
                BinaryOp::And
            } else {
                BinaryOp::Or
            };
            ScalarExpr::binary(
                op,
                arb_bool_expr(rng, depth - 1),
                arb_bool_expr(rng, depth - 1),
            )
            .expect("boolean")
        }
        2 => ScalarExpr::unary(UnaryOp::Not, arb_bool_expr(rng, depth - 1)).expect("boolean"),
        _ => ScalarExpr::IsNull {
            input: Box::new(arb_bool_expr(rng, depth - 1)),
            negated: rng.gen_bool(0.5),
        },
    }
}

fn check_chunk_vs_rows(e: &ScalarExpr, chunk: &Chunk) {
    let vectorized = e.eval(chunk);
    match vectorized {
        Ok(col) => {
            assert_eq!(col.len(), chunk.len());
            if !col.is_empty() && e.data_type() != DataType::Null {
                assert_eq!(col.data_type(), e.data_type(), "static type honored");
            }
            for i in 0..chunk.len() {
                let row_result = e
                    .eval_row(&chunk.row(i))
                    .expect("row eval agrees on success");
                let cell = col.value(i);
                // NaN-safe comparison.
                let equal = match (&cell, &row_result) {
                    (Value::Float(a), Value::Float(b)) => (a.is_nan() && b.is_nan()) || a == b,
                    (a, b) => a == b,
                };
                assert!(equal, "row {i}: chunk={cell} row={row_result} expr={e}");
            }
        }
        Err(_) => {
            // A vectorized error must be reproducible by at least one row.
            let any_row_errs = (0..chunk.len()).any(|i| e.eval_row(&chunk.row(i)).is_err());
            assert!(any_row_errs, "vectorized error with no failing row: {e}");
        }
    }
}

#[test]
fn numeric_chunk_eval_matches_row_eval() {
    let mut rng = StdRng::seed_from_u64(0x0E_4A_11);
    for _ in 0..96 {
        let depth = rng.gen_range(0usize..=3);
        let e = arb_numeric_expr(&mut rng, depth);
        let chunk = arb_chunk(&mut rng);
        check_chunk_vs_rows(&e, &chunk);
    }
}

#[test]
fn boolean_chunk_eval_matches_row_eval() {
    let mut rng = StdRng::seed_from_u64(0xB0_01);
    for _ in 0..96 {
        let depth = rng.gen_range(0usize..=3);
        let e = arb_bool_expr(&mut rng, depth);
        let chunk = arb_chunk(&mut rng);
        check_chunk_vs_rows(&e, &chunk);
    }
}

#[test]
fn filter_selection_subset() {
    let mut rng = StdRng::seed_from_u64(0xF1_17E5);
    for _ in 0..96 {
        let depth = rng.gen_range(0usize..=3);
        let e = arb_bool_expr(&mut rng, depth);
        let chunk = arb_chunk(&mut rng);
        if let Ok(col) = e.eval(&chunk) {
            let sel = col.to_selection().unwrap();
            assert_eq!(sel.len(), chunk.len());
            // Selected rows are exactly those evaluating to TRUE.
            for i in 0..chunk.len() {
                let expect = matches!(col.value(i), Value::Bool(true));
                assert_eq!(sel.get(i), expect);
            }
        }
    }
}
