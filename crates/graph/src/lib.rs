//! Graph substrate: CSR representation with dense re-labeling (§6.3 of
//! the paper) and an LDBC-SNB-like social graph generator for the
//! PageRank evaluation (§8.1.3).

pub mod csr;
pub mod generators;
pub mod ldbc;

pub use csr::{CsrGraph, VertexMapping};
pub use ldbc::{LdbcConfig, LdbcGraph};
