//! Small deterministic graphs for tests and examples.

/// A directed path `0 → 1 → ... → n-1`.
pub fn path(n: usize) -> (Vec<i64>, Vec<i64>) {
    let src: Vec<i64> = (0..n.saturating_sub(1) as i64).collect();
    let dest: Vec<i64> = (1..n as i64).collect();
    (src, dest)
}

/// A directed cycle over `n` vertices.
pub fn cycle(n: usize) -> (Vec<i64>, Vec<i64>) {
    let src: Vec<i64> = (0..n as i64).collect();
    let dest: Vec<i64> = (0..n as i64).map(|v| (v + 1) % n as i64).collect();
    (src, dest)
}

/// A star: every leaf `1..n` points at the hub `0`.
pub fn star_into_hub(n: usize) -> (Vec<i64>, Vec<i64>) {
    let src: Vec<i64> = (1..n as i64).collect();
    let dest: Vec<i64> = vec![0; n.saturating_sub(1)];
    (src, dest)
}

/// A complete directed graph (no self loops) over `n` vertices.
pub fn complete(n: usize) -> (Vec<i64>, Vec<i64>) {
    let mut src = Vec::new();
    let mut dest = Vec::new();
    for a in 0..n as i64 {
        for b in 0..n as i64 {
            if a != b {
                src.push(a);
                dest.push(b);
            }
        }
    }
    (src, dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    #[test]
    fn shapes() {
        let (s, d) = path(4);
        assert_eq!(s.len(), 3);
        let g = CsrGraph::from_edges(&s, &d).unwrap();
        assert_eq!(g.num_vertices(), 4);

        let (s, d) = cycle(4);
        let g = CsrGraph::from_edges(&s, &d).unwrap();
        assert!(g.out_degrees().iter().all(|&x| x == 1));

        let (s, d) = star_into_hub(5);
        let g = CsrGraph::from_edges(&s, &d).unwrap();
        let hub = g.mapping().to_dense(0).unwrap();
        assert_eq!(g.transpose().out_degree(hub), 4);

        let (s, _d) = complete(4);
        assert_eq!(s.len(), 12);
    }
}
