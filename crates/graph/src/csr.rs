//! Compressed sparse row graphs with dense vertex re-labeling.
//!
//! The paper's PageRank operator "ensures [efficient neighbor traversal]
//! by efficiently creating a temporary compressed sparse row (CSR)
//! representation that is optimized for the query at hand. We avoid
//! storage overhead and an access indirection in this mapping by
//! re-labeling all vertices and doing a direct mapping" — exactly what
//! [`VertexMapping`] + [`CsrGraph::from_edges`] implement, including the
//! reverse mapping applied when results leave the operator.

use std::collections::HashMap;

use hylite_common::{HyError, Result};

/// Maps arbitrary `i64` vertex ids to dense `0..n` ids and back.
#[derive(Debug, Clone, Default)]
pub struct VertexMapping {
    /// dense id → original id (the reverse mapping operator's table).
    originals: Vec<i64>,
    /// original id → dense id.
    dense: HashMap<i64, u32>,
}

impl VertexMapping {
    /// Empty mapping.
    pub fn new() -> VertexMapping {
        VertexMapping::default()
    }

    /// Intern an original id, returning its dense id.
    pub fn intern(&mut self, original: i64) -> u32 {
        match self.dense.get(&original) {
            Some(&d) => d,
            None => {
                let d = self.originals.len() as u32;
                self.originals.push(original);
                self.dense.insert(original, d);
                d
            }
        }
    }

    /// Dense id for an original id, if known.
    pub fn to_dense(&self, original: i64) -> Option<u32> {
        self.dense.get(&original).copied()
    }

    /// Original id for a dense id (the reverse mapping).
    pub fn to_original(&self, dense: u32) -> i64 {
        self.originals[dense as usize]
    }

    /// Number of interned vertices.
    pub fn len(&self) -> usize {
        self.originals.len()
    }

    /// True when no vertex was interned.
    pub fn is_empty(&self) -> bool {
        self.originals.is_empty()
    }

    /// The dense→original table.
    pub fn originals(&self) -> &[i64] {
        &self.originals
    }
}

/// A directed graph in CSR form over dense vertex ids.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` with v's out-edges.
    offsets: Vec<usize>,
    /// Flattened adjacency lists.
    targets: Vec<u32>,
    /// Re-labeling table (dense ↔ original ids).
    mapping: VertexMapping,
}

impl CsrGraph {
    /// Build a CSR graph from parallel (src, dest) arrays of original ids,
    /// re-labeling vertices densely in first-seen order. Vertices that
    /// only appear as destinations are included (with no out-edges).
    pub fn from_edges(src: &[i64], dest: &[i64]) -> Result<CsrGraph> {
        if src.len() != dest.len() {
            return Err(HyError::Analytics(format!(
                "edge arrays differ in length: {} vs {}",
                src.len(),
                dest.len()
            )));
        }
        let mut mapping = VertexMapping::new();
        // Pass 1: intern ids and count out-degrees.
        let mut dense_src = Vec::with_capacity(src.len());
        let mut dense_dest = Vec::with_capacity(dest.len());
        for (&s, &d) in src.iter().zip(dest) {
            dense_src.push(mapping.intern(s));
            dense_dest.push(mapping.intern(d));
        }
        let n = mapping.len();
        let mut degree = vec![0usize; n];
        for &s in &dense_src {
            degree[s as usize] += 1;
        }
        // Prefix sums → offsets.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        // Pass 2: scatter targets.
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0u32; src.len()];
        for (&s, &d) in dense_src.iter().zip(&dense_dest) {
            let c = &mut cursor[s as usize];
            targets[*c] = d;
            *c += 1;
        }
        Ok(CsrGraph {
            offsets,
            targets,
            mapping,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.mapping.len()
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of a dense vertex.
    pub fn out_degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbors of a dense vertex.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// The vertex re-labeling table.
    pub fn mapping(&self) -> &VertexMapping {
        &self.mapping
    }

    /// The transposed graph (in-edges become out-edges), sharing the same
    /// vertex mapping. PageRank's pull-based iteration reads this.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut degree = vec![0usize; n];
        for &t in &self.targets {
            degree[t as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0u32; self.targets.len()];
        for v in 0..n {
            for &t in self.neighbors(v as u32) {
                let c = &mut cursor[t as usize];
                targets[*c] = v as u32;
                *c += 1;
            }
        }
        CsrGraph {
            offsets,
            targets,
            mapping: self.mapping.clone(),
        }
    }

    /// Out-degrees of all vertices (used by PageRank for rank division).
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .map(|v| self.out_degree(v as u32))
            .collect()
    }

    /// Build a CSR graph together with per-edge weights aligned with
    /// [`CsrGraph::neighbors`] order (for weighted PageRank: edge weights
    /// as a lambda-style parameterization of the operator).
    pub fn from_weighted_edges(
        src: &[i64],
        dest: &[i64],
        weight: &[f64],
    ) -> Result<(CsrGraph, Vec<f64>)> {
        if src.len() != weight.len() {
            return Err(HyError::Analytics(format!(
                "edge weights differ in length: {} edges vs {} weights",
                src.len(),
                weight.len()
            )));
        }
        let graph = CsrGraph::from_edges(src, dest)?;
        // Scatter weights into CSR order (same two-pass layout).
        let n = graph.num_vertices();
        let mut cursor: Vec<usize> = graph.offsets[..n].to_vec();
        let mut out = vec![0.0f64; weight.len()];
        for ((&s, _), &w) in src.iter().zip(dest).zip(weight) {
            let dense = graph.mapping.to_dense(s).expect("interned in pass 1");
            let c = &mut cursor[dense as usize];
            out[*c] = w;
            *c += 1;
        }
        Ok((graph, out))
    }

    /// Edge slice bounds for vertex `v` (`offsets[v]..offsets[v+1]`),
    /// for indexing edge-aligned side arrays like weights.
    pub fn edge_range(&self, v: u32) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 10 → 20 → 30, 10 → 30 (original ids intentionally sparse).
    fn sample() -> CsrGraph {
        CsrGraph::from_edges(&[10, 20, 10], &[20, 30, 30]).unwrap()
    }

    #[test]
    fn relabeling_is_dense_and_reversible() {
        let g = sample();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        let d10 = g.mapping().to_dense(10).unwrap();
        let d30 = g.mapping().to_dense(30).unwrap();
        assert_eq!(g.mapping().to_original(d10), 10);
        assert_eq!(g.mapping().to_original(d30), 30);
        // Dense ids cover 0..n.
        let mut ids: Vec<u32> = (0..3)
            .map(|i| g.mapping().to_dense([10, 20, 30][i]).unwrap())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn neighbors_and_degrees() {
        let g = sample();
        let d10 = g.mapping().to_dense(10).unwrap();
        let d20 = g.mapping().to_dense(20).unwrap();
        let d30 = g.mapping().to_dense(30).unwrap();
        assert_eq!(g.out_degree(d10), 2);
        assert_eq!(g.out_degree(d20), 1);
        assert_eq!(g.out_degree(d30), 0);
        let mut n10: Vec<u32> = g.neighbors(d10).to_vec();
        n10.sort_unstable();
        let mut expect = vec![d20, d30];
        expect.sort_unstable();
        assert_eq!(n10, expect);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = sample();
        let t = g.transpose();
        assert_eq!(t.num_edges(), 3);
        let d10 = g.mapping().to_dense(10).unwrap();
        let d30 = g.mapping().to_dense(30).unwrap();
        // In the transpose, 30 has two out-edges (its two in-edges).
        assert_eq!(t.out_degree(d30), 2);
        assert_eq!(t.out_degree(d10), 0);
    }

    #[test]
    fn dest_only_vertices_included() {
        let g = CsrGraph::from_edges(&[1], &[2]).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.out_degree(g.mapping().to_dense(2).unwrap()), 0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(&[], &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn mismatched_arrays_rejected() {
        assert!(CsrGraph::from_edges(&[1], &[]).is_err());
    }

    #[test]
    fn self_loops_and_multi_edges_kept() {
        let g = CsrGraph::from_edges(&[1, 1, 1], &[1, 2, 2]).unwrap();
        let d1 = g.mapping().to_dense(1).unwrap();
        assert_eq!(g.out_degree(d1), 3);
    }
}
