//! LDBC-SNB-like social graph generation.
//!
//! The paper evaluates PageRank on the undirected person-knows-person
//! graph of the LDBC Social Network Benchmark at three scales
//! (≈11k/452k, 73k/4.6M, 499k/46M vertices/edges). The official Hadoop
//! datagen is out of scope here, so this module generates graphs that
//! match the properties PageRank cost depends on: vertex count, edge
//! count, heavy-tailed degree distribution (preferential attachment) and
//! a little local clustering (triangle closing), deterministically
//! seeded. DESIGN.md documents this substitution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the generator.
#[derive(Debug, Clone, Copy)]
pub struct LdbcConfig {
    /// Number of persons (vertices).
    pub vertices: usize,
    /// Target number of *undirected* friendships; the generated edge
    /// table stores both directions, so it has ~2× this many rows.
    pub edges: usize,
    /// Fraction of edges created by closing a friend-of-friend triangle
    /// instead of pure preferential attachment (adds clustering).
    pub triangle_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LdbcConfig {
    /// The paper's small graph: ≈11k vertices, 452k directed edges.
    pub fn paper_small() -> LdbcConfig {
        LdbcConfig {
            vertices: 11_000,
            edges: 226_000,
            triangle_fraction: 0.3,
            seed: 42,
        }
    }

    /// The paper's medium graph: ≈73k vertices, 4.6M directed edges.
    pub fn paper_medium() -> LdbcConfig {
        LdbcConfig {
            vertices: 73_000,
            edges: 2_300_000,
            triangle_fraction: 0.3,
            seed: 42,
        }
    }

    /// The paper's large graph: ≈499k vertices, 46M directed edges.
    pub fn paper_large() -> LdbcConfig {
        LdbcConfig {
            vertices: 499_000,
            edges: 23_000_000,
            triangle_fraction: 0.3,
            seed: 42,
        }
    }

    /// Scale vertex and friendship counts by `factor` (≤ 1 shrinks).
    pub fn scaled(self, factor: f64) -> LdbcConfig {
        LdbcConfig {
            vertices: ((self.vertices as f64 * factor) as usize).max(16),
            edges: ((self.edges as f64 * factor) as usize).max(32),
            ..self
        }
    }
}

/// A generated person-knows-person graph as a directed edge table
/// (both directions of every friendship).
#[derive(Debug, Clone)]
pub struct LdbcGraph {
    /// Source person ids. Person ids are `1000 + 7·k` — deliberately
    /// non-dense so PageRank's re-labeling path is exercised.
    pub src: Vec<i64>,
    /// Destination person ids.
    pub dest: Vec<i64>,
    /// Number of persons.
    pub vertices: usize,
}

impl LdbcGraph {
    /// Generate a graph for `config`.
    pub fn generate(config: &LdbcConfig) -> LdbcGraph {
        let n = config.vertices.max(2);
        let target_friendships = config.edges.max(n);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Preferential attachment via a repeated-endpoints pool: picking
        // a uniform element of `pool` selects vertices proportionally to
        // their current degree (plus one smoothing entry per vertex).
        let mut pool: Vec<u32> = (0..n as u32).collect();
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        let add_edge =
            |a: u32, b: u32, adjacency: &mut Vec<Vec<u32>>, pool: &mut Vec<u32>| -> bool {
                if a == b || adjacency[a as usize].contains(&b) {
                    return false;
                }
                adjacency[a as usize].push(b);
                adjacency[b as usize].push(a);
                // Double weight per new edge strengthens the preferential-
                // attachment tail toward LDBC-like skew.
                pool.extend_from_slice(&[a, a, b, b]);
                true
            };

        // Seed ring so every vertex has degree ≥ 2.
        for v in 0..n as u32 {
            let w = ((v as usize + 1) % n) as u32;
            add_edge(v, w, &mut adjacency, &mut pool);
        }

        let mut friendships = n; // ring edges
        let mut attempts = 0usize;
        let max_attempts = target_friendships * 8;
        while friendships < target_friendships && attempts < max_attempts {
            attempts += 1;
            let a = pool[rng.gen_range(0..pool.len())];
            let close_triangle =
                rng.gen_bool(config.triangle_fraction) && !adjacency[a as usize].is_empty();
            let b = if close_triangle {
                // friend-of-friend
                let f = adjacency[a as usize][rng.gen_range(0..adjacency[a as usize].len())];
                if adjacency[f as usize].is_empty() {
                    continue;
                }
                adjacency[f as usize][rng.gen_range(0..adjacency[f as usize].len())]
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if add_edge(a, b, &mut adjacency, &mut pool) {
                friendships += 1;
            }
        }

        // Emit both directions with sparse original ids.
        let id_of = |v: u32| 1000 + 7 * v as i64;
        let mut src = Vec::with_capacity(friendships * 2);
        let mut dest = Vec::with_capacity(friendships * 2);
        for (v, neigh) in adjacency.iter().enumerate() {
            for &w in neigh {
                src.push(id_of(v as u32));
                dest.push(id_of(w));
            }
        }
        LdbcGraph {
            src,
            dest,
            vertices: n,
        }
    }

    /// Directed edge count (2× the friendships).
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    fn small() -> LdbcConfig {
        LdbcConfig {
            vertices: 500,
            edges: 5_000,
            triangle_fraction: 0.3,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = LdbcGraph::generate(&small());
        let b = LdbcGraph::generate(&small());
        assert_eq!(a.src, b.src);
        assert_eq!(a.dest, b.dest);
        let c = LdbcGraph::generate(&LdbcConfig { seed: 8, ..small() });
        assert_ne!(a.src, c.src);
    }

    #[test]
    fn edge_count_near_target() {
        let g = LdbcGraph::generate(&small());
        let target = 2 * 5_000;
        assert!(
            g.num_edges() as f64 > target as f64 * 0.9,
            "got {} directed edges, wanted ≈{target}",
            g.num_edges()
        );
    }

    #[test]
    fn symmetric_and_simple() {
        let g = LdbcGraph::generate(&small());
        use std::collections::HashSet;
        let edges: HashSet<(i64, i64)> =
            g.src.iter().copied().zip(g.dest.iter().copied()).collect();
        assert_eq!(edges.len(), g.num_edges(), "no duplicate directed edges");
        for &(s, d) in &edges {
            assert!(edges.contains(&(d, s)), "undirected symmetry");
            assert_ne!(s, d, "no self loops");
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = LdbcGraph::generate(&LdbcConfig {
            vertices: 2000,
            edges: 20_000,
            triangle_fraction: 0.2,
            seed: 13,
        });
        let csr = CsrGraph::from_edges(&g.src, &g.dest).unwrap();
        let degs = csr.out_degrees();
        let max = *degs.iter().max().unwrap() as f64;
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        // A Poisson-ish (non-preferential) graph at this density tops out
        // near 2× the mean; 3× distinguishes a heavy tail without being
        // sensitive to the exact RNG stream.
        assert!(
            max > mean * 3.0,
            "expected heavy tail: max {max} vs mean {mean}"
        );
    }

    #[test]
    fn covers_all_vertices() {
        let g = LdbcGraph::generate(&small());
        let csr = CsrGraph::from_edges(&g.src, &g.dest).unwrap();
        assert_eq!(csr.num_vertices(), 500);
        // Ring seeding ⇒ minimum degree ≥ 2.
        assert!(csr.out_degrees().iter().all(|&d| d >= 2));
    }

    #[test]
    fn paper_configs_scale() {
        let c = LdbcConfig::paper_small().scaled(0.01);
        assert!(c.vertices >= 100);
        let g = LdbcGraph::generate(&c);
        assert!(g.num_edges() > c.vertices);
    }
}
