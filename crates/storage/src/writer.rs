//! The writer gate: database-wide single-writer serialization.
//!
//! HyLite's write model is single-writer by design (the paper's subject
//! is analytics, not concurrency control): `Table::commit`/`rollback`
//! promote or discard the *entire* working state past the committed
//! watermark, which is only sound if at most one session has staged
//! changes at a time. The gate enforces exactly that:
//!
//! * an autocommit statement holds the gate from its first table
//!   mutation through the WAL append and the in-memory publish;
//! * an explicit transaction acquires the gate at its first write and
//!   holds it until `COMMIT` / `ROLLBACK` (or session drop);
//! * bulk loads (`copy_csv`) hold it for the duration of the load.
//!
//! Readers never touch the gate — they scan `Arc`-stable committed
//! snapshots. Serializing writers also pins the WAL frame order to the
//! physical append order: rows are appended, logged, and published under
//! one gate hold, so replay reproduces the same positional row ids that
//! later `Delete` frames refer to.
//!
//! The gate is deliberately not an RAII-only lock: a session must be
//! able to acquire it in one statement (`INSERT` inside `BEGIN`) and
//! release it in another (`COMMIT`), so [`WriterGate::acquire`] /
//! [`WriterGate::release`] are exposed raw, with [`WriterGate::lock`]
//! providing a scoped guard for single-scope holders.

use std::sync::{Condvar, Mutex};

/// A FIFO-ish (OS-scheduled) exclusive gate for table writers. Cheap to
/// construct; one per database, owned by the catalog.
#[derive(Debug, Default)]
pub struct WriterGate {
    held: Mutex<bool>,
    cv: Condvar,
}

impl WriterGate {
    /// A fresh, unheld gate.
    pub fn new() -> WriterGate {
        WriterGate::default()
    }

    /// Block until the gate is free, then take it.
    pub fn acquire(&self) {
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        while *held {
            held = self.cv.wait(held).unwrap_or_else(|e| e.into_inner());
        }
        *held = true;
    }

    /// Release the gate. Must only be called by the holder.
    pub fn release(&self) {
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(*held, "releasing a WriterGate that is not held");
        *held = false;
        drop(held);
        self.cv.notify_one();
    }

    /// Acquire with a scoped RAII guard (for holders whose critical
    /// section fits one scope, e.g. `copy_csv`).
    pub fn lock(&self) -> WriterGuard<'_> {
        self.acquire();
        WriterGuard { gate: self }
    }

    /// Whether the gate is currently held (test/diagnostic inspection;
    /// the answer can be stale by the time the caller looks at it).
    pub fn is_held(&self) -> bool {
        *self.held.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Scoped hold on a [`WriterGate`]; releases on drop.
#[derive(Debug)]
pub struct WriterGuard<'a> {
    gate: &'a WriterGate,
}

impl Drop for WriterGuard<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn acquire_release_cycle() {
        let gate = WriterGate::new();
        assert!(!gate.is_held());
        gate.acquire();
        assert!(gate.is_held());
        gate.release();
        assert!(!gate.is_held());
        {
            let _g = gate.lock();
            assert!(gate.is_held());
        }
        assert!(!gate.is_held());
    }

    #[test]
    fn gate_excludes_concurrent_holders() {
        let gate = Arc::new(WriterGate::new());
        let inside = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let inside = Arc::clone(&inside);
                let max_seen = Arc::clone(&max_seen);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let _g = gate.lock();
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "mutual exclusion");
        assert!(!gate.is_held());
    }

    #[test]
    fn cross_scope_hold_survives_other_statements() {
        // Simulates a transaction: acquire in one "statement", release in
        // a later one, with a contender blocked in between.
        let gate = Arc::new(WriterGate::new());
        gate.acquire();
        let contender = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.acquire();
                gate.release();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!contender.is_finished(), "contender must block on the gate");
        gate.release();
        contender.join().unwrap();
        assert!(!gate.is_held());
    }
}
