//! Crash recovery: checkpoint load + WAL replay on database open.
//!
//! Procedure (see `docs/DURABILITY.md` for the full walkthrough):
//!
//! 1. Delete any leftover `checkpoint.tmp` — it is scratch from an
//!    interrupted checkpoint; the previous checkpoint is still intact.
//! 2. Load `checkpoint.hylite` if present. A corrupt checkpoint is a
//!    *hard error*: silently starting empty would be data loss.
//! 3. Scan the WAL, replaying valid commit frames in order. Frames with
//!    `lsn < base_lsn` are already inside the checkpoint (the crash
//!    happened between checkpoint publish and WAL truncation) and are
//!    skipped. The first torn or CRC-invalid frame ends the replay; the
//!    tail past it is discarded and the file truncated back to the valid
//!    prefix.
//!
//! Replay is tolerant of redo ops referencing missing tables: DDL is
//! logged at execution time while DML is logged at commit, so a
//! transaction that inserts into a table and then drops it produces an
//! `Insert` frame *after* the `DropTable` frame. Such orphaned ops are
//! counted as skipped, not errors.

use std::path::Path;
use std::sync::Arc;

use hylite_common::faultfs::Vfs;
use hylite_common::{MetricsRegistry, Result};

use crate::catalog::Catalog;
use crate::checkpoint::{decode_manifest, install_manifest, CHECKPOINT_FILE, CHECKPOINT_TMP_FILE};
use crate::segment::SegmentStore;
use crate::wal::{scan_wal, RedoOp, WAL_FILE};

/// What recovery found and did; surfaced by `Database::open` and printed
/// by the server before it accepts connections.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Whether a checkpoint file was loaded.
    pub checkpoint_loaded: bool,
    /// The loaded checkpoint's base LSN (0 without a checkpoint).
    pub base_lsn: u64,
    /// Physical rows restored from the checkpoint.
    pub checkpoint_rows: u64,
    /// WAL commit frames replayed (frames below `base_lsn` not counted).
    pub replayed_records: u64,
    /// Individual redo ops applied during replay.
    pub replayed_ops: u64,
    /// Redo ops skipped (e.g. referencing a table dropped later in the
    /// same WAL).
    pub skipped_ops: u64,
    /// Bytes of torn/corrupt WAL tail discarded.
    pub discarded_bytes: u64,
    /// Segment files deleted because no manifest references them (debris
    /// of a checkpoint or bootstrap interrupted by a crash).
    pub orphan_segments_removed: u64,
    /// Set when a CRC-valid frame did not continue the replay LSN
    /// sequence (`(expected, found)`); the WAL was truncated at the last
    /// contiguous frame. Replication reuses this check: a gap means the
    /// log forked, and replaying past it would silently diverge.
    pub lsn_gap: Option<(u64, u64)>,
    /// CRC-valid commit records dropped by the LSN-gap truncation.
    pub gap_dropped_records: u64,
    /// Highest LSN whose effects are visible after recovery.
    pub recovered_lsn: u64,
    /// The LSN the next commit will receive.
    pub next_lsn: u64,
}

impl RecoveryReport {
    /// One-line human-readable summary (the server logs this).
    pub fn summary(&self) -> String {
        let gap = match self.lsn_gap {
            Some((expected, found)) => format!(
                ", lsn gap at {found} (expected {expected}): {} records dropped",
                self.gap_dropped_records
            ),
            None => String::new(),
        };
        format!(
            "recovered to lsn {} ({} checkpoint rows, {} wal records replayed, {} ops skipped, {} torn bytes discarded{gap})",
            self.recovered_lsn,
            self.checkpoint_rows,
            self.replayed_records,
            self.skipped_ops,
            self.discarded_bytes,
        )
    }
}

/// Apply one redo op; returns `false` if it had to be skipped. The
/// replication apply path reuses this so replicated frames go through
/// exactly the redo machinery recovery uses.
pub(crate) fn apply_op(catalog: &Catalog, op: RedoOp) -> bool {
    match op {
        RedoOp::CreateTable { name, schema } => catalog.create_table(&name, schema).is_ok(),
        RedoOp::DropTable { name } => catalog.drop_table(&name, true).is_ok(),
        RedoOp::Insert { table, rows } => match catalog.get_table(&table) {
            Ok(t) => {
                let mut g = t.write();
                let ok = g.insert_chunk(rows).is_ok();
                if ok {
                    g.commit();
                }
                ok
            }
            Err(_) => false,
        },
        RedoOp::Delete { table, row_ids } => match catalog.get_table(&table) {
            Ok(t) => {
                let mut g = t.write();
                let total = g.total_rows() as u64;
                let ids: Vec<usize> = row_ids
                    .iter()
                    .filter(|&&id| id < total)
                    .map(|&id| id as usize)
                    .collect();
                let complete = ids.len() == row_ids.len();
                if g.delete_rows(&ids).is_ok() {
                    g.commit();
                    complete
                } else {
                    false
                }
            }
            Err(_) => false,
        },
    }
}

/// Run recovery against a data directory: returns the rebuilt catalog
/// and a report. The WAL file is left repaired (truncated to its valid
/// prefix) and ready for appending. Segment files the manifest does not
/// reference (half-written checkpoints, aborted bootstraps) are deleted;
/// the id allocator resumes past every surviving file.
pub fn recover(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    store: &Arc<SegmentStore>,
    metrics: &MetricsRegistry,
) -> Result<(Catalog, RecoveryReport)> {
    vfs.create_dir_all(dir)?;
    let mut report = RecoveryReport::default();
    let catalog = Catalog::new();

    let tmp = dir.join(CHECKPOINT_TMP_FILE);
    if vfs.exists(&tmp) {
        let _ = vfs.remove(&tmp);
    }

    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let mut referenced = std::collections::HashSet::new();
    if vfs.exists(&ckpt_path) {
        let bytes = vfs.read(&ckpt_path)?;
        let image = decode_manifest(&bytes)?;
        report.base_lsn = image.base_lsn;
        referenced = image.referenced_segments();
        report.checkpoint_rows = install_manifest(image, &catalog, store)?;
        report.checkpoint_loaded = true;
    }
    // Orphan collection: a crash between segment writes and the manifest
    // rename leaves files no manifest references. Safe to delete — the
    // published manifest is the only root.
    let orphans = store.gc(&referenced)?;
    report.orphan_segments_removed = orphans.len() as u64;
    store.refresh_next_id()?;

    let wal_path = dir.join(WAL_FILE);
    let mut scan = scan_wal(vfs.as_ref(), &wal_path)?;
    if scan.discarded_bytes > 0 {
        vfs.truncate(&wal_path, scan.valid_len)?;
        report.discarded_bytes = scan.discarded_bytes;
        metrics.counter("recovery.torn_frames").inc();
    }
    // LSN-gap check: the frames recovery will replay (lsn >= base_lsn)
    // must form a contiguous sequence starting at the checkpoint's base
    // LSN. CRC catches torn and bit-flipped frames but not a *missing*
    // frame (e.g. a hole left by mixing WAL files from different
    // histories); replaying past a hole would silently produce a state
    // no primary ever had, so the log is cut at the last contiguous
    // frame instead.
    let mut prev_replayed: Option<u64> = None;
    let mut cut: Option<(usize, u64, u64)> = None;
    for (i, (lsn, _)) in scan.commits.iter().enumerate() {
        if *lsn < report.base_lsn {
            continue; // inside the checkpoint; never replayed
        }
        let expected = match prev_replayed {
            Some(p) => p + 1,
            None => report.base_lsn.max(1),
        };
        if *lsn != expected {
            cut = Some((i, expected, *lsn));
            break;
        }
        prev_replayed = Some(*lsn);
    }
    if let Some((i, expected, found)) = cut {
        let keep_len = if i == 0 {
            crate::wal::WAL_HEADER_LEN
        } else {
            scan.frame_ends[i - 1]
        };
        report.lsn_gap = Some((expected, found));
        report.gap_dropped_records = (scan.commits.len() - i) as u64;
        report.discarded_bytes += scan.valid_len - keep_len;
        vfs.truncate(&wal_path, keep_len)?;
        scan.commits.truncate(i);
    }
    let mut last_lsn = 0u64;
    for (lsn, ops) in scan.commits {
        last_lsn = last_lsn.max(lsn);
        if lsn < report.base_lsn {
            continue; // already inside the checkpoint
        }
        for op in ops {
            if apply_op(&catalog, op) {
                report.replayed_ops += 1;
            } else {
                report.skipped_ops += 1;
            }
        }
        report.replayed_records += 1;
        report.recovered_lsn = lsn;
    }
    report.recovered_lsn = report.recovered_lsn.max(report.base_lsn.saturating_sub(1));
    report.next_lsn = (last_lsn + 1).max(report.base_lsn).max(1);
    metrics
        .counter("recovery.replayed_records")
        .add(report.replayed_records);
    metrics
        .counter("recovery.discarded_bytes")
        .add(report.discarded_bytes);
    Ok((catalog, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{encode_manifest, publish_checkpoint, TableManifest};
    use crate::pool::BufferPool;
    use crate::wal::{SyncMode, WalWriter};
    use hylite_common::{Chunk, ColumnVector, DataType, FaultVfs, Field, Schema, Value};
    use std::path::PathBuf;

    fn setup() -> (Arc<dyn Vfs>, FaultVfs, PathBuf, Arc<SegmentStore>) {
        let fault = FaultVfs::new();
        let vfs = Arc::new(fault.clone()) as Arc<dyn Vfs>;
        let dir = PathBuf::from("data");
        let store = SegmentStore::open(
            Arc::clone(&vfs),
            &dir,
            std::sync::Arc::new(BufferPool::new(1 << 24, &MetricsRegistry::new())),
        )
        .unwrap();
        (vfs, fault, dir, store)
    }

    /// Seal `catalog` into `store` and publish a manifest at `base_lsn` —
    /// the unit-test stand-in for `Durability::checkpoint`.
    fn publish_manifest(
        vfs: &Arc<dyn Vfs>,
        dir: &Path,
        store: &Arc<SegmentStore>,
        catalog: &Catalog,
        base_lsn: u64,
    ) {
        let mut tables = Vec::new();
        for name in catalog.table_names() {
            let t = catalog.get_table(&name).unwrap();
            let snap = t.read().committed_snapshot();
            let mut segments = Vec::new();
            for seg in snap.segments() {
                let chunk = seg.to_chunk().unwrap();
                let id = store.alloc_id();
                store.write_segment(id, &chunk).unwrap();
                segments.push((id, chunk.len() as u64));
            }
            let row_limit = snap.visible_rows() as u64;
            let deleted: Vec<u64> = snap
                .deleted()
                .iter_ones()
                .take_while(|&i| (i as u64) < row_limit)
                .map(|i| i as u64)
                .collect();
            tables.push(TableManifest {
                name,
                schema: snap.schema().as_ref().clone(),
                segments,
                row_limit,
                deleted,
            });
        }
        store.sync_dir().unwrap();
        publish_checkpoint(vfs.as_ref(), dir, &encode_manifest(base_lsn, &tables)).unwrap();
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int64)])
    }

    fn wal(vfs: &Arc<dyn Vfs>, dir: &Path, next_lsn: u64) -> WalWriter {
        WalWriter::open(
            Arc::clone(vfs),
            dir.join(WAL_FILE),
            SyncMode::Commit,
            1024,
            next_lsn,
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap()
    }

    fn insert(table: &str, v: i64) -> RedoOp {
        RedoOp::Insert {
            table: table.into(),
            rows: Chunk::new(vec![ColumnVector::from_i64(vec![v])]),
        }
    }

    #[test]
    fn empty_dir_recovers_empty() {
        let (vfs, _, dir, store) = setup();
        let (catalog, report) = recover(&vfs, &dir, &store, &MetricsRegistry::new()).unwrap();
        assert!(catalog.table_names().is_empty());
        assert!(!report.checkpoint_loaded);
        assert_eq!(report.next_lsn, 1);
    }

    #[test]
    fn wal_only_replay() {
        let (vfs, _, dir, store) = setup();
        let mut w = wal(&vfs, &dir, 1);
        w.log_commit(&[RedoOp::CreateTable {
            name: "t".into(),
            schema: schema(),
        }])
        .unwrap();
        w.log_commit(&[insert("t", 1), insert("t", 2)]).unwrap();
        w.log_commit(&[RedoOp::Delete {
            table: "t".into(),
            row_ids: vec![0],
        }])
        .unwrap();
        let (catalog, report) = recover(&vfs, &dir, &store, &MetricsRegistry::new()).unwrap();
        assert_eq!(report.replayed_records, 3);
        assert_eq!(report.replayed_ops, 4);
        assert_eq!(report.next_lsn, 4);
        let t = catalog.get_table("t").unwrap();
        assert_eq!(t.read().committed_live_rows(), 1);
    }

    #[test]
    fn checkpoint_plus_wal_tail() {
        let (vfs, _, dir, store) = setup();
        // Build state, checkpoint it at base_lsn=5, then log more.
        let catalog = Catalog::new();
        let t = catalog.create_table("t", schema()).unwrap();
        {
            let mut g = t.write();
            g.insert_rows(&[vec![Value::Int(10)]]).unwrap();
            g.commit();
        }
        publish_manifest(&vfs, &dir, &store, &catalog, 5);
        let mut w = wal(&vfs, &dir, 1);
        // Frames below base_lsn must be skipped (double-replay guard)...
        w.log_commit(&[insert("t", 999)]).unwrap(); // lsn 1 — pre-checkpoint
                                                    // ...while frames at/after base_lsn replay. Jump the LSN forward
                                                    // as if commits 2..=4 were also checkpointed.
        let mut w = wal(&vfs, &dir, 5);
        w.log_commit(&[insert("t", 20)]).unwrap(); // lsn 5
        let (catalog, report) = recover(&vfs, &dir, &store, &MetricsRegistry::new()).unwrap();
        assert!(report.checkpoint_loaded);
        assert_eq!(report.base_lsn, 5);
        assert_eq!(report.replayed_records, 1);
        assert_eq!(report.next_lsn, 6);
        let t = catalog.get_table("t").unwrap();
        let vals: Vec<i64> = t
            .read()
            .committed_snapshot()
            .live_chunks()
            .unwrap()
            .iter()
            .flat_map(|c| c.rows())
            .map(|r| r.int(0).unwrap())
            .collect();
        assert_eq!(vals, vec![10, 20], "pre-checkpoint frame not re-applied");
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let (vfs, fault, dir, store) = setup();
        let mut w = wal(&vfs, &dir, 1);
        w.log_commit(&[RedoOp::CreateTable {
            name: "t".into(),
            schema: schema(),
        }])
        .unwrap();
        w.log_commit(&[insert("t", 1)]).unwrap();
        let wal_path = dir.join(WAL_FILE);
        let good_len = fault.file_len(&wal_path).unwrap() as u64;
        let mut f = vfs.open_append(&wal_path).unwrap();
        f.write_all(&[0xAB; 13]).unwrap(); // torn garbage tail
        let (catalog, report) = recover(&vfs, &dir, &store, &MetricsRegistry::new()).unwrap();
        assert_eq!(report.discarded_bytes, 13);
        assert_eq!(report.replayed_records, 2);
        assert_eq!(
            fault.file_len(&wal_path).unwrap() as u64,
            good_len,
            "file repaired in place"
        );
        assert_eq!(
            catalog.get_table("t").unwrap().read().committed_live_rows(),
            1
        );
    }

    #[test]
    fn orphaned_ops_are_skipped() {
        let (vfs, _, dir, store) = setup();
        let mut w = wal(&vfs, &dir, 1);
        // DDL logs at execution, DML at commit: INSERT-then-DROP inside
        // one transaction yields Drop before Insert in the WAL.
        w.log_commit(&[RedoOp::CreateTable {
            name: "t".into(),
            schema: schema(),
        }])
        .unwrap();
        w.log_commit(&[RedoOp::DropTable { name: "t".into() }])
            .unwrap();
        w.log_commit(&[insert("t", 1)]).unwrap();
        let (catalog, report) = recover(&vfs, &dir, &store, &MetricsRegistry::new()).unwrap();
        assert!(!catalog.has_table("t"));
        assert_eq!(report.skipped_ops, 1);
    }

    #[test]
    fn lsn_gap_truncates_at_last_contiguous_frame() {
        let (vfs, fault, dir, store) = setup();
        let mut w = wal(&vfs, &dir, 1);
        w.log_commit(&[RedoOp::CreateTable {
            name: "t".into(),
            schema: schema(),
        }])
        .unwrap();
        w.log_commit(&[insert("t", 1)]).unwrap(); // lsn 2
        let wal_path = dir.join(WAL_FILE);
        let good_len = fault.file_len(&wal_path).unwrap() as u64;
        // A CRC-valid frame that skips lsn 3 entirely: a forked history,
        // not a torn tail.
        let mut w = wal(&vfs, &dir, 4);
        w.log_commit(&[insert("t", 99)]).unwrap(); // lsn 4 — gap!
        w.log_commit(&[insert("t", 100)]).unwrap(); // lsn 5 — dropped too
        let (catalog, report) = recover(&vfs, &dir, &store, &MetricsRegistry::new()).unwrap();
        assert_eq!(report.lsn_gap, Some((3, 4)));
        assert_eq!(report.gap_dropped_records, 2);
        assert_eq!(report.replayed_records, 2);
        assert!(report.discarded_bytes > 0);
        assert_eq!(
            fault.file_len(&wal_path).unwrap() as u64,
            good_len,
            "file truncated at the last contiguous frame"
        );
        assert_eq!(
            catalog.get_table("t").unwrap().read().committed_live_rows(),
            1,
            "post-gap frames were not applied"
        );
        assert!(report.summary().contains("lsn gap"));
        // A second recovery of the repaired file is clean.
        let (_, report2) = recover(&vfs, &dir, &store, &MetricsRegistry::new()).unwrap();
        assert_eq!(report2.lsn_gap, None);
        assert_eq!(report2.next_lsn, 3);
    }

    #[test]
    fn lsn_jump_up_to_base_lsn_is_not_a_gap() {
        // The crash-between-checkpoint-publish-and-truncate shape: frames
        // below base_lsn may end anywhere, and replay starts exactly at
        // base_lsn. That jump is legal; only holes in the *replayed*
        // sequence are divergence.
        let (vfs, _, dir, store) = setup();
        let catalog = Catalog::new();
        let t = catalog.create_table("t", schema()).unwrap();
        {
            let mut g = t.write();
            g.insert_rows(&[vec![Value::Int(10)]]).unwrap();
            g.commit();
        }
        publish_manifest(&vfs, &dir, &store, &catalog, 5);
        let mut w = wal(&vfs, &dir, 1);
        w.log_commit(&[insert("t", 999)]).unwrap(); // lsn 1 — pre-checkpoint
        let mut w = wal(&vfs, &dir, 5);
        w.log_commit(&[insert("t", 20)]).unwrap(); // lsn 5 == base_lsn
        let (_, report) = recover(&vfs, &dir, &store, &MetricsRegistry::new()).unwrap();
        assert_eq!(report.lsn_gap, None);
        assert_eq!(report.replayed_records, 1);
    }

    #[test]
    fn leftover_tmp_checkpoint_is_removed() {
        let (vfs, _, dir, store) = setup();
        let tmp = dir.join(CHECKPOINT_TMP_FILE);
        let mut f = vfs.create(&tmp).unwrap();
        f.write_all(b"half-written checkpoint").unwrap();
        drop(f);
        let (_, report) = recover(&vfs, &dir, &store, &MetricsRegistry::new()).unwrap();
        assert!(!vfs.exists(&tmp));
        assert!(!report.checkpoint_loaded);
    }

    #[test]
    fn corrupt_checkpoint_is_fatal() {
        let (vfs, fault, dir, store) = setup();
        let catalog = Catalog::new();
        catalog.create_table("t", schema()).unwrap();
        publish_manifest(&vfs, &dir, &store, &catalog, 1);
        fault.corrupt(&dir.join(CHECKPOINT_FILE), 10, 0x80).unwrap();
        assert!(recover(&vfs, &dir, &store, &MetricsRegistry::new()).is_err());
    }
}
