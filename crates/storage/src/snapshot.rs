//! Stable table snapshots and morsel-wise parallel scan support.

use std::sync::Arc;

use hylite_common::{Bitmap, Chunk, ColumnVector, HyError, Result, Schema};

use crate::segment::{DiskSegment, ZoneRange, BLOCK_ROWS};

/// One table segment: either resident in memory (the write path and
/// not-yet-checkpointed data) or sealed on disk and read block-by-block
/// through the buffer pool. A table is always a disk-backed prefix
/// followed by a resident tail.
#[derive(Debug, Clone)]
pub enum SegmentHandle {
    /// Rows held in memory.
    Resident(Arc<Chunk>),
    /// Rows in a sealed segment file.
    Disk(Arc<DiskSegment>),
}

impl SegmentHandle {
    /// Rows in this segment.
    pub fn len(&self) -> usize {
        match self {
            SegmentHandle::Resident(c) => c.len(),
            SegmentHandle::Disk(s) => s.rows(),
        }
    }

    /// Whether the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the segment lives in memory.
    pub fn is_resident(&self) -> bool {
        matches!(self, SegmentHandle::Resident(_))
    }

    /// The disk segment, if sealed.
    pub fn as_disk(&self) -> Option<&Arc<DiskSegment>> {
        match self {
            SegmentHandle::Resident(_) => None,
            SegmentHandle::Disk(s) => Some(s),
        }
    }

    /// Materialize rows `[offset, offset+len)`, optionally projected to
    /// `cols`. Resident whole-segment reads are zero-copy (`Arc` clones);
    /// disk reads go through the buffer pool.
    pub fn read_rows(&self, offset: usize, len: usize, cols: Option<&[usize]>) -> Result<Chunk> {
        match self {
            SegmentHandle::Resident(chunk) => {
                if offset + len > chunk.len() {
                    return Err(HyError::Storage(format!(
                        "segment read [{offset}, +{len}) out of range ({} rows)",
                        chunk.len()
                    )));
                }
                match cols {
                    None => Ok(if offset == 0 && len == chunk.len() {
                        chunk.as_ref().clone()
                    } else {
                        chunk.slice(offset, len)
                    }),
                    Some([]) => Ok(Chunk::zero_column(len)),
                    Some(ids) => {
                        let full = offset == 0 && len == chunk.len();
                        let mut out: Vec<Arc<ColumnVector>> = Vec::with_capacity(ids.len());
                        for &c in ids {
                            if c >= chunk.num_columns() {
                                return Err(HyError::Storage(format!("segment has no column {c}")));
                            }
                            let col = &chunk.columns()[c];
                            out.push(if full {
                                Arc::clone(col)
                            } else {
                                Arc::new(col.slice(offset, len))
                            });
                        }
                        Ok(Chunk::from_arc_columns(out))
                    }
                }
            }
            SegmentHandle::Disk(seg) => seg.read_rows(offset, len, cols),
        }
    }

    /// Materialize the whole segment.
    pub fn to_chunk(&self) -> Result<Chunk> {
        self.read_rows(0, self.len(), None)
    }
}

/// Block-skipping counters for one scan (EXPLAIN ANALYZE surface).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanPruning {
    /// Blocks whose data the scan will read.
    pub blocks_scanned: usize,
    /// Blocks skipped because their zone maps exclude the predicate.
    pub blocks_pruned: usize,
}

/// A consistent view of a table at a point in time.
///
/// Holds handles to the segments it covers plus its own copy of the
/// delete mask, so later table mutations (and even
/// [`crate::Table::compact`]) cannot disturb a running scan. Disk-backed
/// segments stay open (their files survive GC) for the snapshot's
/// lifetime.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    schema: Arc<Schema>,
    segments: Vec<SegmentHandle>,
    /// Visible row-id horizon; rows at or past this id are invisible even
    /// if the last covered segment extends further.
    row_limit: usize,
    deleted: Bitmap,
}

/// One unit of parallel scan work: a slice of one segment.
#[derive(Debug, Clone)]
pub struct Morsel {
    /// Index into the snapshot's segment list.
    pub segment: usize,
    /// Row offset within the segment.
    pub offset: usize,
    /// Number of rows in this morsel.
    pub len: usize,
    /// Global row id of the first row (segment base + offset).
    pub base_row_id: usize,
}

impl TableSnapshot {
    /// Build a snapshot (used by [`crate::Table`]).
    pub fn new(
        schema: Arc<Schema>,
        segments: Vec<SegmentHandle>,
        row_limit: usize,
        deleted: Bitmap,
    ) -> TableSnapshot {
        TableSnapshot {
            schema,
            segments,
            row_limit,
            deleted,
        }
    }

    /// Snapshot of a free-standing chunk (used for intermediate results
    /// that flow through scan-like operators).
    pub fn from_chunk(schema: Arc<Schema>, chunk: Chunk) -> TableSnapshot {
        let n = chunk.len();
        TableSnapshot {
            schema,
            segments: vec![SegmentHandle::Resident(Arc::new(chunk))],
            row_limit: n,
            deleted: Bitmap::filled(n, false),
        }
    }

    /// The snapshot's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of covered segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The covered segments in row-id order.
    pub fn segments(&self) -> &[SegmentHandle] {
        &self.segments
    }

    /// The delete mask (checkpoint serialization).
    pub fn deleted(&self) -> &Bitmap {
        &self.deleted
    }

    /// Visible row horizon (includes deleted rows).
    pub fn visible_rows(&self) -> usize {
        self.row_limit
    }

    /// Live (visible and not deleted) rows.
    pub fn live_rows(&self) -> usize {
        let dead = self
            .deleted
            .iter_ones()
            .take_while(|&i| i < self.row_limit)
            .count();
        self.row_limit - dead
    }

    /// Whether the global row id is live in this snapshot.
    pub fn is_live(&self, row_id: usize) -> bool {
        row_id < self.row_limit && !(row_id < self.deleted.len() && self.deleted.get(row_id))
    }

    /// Split the snapshot into morsels of at most `morsel_rows` rows,
    /// respecting segment boundaries.
    pub fn morsels(&self, morsel_rows: usize) -> Vec<Morsel> {
        self.pruned_morsels(morsel_rows, &[]).0
    }

    /// Split the snapshot into morsels, skipping disk blocks whose zone
    /// maps prove no row can satisfy every range in `ranges` (ANDed).
    /// Resident segments cannot be pruned (no zone maps) and count all
    /// their blocks as scanned. With empty `ranges` this degenerates to
    /// [`TableSnapshot::morsels`].
    pub fn pruned_morsels(
        &self,
        morsel_rows: usize,
        ranges: &[ZoneRange],
    ) -> (Vec<Morsel>, ScanPruning) {
        assert!(morsel_rows > 0, "morsel size must be positive");
        let mut out = Vec::new();
        let mut pruning = ScanPruning::default();
        let mut base = 0usize;
        for (si, seg) in self.segments.iter().enumerate() {
            if base >= self.row_limit {
                break;
            }
            let seg_visible = seg.len().min(self.row_limit - base);
            let disk = match seg {
                SegmentHandle::Disk(d) if !ranges.is_empty() => Some(d),
                _ => None,
            };
            match disk {
                None => {
                    pruning.blocks_scanned += seg_visible.div_ceil(BLOCK_ROWS);
                    push_morsels(&mut out, si, 0, seg_visible, base, morsel_rows);
                }
                Some(d) => {
                    let meta = d.meta();
                    // Walk blocks, merging contiguous survivors into runs
                    // so morsels still amortize per-morsel overhead.
                    let mut run_start: Option<usize> = None;
                    let nblocks = meta.nblocks();
                    for blk in 0..nblocks {
                        let blk_start = blk * BLOCK_ROWS;
                        if blk_start >= seg_visible {
                            break;
                        }
                        let keep = ranges.iter().all(|r| {
                            meta.blocks
                                .get(r.col)
                                .map(|col_blocks| col_blocks[blk].may_match(r))
                                .unwrap_or(true)
                        });
                        if keep {
                            pruning.blocks_scanned += 1;
                            run_start.get_or_insert(blk_start);
                        } else {
                            pruning.blocks_pruned += 1;
                            if let Some(start) = run_start.take() {
                                push_morsels(
                                    &mut out,
                                    si,
                                    start,
                                    blk_start - start,
                                    base + start,
                                    morsel_rows,
                                );
                            }
                        }
                    }
                    if let Some(start) = run_start.take() {
                        push_morsels(
                            &mut out,
                            si,
                            start,
                            seg_visible - start,
                            base + start,
                            morsel_rows,
                        );
                    }
                }
            }
            base += seg.len();
        }
        (out, pruning)
    }

    /// Materialize a morsel as a chunk of *live* rows, together with the
    /// global row ids of those rows (needed by DELETE/UPDATE pipelines).
    pub fn read_morsel(&self, m: &Morsel) -> Result<(Chunk, Vec<usize>)> {
        self.read_morsel_cols(m, None)
    }

    /// [`TableSnapshot::read_morsel`] projected to `cols` (`None` = all):
    /// disk-backed segments then only load the projected columns' blocks.
    pub fn read_morsel_cols(
        &self,
        m: &Morsel,
        cols: Option<&[usize]>,
    ) -> Result<(Chunk, Vec<usize>)> {
        let seg = &self.segments[m.segment];
        // Fast path: nothing deleted in range — read without gathering.
        let mut any_deleted = false;
        for i in 0..m.len {
            let rid = m.base_row_id + i;
            if rid < self.deleted.len() && self.deleted.get(rid) {
                any_deleted = true;
                break;
            }
        }
        if !any_deleted {
            let chunk = seg.read_rows(m.offset, m.len, cols)?;
            let ids = (m.base_row_id..m.base_row_id + m.len).collect();
            return Ok((chunk, ids));
        }
        let mut keep = Vec::with_capacity(m.len);
        let mut ids = Vec::with_capacity(m.len);
        for i in 0..m.len {
            let rid = m.base_row_id + i;
            if !(rid < self.deleted.len() && self.deleted.get(rid)) {
                keep.push(i);
                ids.push(rid);
            }
        }
        let chunk = seg.read_rows(m.offset, m.len, cols)?;
        Ok((chunk.take(&keep), ids))
    }

    /// All live rows as chunks (sequential scan).
    pub fn live_chunks(&self) -> Result<Vec<Chunk>> {
        let mut out = Vec::new();
        for m in self.morsels(crate::SEGMENT_ROWS) {
            let (chunk, _) = self.read_morsel(&m)?;
            if !chunk.is_empty() {
                out.push(chunk);
            }
        }
        Ok(out)
    }

    /// Materialize the whole snapshot into one chunk.
    pub fn to_chunk(&self) -> Result<Chunk> {
        let types = self.schema.types();
        let chunks = self.live_chunks()?;
        Chunk::concat(&types, &chunks)
    }
}

fn push_morsels(
    out: &mut Vec<Morsel>,
    segment: usize,
    start: usize,
    len: usize,
    base_row_id: usize,
    morsel_rows: usize,
) {
    let mut offset = 0;
    while offset < len {
        let take = (len - offset).min(morsel_rows);
        out.push(Morsel {
            segment,
            offset: start + offset,
            len: take,
            base_row_id: base_row_id + offset,
        });
        offset += take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use hylite_common::{DataType, Field, Value};

    fn table_with(n: usize) -> Table {
        let mut t = Table::new("t", Schema::new(vec![Field::new("id", DataType::Int64)]));
        let rows: Vec<Vec<Value>> = (0..n as i64).map(|i| vec![Value::Int(i)]).collect();
        t.insert_rows(&rows).unwrap();
        t.commit();
        t
    }

    #[test]
    fn morsels_cover_all_rows_once() {
        let t = table_with(1000);
        let snap = t.snapshot();
        let morsels = snap.morsels(128);
        let total: usize = morsels.iter().map(|m| m.len).sum();
        assert_eq!(total, 1000);
        // Contiguous, non-overlapping row ids.
        let mut next = 0;
        for m in &morsels {
            assert_eq!(m.base_row_id, next);
            next += m.len;
        }
    }

    #[test]
    fn read_morsel_skips_deleted() {
        let mut t = table_with(10);
        t.delete_rows(&[3, 4]).unwrap();
        t.commit();
        let snap = t.snapshot();
        let morsels = snap.morsels(6);
        let mut ids = Vec::new();
        for m in &morsels {
            let (chunk, rids) = snap.read_morsel(m).unwrap();
            assert_eq!(chunk.len(), rids.len());
            ids.extend(rids);
        }
        assert_eq!(ids, vec![0, 1, 2, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn to_chunk_materializes() {
        let t = table_with(5);
        let snap = t.snapshot();
        let c = snap.to_chunk().unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.column(0).as_i64().unwrap(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn projected_morsel_reads() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
            ]),
        );
        t.insert_rows(&[
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ])
        .unwrap();
        t.commit();
        let snap = t.snapshot();
        let morsels = snap.morsels(100);
        let (chunk, _) = snap.read_morsel_cols(&morsels[0], Some(&[1])).unwrap();
        assert_eq!(chunk.num_columns(), 1);
        assert_eq!(chunk.column(0).as_i64().unwrap(), &[10, 20]);
    }

    #[test]
    fn from_chunk_wraps_intermediate() {
        let chunk = Chunk::new(vec![hylite_common::ColumnVector::from_i64(vec![7, 8])]);
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let snap = TableSnapshot::from_chunk(schema, chunk);
        assert_eq!(snap.live_rows(), 2);
        assert_eq!(snap.to_chunk().unwrap().len(), 2);
    }

    #[test]
    fn row_limit_hides_tail() {
        let t = table_with(10);
        let full = t.snapshot();
        // Build a snapshot with a shorter horizon manually.
        let snap = TableSnapshot::new(
            full.schema().clone(),
            full.segments().to_vec(),
            4,
            full.deleted.clone(),
        );
        assert_eq!(snap.live_rows(), 4);
        assert_eq!(snap.to_chunk().unwrap().len(), 4);
        assert!(!snap.is_live(4));
        assert!(snap.is_live(3));
    }
}
