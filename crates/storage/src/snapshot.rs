//! Stable table snapshots and morsel-wise parallel scan support.

use std::sync::Arc;

use hylite_common::{Bitmap, Chunk, Schema};

/// A consistent view of a table at a point in time.
///
/// Holds `Arc`s to the segments it covers plus its own copy of the delete
/// mask, so later table mutations (and even [`crate::Table::compact`])
/// cannot disturb a running scan.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    schema: Arc<Schema>,
    segments: Vec<Arc<Chunk>>,
    /// Visible row-id horizon; rows at or past this id are invisible even
    /// if the last covered segment extends further.
    row_limit: usize,
    deleted: Bitmap,
}

/// One unit of parallel scan work: a slice of one segment.
#[derive(Debug, Clone)]
pub struct Morsel {
    /// Index into the snapshot's segment list.
    pub segment: usize,
    /// Row offset within the segment.
    pub offset: usize,
    /// Number of rows in this morsel.
    pub len: usize,
    /// Global row id of the first row (segment base + offset).
    pub base_row_id: usize,
}

impl TableSnapshot {
    /// Build a snapshot (used by [`crate::Table`]).
    pub fn new(
        schema: Arc<Schema>,
        segments: Vec<Arc<Chunk>>,
        row_limit: usize,
        deleted: Bitmap,
    ) -> TableSnapshot {
        TableSnapshot {
            schema,
            segments,
            row_limit,
            deleted,
        }
    }

    /// Snapshot of a free-standing chunk (used for intermediate results
    /// that flow through scan-like operators).
    pub fn from_chunk(schema: Arc<Schema>, chunk: Chunk) -> TableSnapshot {
        let n = chunk.len();
        TableSnapshot {
            schema,
            segments: vec![Arc::new(chunk)],
            row_limit: n,
            deleted: Bitmap::filled(n, false),
        }
    }

    /// The snapshot's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of covered segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The covered segments in row-id order. Checkpointing serializes
    /// these as-is (deleted rows included) so that global row ids — which
    /// later WAL `Delete` frames refer to — survive a round-trip.
    pub fn segments(&self) -> &[Arc<Chunk>] {
        &self.segments
    }

    /// The delete mask (checkpoint serialization).
    pub fn deleted(&self) -> &Bitmap {
        &self.deleted
    }

    /// Visible row horizon (includes deleted rows).
    pub fn visible_rows(&self) -> usize {
        self.row_limit
    }

    /// Live (visible and not deleted) rows.
    pub fn live_rows(&self) -> usize {
        let dead = self
            .deleted
            .iter_ones()
            .take_while(|&i| i < self.row_limit)
            .count();
        self.row_limit - dead
    }

    /// Whether the global row id is live in this snapshot.
    pub fn is_live(&self, row_id: usize) -> bool {
        row_id < self.row_limit && !(row_id < self.deleted.len() && self.deleted.get(row_id))
    }

    /// Split the snapshot into morsels of at most `morsel_rows` rows,
    /// respecting segment boundaries.
    pub fn morsels(&self, morsel_rows: usize) -> Vec<Morsel> {
        assert!(morsel_rows > 0, "morsel size must be positive");
        let mut out = Vec::new();
        let mut base = 0usize;
        for (si, seg) in self.segments.iter().enumerate() {
            if base >= self.row_limit {
                break;
            }
            let seg_visible = seg.len().min(self.row_limit - base);
            let mut offset = 0;
            while offset < seg_visible {
                let len = (seg_visible - offset).min(morsel_rows);
                out.push(Morsel {
                    segment: si,
                    offset,
                    len,
                    base_row_id: base + offset,
                });
                offset += len;
            }
            base += seg.len();
        }
        out
    }

    /// Materialize a morsel as a chunk of *live* rows, together with the
    /// global row ids of those rows (needed by DELETE/UPDATE pipelines).
    pub fn read_morsel(&self, m: &Morsel) -> (Chunk, Vec<usize>) {
        let seg = &self.segments[m.segment];
        // Fast path: nothing deleted in range — slice without gathering.
        let mut any_deleted = false;
        for i in 0..m.len {
            let rid = m.base_row_id + i;
            if rid < self.deleted.len() && self.deleted.get(rid) {
                any_deleted = true;
                break;
            }
        }
        if !any_deleted {
            let chunk = if m.offset == 0 && m.len == seg.len() {
                seg.as_ref().clone()
            } else {
                seg.slice(m.offset, m.len)
            };
            let ids = (m.base_row_id..m.base_row_id + m.len).collect();
            return (chunk, ids);
        }
        let mut keep = Vec::with_capacity(m.len);
        let mut ids = Vec::with_capacity(m.len);
        for i in 0..m.len {
            let rid = m.base_row_id + i;
            if !(rid < self.deleted.len() && self.deleted.get(rid)) {
                keep.push(m.offset + i);
                ids.push(rid);
            }
        }
        (seg.take(&keep), ids)
    }

    /// Iterate all live rows as chunks (sequential scan).
    pub fn live_chunks(&self) -> impl Iterator<Item = Chunk> + '_ {
        self.morsels(crate::SEGMENT_ROWS)
            .into_iter()
            .map(move |m| self.read_morsel(&m).0)
            .filter(|c| !c.is_empty())
    }

    /// Materialize the whole snapshot into one chunk.
    pub fn to_chunk(&self) -> Chunk {
        let types = self.schema.types();
        let chunks: Vec<Chunk> = self.live_chunks().collect();
        Chunk::concat(&types, &chunks).expect("snapshot chunks share the schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use hylite_common::{DataType, Field, Value};

    fn table_with(n: usize) -> Table {
        let mut t = Table::new("t", Schema::new(vec![Field::new("id", DataType::Int64)]));
        let rows: Vec<Vec<Value>> = (0..n as i64).map(|i| vec![Value::Int(i)]).collect();
        t.insert_rows(&rows).unwrap();
        t.commit();
        t
    }

    #[test]
    fn morsels_cover_all_rows_once() {
        let t = table_with(1000);
        let snap = t.snapshot();
        let morsels = snap.morsels(128);
        let total: usize = morsels.iter().map(|m| m.len).sum();
        assert_eq!(total, 1000);
        // Contiguous, non-overlapping row ids.
        let mut next = 0;
        for m in &morsels {
            assert_eq!(m.base_row_id, next);
            next += m.len;
        }
    }

    #[test]
    fn read_morsel_skips_deleted() {
        let mut t = table_with(10);
        t.delete_rows(&[3, 4]).unwrap();
        t.commit();
        let snap = t.snapshot();
        let morsels = snap.morsels(6);
        let mut ids = Vec::new();
        for m in &morsels {
            let (chunk, rids) = snap.read_morsel(m);
            assert_eq!(chunk.len(), rids.len());
            ids.extend(rids);
        }
        assert_eq!(ids, vec![0, 1, 2, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn to_chunk_materializes() {
        let t = table_with(5);
        let snap = t.snapshot();
        let c = snap.to_chunk();
        assert_eq!(c.len(), 5);
        assert_eq!(c.column(0).as_i64().unwrap(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_chunk_wraps_intermediate() {
        let chunk = Chunk::new(vec![hylite_common::ColumnVector::from_i64(vec![7, 8])]);
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let snap = TableSnapshot::from_chunk(schema, chunk);
        assert_eq!(snap.live_rows(), 2);
        assert_eq!(snap.to_chunk().len(), 2);
    }

    #[test]
    fn row_limit_hides_tail() {
        let t = table_with(10);
        let full = t.snapshot();
        // Build a snapshot with a shorter horizon manually.
        let snap = TableSnapshot::new(
            full.schema().clone(),
            (0..full.segment_count())
                .map(|i| Arc::clone(&full.segments[i]))
                .collect(),
            4,
            full.deleted.clone(),
        );
        assert_eq!(snap.live_rows(), 4);
        assert_eq!(snap.to_chunk().len(), 4);
        assert!(!snap.is_live(4));
        assert!(snap.is_live(3));
    }
}
