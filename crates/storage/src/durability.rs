//! The durability orchestrator: one object owning the WAL writer and the
//! checkpoint procedure, shared by every session of a database.
//!
//! Locking: a single commit mutex serializes WAL appends *and* the whole
//! checkpoint. Crucially, commit *publication* — the promotion of a
//! table's working state to its committed state — happens inside the
//! same critical section as the WAL append (see
//! [`Durability::with_commit_lock`]). That pairing is what makes
//! checkpoints correct: a checkpoint holding the mutex can never observe
//! an acknowledged commit that is in the WAL but not yet in memory (it
//! would pick a `base_lsn` past the commit, snapshot memory without it,
//! and truncate the commit's only durable record), nor memory state whose
//! WAL frame hasn't been appended yet. While a checkpoint runs, commits
//! stall (they queue on the mutex) but readers are completely
//! unaffected — the checkpoint reads committed snapshots, which are
//! `Arc`-stable by construction. This is the main-memory twist on the
//! paper's design: the snapshot mechanism that isolates long analytical
//! queries from OLTP writes is the same one that makes consistent
//! checkpointing cheap.
//!
//! Lock order: the commit mutex is acquired *before* any table lock
//! (publication and checkpoint snapshots take table locks inside it).
//! No caller may wait on the commit mutex while holding a table lock.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Instant, SystemTime};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use hylite_common::faultfs::Vfs;
use hylite_common::{HyError, MetricsRegistry, Result};
use parking_lot::Mutex;

use crate::archive::{WalArchive, CP_ARCHIVE_ROTATE};
use crate::backup::{write_backup, BackupPin, BackupSummary, CP_BACKUP_SEG_COPY, SEGMENT_VANISHED};
use crate::catalog::Catalog;
use crate::checkpoint::{
    decode_bootstrap_bundle, decode_manifest, encode_bootstrap_bundle, encode_manifest,
    install_manifest, publish_checkpoint, TableManifest, CHECKPOINT_FILE, CP_CKPT_AFTER_RENAME,
    CP_CKPT_RENAME, CP_CKPT_WRITE, CP_SEG_WRITE,
};
use crate::pool::BufferPool;
use crate::recovery::{apply_op, recover, RecoveryReport};
use crate::repl::{load_repl_state, next_epoch, store_repl_state, ReplRole, ReplState};
use crate::segment::{rebrand_segment_bytes, SegmentStore};
use crate::snapshot::SegmentHandle;
use crate::wal::{
    decode_commit_payload, scan_wal_raw, RawFrame, RedoOp, SyncMode, WalWriter, CP_WAL_AFTER_WRITE,
    CP_WAL_APPEND, CP_WAL_POST_FSYNC, CP_WAL_PRE_FSYNC, CP_WAL_TRUNCATE, WAL_FILE,
};

/// Every named crash point the durability code passes through, in rough
/// chronological order of a commit followed by a checkpoint (then the
/// backup/archive paths). The crash-point matrix test iterates this
/// list; adding a crash point without registering it here means it never
/// gets tested.
pub const CRASH_POINTS: &[&str] = &[
    CP_WAL_APPEND,
    CP_WAL_AFTER_WRITE,
    CP_WAL_PRE_FSYNC,
    CP_WAL_POST_FSYNC,
    CP_SEG_WRITE,
    CP_CKPT_WRITE,
    CP_CKPT_RENAME,
    CP_CKPT_AFTER_RENAME,
    CP_WAL_TRUNCATE,
    CP_BACKUP_SEG_COPY,
    CP_ARCHIVE_ROTATE,
];

/// Tunables for the durability subsystem.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// When the WAL fsyncs relative to commit acknowledgement.
    pub sync_mode: SyncMode,
    /// Group-commit buffer threshold in bytes ([`SyncMode::Buffered`]
    /// only).
    pub group_commit_bytes: usize,
    /// Role the directory opens under. A primary open mints a fresh
    /// epoch (fencing every replica into a safety re-bootstrap after a
    /// primary restart); a replica open preserves its epoch so catch-up
    /// can resume from the last durably applied LSN.
    pub role: ReplRole,
    /// Allow opening a directory last used as a replica in the
    /// [`ReplRole::Primary`] role (failover promotion). Without this, a
    /// replica directory refuses to open as a primary — the fence
    /// against accidentally writing to (and forking) a follower.
    pub promote: bool,
    /// Byte cap of the buffer pool caching decoded segment blocks. Data
    /// beyond this stays on disk and is read block-by-block on demand —
    /// the larger-than-RAM knob (`--buffer-pool-mb` on the server).
    pub buffer_pool_bytes: usize,
    /// Continuous WAL archiving: when set, every checkpoint first copies
    /// the WAL frames it is about to truncate into this directory (see
    /// [`crate::archive`]). An archive failure warns (`archive.failures`)
    /// and defers the truncation — it never blocks commits.
    pub archive_dir: Option<PathBuf>,
    /// Checkpoint-time compaction threshold: a quiescent table whose
    /// committed rows are dead beyond this fraction gets rewritten
    /// without its dead rows (old segment files GC'd). Set above 1.0 to
    /// disable.
    pub compact_dead_fraction: f64,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            sync_mode: SyncMode::Commit,
            group_commit_bytes: 256 * 1024,
            role: ReplRole::Primary,
            promote: false,
            buffer_pool_bytes: 64 * 1024 * 1024,
            archive_dir: None,
            compact_dead_fraction: 0.3,
        }
    }
}

/// What [`Durability::read_replication_tail`] found for a replica's
/// resume position.
#[derive(Debug)]
pub enum ReplTail {
    /// The stream continues: zero or more frames starting exactly at the
    /// requested LSN (empty when the replica is caught up).
    Frames {
        /// CRC-verified frames in LSN order.
        frames: Vec<RawFrame>,
        /// The primary's next LSN (the caught-up watermark).
        next_lsn: u64,
    },
    /// The requested LSN was truncated by a checkpoint; the replica must
    /// re-bootstrap from a snapshot.
    NeedSnapshot,
    /// The replica claims an LSN the primary has not issued yet: its
    /// history forked from ours (e.g. it followed a different primary).
    /// It must re-bootstrap.
    Diverged {
        /// The primary's next LSN, for the error message.
        next_lsn: u64,
    },
}

/// Outcome of one checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointStats {
    /// Tables captured.
    pub tables: usize,
    /// Bytes of the published manifest file.
    pub bytes: u64,
    /// The checkpoint's base LSN.
    pub base_lsn: u64,
    /// Wall-clock duration in milliseconds.
    pub duration_ms: u64,
    /// Segment files newly sealed by this checkpoint. Zero when nothing
    /// changed since the last one — the incremental-checkpoint property.
    pub segments_sealed: usize,
    /// Bytes of the newly sealed segment files (compressed, on disk).
    pub segment_bytes: u64,
    /// Uncompressed bytes of the rows sealed into new segments.
    pub sealed_raw_bytes: u64,
}

/// The per-database durability engine. Cheap to share (`Arc` it); all
/// methods take `&self`.
#[derive(Debug)]
pub struct Durability {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    metrics: Arc<MetricsRegistry>,
    wal: Mutex<WalWriter>,
    /// The directory's current role, as [`ReplRole::as_u8`]. Flips from
    /// replica to primary exactly once per incarnation, via
    /// [`Durability::promote_to_primary`] (in-place failover) — never the
    /// other way.
    role: AtomicU8,
    /// Current replication epoch. Mutated only by
    /// [`Durability::install_bootstrap`] (a replica adopting its
    /// primary's epoch).
    epoch: AtomicU64,
    /// The sealed-segment store (files + id allocation + buffer pool).
    store: Arc<SegmentStore>,
    /// Read-only degraded mode: set when a WAL append or segment seal
    /// hits `ENOSPC` ([`HyError::DiskFull`]). While set, every write is
    /// rejected up front with a retryable `DiskFull` error; reads,
    /// replication streaming, and system views are unaffected. Cleared by
    /// [`Durability::try_resume_writes`] once a space probe succeeds —
    /// no restart needed.
    degraded: AtomicBool,
    /// Continuous WAL archive (`--archive-dir`), if configured. Touched
    /// only under the commit lock (checkpoints) so a `Mutex` suffices.
    archive: Mutex<Option<WalArchive>>,
    /// The most recent completed backup, for the `hylite.backups` view.
    last_backup: Mutex<Option<LastBackup>>,
    /// Checkpoint-time compaction threshold (see [`DurabilityOptions`]).
    compact_dead_fraction: f64,
}

/// Record of the last completed backup (the `hylite.backups` row).
#[derive(Debug, Clone)]
pub struct LastBackup {
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub at_unix_ms: u64,
    /// Destination directory.
    pub dest: String,
    /// Highest LSN the backup contains.
    pub lsn: u64,
    /// Bytes copied.
    pub bytes: u64,
    /// Segment files copied.
    pub segments: u64,
    /// Whether the full verify rescan ran.
    pub verified: bool,
    /// Whether the backup was incremental against a base.
    pub incremental: bool,
}

impl Durability {
    /// Run recovery against `dir`, then open the WAL for appending.
    /// Returns the durability engine, the recovered catalog, and the
    /// recovery report.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        options: DurabilityOptions,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<(Durability, Catalog, RecoveryReport)> {
        let pool = Arc::new(BufferPool::new(options.buffer_pool_bytes, &metrics));
        let store = SegmentStore::open(Arc::clone(&vfs), dir, pool)?;
        let (catalog, report) = recover(&vfs, dir, &store, &metrics)?;
        let prior = load_repl_state(vfs.as_ref(), dir)?;
        let epoch = match options.role {
            ReplRole::Primary => {
                if matches!(
                    prior,
                    Some(ReplState {
                        role: ReplRole::Replica,
                        ..
                    })
                ) && !options.promote
                {
                    return Err(HyError::Storage(format!(
                        "{} was last used as a replica; opening it writable would fork \
                         its history — pass --promote to take over as primary",
                        dir.display()
                    )));
                }
                // Every primary incarnation gets a fresh epoch. This
                // deliberately fences replicas out after *any* primary
                // restart: in Buffered mode the restart may have lost an
                // acknowledged tail a replica already applied, and a
                // resumed stream would fork silently. The cost is a
                // conservative re-bootstrap after clean restarts too.
                next_epoch(prior.map_or(0, |s| s.epoch))
            }
            // A replica keeps its epoch so it can prove its history is a
            // prefix of its primary's and resume without a snapshot.
            ReplRole::Replica => prior.map_or(0, |s| s.epoch),
        };
        store_repl_state(
            vfs.as_ref(),
            dir,
            ReplState {
                role: options.role,
                epoch,
            },
        )?;
        let wal = WalWriter::open(
            Arc::clone(&vfs),
            dir.join(WAL_FILE),
            options.sync_mode,
            options.group_commit_bytes,
            report.next_lsn,
            Arc::clone(&metrics),
        )?;
        let archive = match &options.archive_dir {
            Some(adir) => Some(WalArchive::open(
                Arc::clone(&vfs),
                adir.clone(),
                Arc::clone(&metrics),
            )?),
            None => None,
        };
        if let Some(a) = &archive {
            metrics
                .gauge("wal.archive_lag_frames")
                .set((report.next_lsn.saturating_sub(1)).saturating_sub(a.watermark()) as i64);
        }
        Ok((
            Durability {
                vfs,
                dir: dir.to_owned(),
                metrics,
                wal: Mutex::new(wal),
                role: AtomicU8::new(options.role.as_u8()),
                epoch: AtomicU64::new(epoch),
                store,
                degraded: AtomicBool::new(false),
                archive: Mutex::new(archive),
                last_backup: Mutex::new(None),
                compact_dead_fraction: options.compact_dead_fraction,
            },
            catalog,
            report,
        ))
    }

    /// The injectable filesystem this database runs on.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// The sealed-segment store.
    pub fn segment_store(&self) -> &Arc<SegmentStore> {
        &self.store
    }

    /// The block cache in front of sealed segments.
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        self.store.pool()
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured sync mode.
    pub fn sync_mode(&self) -> SyncMode {
        self.wal.lock().sync_mode()
    }

    /// Log one commit's redo ops. When this returns `Ok`, the commit is
    /// durable per the configured [`SyncMode`] and may be acknowledged.
    ///
    /// Commit paths that also publish in-memory state must use
    /// [`Durability::with_commit_lock`] instead, so the append and the
    /// publish are atomic with respect to checkpoints.
    pub fn log_commit(&self, ops: &[RedoOp]) -> Result<u64> {
        let r = {
            let mut wal = self.wal.lock();
            wal.set_degraded(self.degraded());
            wal.log_commit(ops)
        };
        if let Err(e) = &r {
            self.note_write_error(e);
        }
        r
    }

    /// Whether the node is in read-only degraded mode after `ENOSPC`.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// `"ok"` or `"degraded"` — the `node_state` column of
    /// `hylite.replication`.
    pub fn node_state(&self) -> &'static str {
        if self.degraded() {
            "degraded"
        } else {
            "ok"
        }
    }

    /// Inspect a write-path error: `DiskFull` flips the node into
    /// degraded mode (idempotent).
    fn note_write_error(&self, e: &HyError) {
        if matches!(e, HyError::DiskFull(_)) {
            self.metrics.counter("disk.full_errors").inc();
            if !self.degraded.swap(true, Ordering::SeqCst) {
                self.metrics.gauge("node.degraded").set(1);
            }
        }
    }

    /// Attempt to leave degraded mode: probe the data directory for free
    /// space (write + fsync + remove a small scratch file), repair the
    /// WAL writer if the failure poisoned it, and land any buffered
    /// frames. Returns `Ok(true)` when writes were re-enabled,
    /// `Ok(false)` when the node was not degraded or the disk is still
    /// full. The server calls this from a background probe loop so a
    /// degraded node resumes without a restart.
    pub fn try_resume_writes(&self) -> Result<bool> {
        if !self.degraded() {
            return Ok(false);
        }
        let probe = self.dir.join(".space_probe");
        let probe_result = (|| -> Result<()> {
            let mut f = self.vfs.create(&probe)?;
            f.write_all(&[0u8; 8192])?;
            f.sync()?;
            Ok(())
        })();
        if self.vfs.exists(&probe) {
            let _ = self.vfs.remove(&probe);
        }
        if probe_result.is_err() {
            return Ok(false);
        }
        let mut wal = self.wal.lock();
        wal.try_unpoison()?;
        if let Err(e) = wal.flush() {
            // Space came back but the WAL still cannot land its buffered
            // frames — stay degraded and let the next probe retry.
            self.note_write_error(&e);
            return Ok(false);
        }
        self.degraded.store(false, Ordering::SeqCst);
        wal.set_degraded(false);
        self.metrics.gauge("node.degraded").set(0);
        self.metrics.counter("disk.recoveries").inc();
        Ok(true)
    }

    /// Run `f` while holding the commit mutex — the same lock
    /// [`Durability::checkpoint`] holds for its whole duration. `f`
    /// appends the commit's WAL frame via the provided [`WalWriter`] and
    /// then performs the in-memory publish (or rollback, on append
    /// failure) *before returning*, which guarantees a checkpoint never
    /// runs between a commit's WAL append and its publication.
    ///
    /// `f` may take table locks; it must not re-enter the durability
    /// engine (the commit mutex is not reentrant).
    ///
    /// While the node is degraded the rejection comes from inside
    /// `wal.log_commit`, *not* from this method — `f` always runs, so its
    /// rollback arm can discard the commit's staged in-memory rows. (An
    /// early return here once leaked a rejected insert's staged rows into
    /// the next successful commit's publish.)
    pub fn with_commit_lock<R>(&self, f: impl FnOnce(&mut WalWriter) -> Result<R>) -> Result<R> {
        let r = {
            let mut wal = self.wal.lock();
            wal.set_degraded(self.degraded());
            f(&mut wal)
        };
        if let Err(e) = &r {
            self.note_write_error(e);
        }
        r
    }

    /// Force any group-commit buffered frames to disk.
    pub fn flush(&self) -> Result<()> {
        let r = self.wal.lock().flush();
        if let Err(e) = &r {
            self.note_write_error(e);
        }
        r
    }

    /// Take a checkpoint: flush the WAL, seal every table's not-yet-sealed
    /// committed rows into new segment files, publish the manifest
    /// atomically, then truncate the WAL. Holds the commit lock
    /// throughout (readers unaffected). Incremental by construction:
    /// segments sealed by earlier checkpoints are re-listed by id, not
    /// rewritten.
    pub fn checkpoint(&self, catalog: &Catalog) -> Result<CheckpointStats> {
        let mut wal = self.wal.lock();
        let r = self.checkpoint_locked(catalog, &mut wal);
        if let Err(e) = &r {
            // A segment seal hitting ENOSPC degrades the node just like a
            // failed WAL append would.
            self.note_write_error(e);
        }
        r
    }

    fn checkpoint_locked(&self, catalog: &Catalog, wal: &mut WalWriter) -> Result<CheckpointStats> {
        let started = Instant::now();
        // Buffered frames must hit the disk first: if the checkpoint then
        // fails part-way, the WAL still covers those commits.
        wal.flush()?;
        let base_lsn = wal.next_lsn();

        // Seal phase: for each table, reuse the already-sealed prefix and
        // freeze the resident committed tail into new segment files.
        let mut manifests: Vec<TableManifest> = Vec::new();
        let mut swaps: Vec<(crate::table::TableRef, Vec<SegmentHandle>)> = Vec::new();
        let mut segments_sealed = 0usize;
        let mut segment_bytes = 0u64;
        let mut sealed_raw_bytes = 0u64;
        for name in catalog.table_names() {
            let Ok(table) = catalog.get_table(&name) else {
                continue;
            };
            let snap = table.read().committed_snapshot();
            let mut handles: Vec<SegmentHandle> = Vec::new();
            let mut seg_list: Vec<(u64, u64)> = Vec::new();
            let mut resident: Vec<hylite_common::Chunk> = Vec::new();
            for seg in snap.segments() {
                match seg {
                    // Already sealed and immutable: re-list, zero I/O.
                    SegmentHandle::Disk(d) if resident.is_empty() => {
                        seg_list.push((d.id(), d.rows() as u64));
                        handles.push(seg.clone());
                    }
                    // Anything after the first resident segment gets
                    // resealed with it (keeps the disk-prefix invariant).
                    other => resident.push(other.to_chunk()?),
                }
            }
            if !resident.is_empty() {
                let types = snap.schema().types();
                let delta = hylite_common::Chunk::concat(&types, &resident)?;
                let mut offset = 0;
                while offset < delta.len() {
                    let take = (delta.len() - offset).min(crate::SEGMENT_ROWS);
                    let chunk = delta.slice(offset, take);
                    self.vfs.crash_point(CP_SEG_WRITE)?;
                    let id = self.store.alloc_id();
                    let written = self.store.write_segment(id, &chunk)?;
                    segments_sealed += 1;
                    segment_bytes += written;
                    sealed_raw_bytes += chunk.heap_bytes() as u64;
                    seg_list.push((id, take as u64));
                    handles.push(SegmentHandle::Disk(self.store.open_segment(id)?));
                    offset += take;
                }
            }
            let row_limit = snap.visible_rows() as u64;
            let deleted: Vec<u64> = snap
                .deleted()
                .iter_ones()
                .take_while(|&i| (i as u64) < row_limit)
                .map(|i| i as u64)
                .collect();
            manifests.push(TableManifest {
                name,
                schema: snap.schema().as_ref().clone(),
                segments: seg_list,
                row_limit,
                deleted,
            });
            swaps.push((table, handles));
        }
        if segments_sealed > 0 {
            self.store.sync_dir()?;
        }

        let data = encode_manifest(base_lsn, &manifests);
        publish_checkpoint(self.vfs.as_ref(), &self.dir, &data)?;

        // The manifest is live: swap each table's committed prefix to the
        // sealed handles so resident memory is released, then collect
        // segment files no manifest references any more. Both are safe
        // under the commit lock — the swapped data is bit-identical and
        // open snapshots hold their own handles (GC spares live files).
        for (table, handles) in swaps {
            table.write().swap_sealed_prefix(handles)?;
        }
        let referenced: std::collections::HashSet<u64> = manifests
            .iter()
            .flat_map(|t| t.segments.iter().map(|&(id, _)| id))
            .collect();
        self.store.gc(&referenced)?;

        // Compaction pass: quiescent tables past the dead-row threshold
        // get rewritten without their dead rows (each publishes its own
        // refreshed manifest at the same base_lsn).
        self.maybe_compact_tables(catalog, base_lsn)?;

        self.rotate_wal(wal)?;
        let stats = CheckpointStats {
            tables: manifests.len(),
            bytes: data.len() as u64,
            base_lsn,
            duration_ms: started.elapsed().as_millis() as u64,
            segments_sealed,
            segment_bytes,
            sealed_raw_bytes,
        };
        self.metrics
            .histogram("checkpoint.duration_ms")
            .record(stats.duration_ms);
        self.metrics.counter("checkpoint.count").inc();
        self.metrics
            .counter("checkpoint.bytes_written")
            .add(stats.bytes + stats.segment_bytes);
        self.metrics
            .counter("checkpoint.segments_sealed")
            .add(segments_sealed as u64);
        self.metrics
            .counter("checkpoint.segment_bytes_written")
            .add(segment_bytes);
        self.metrics
            .gauge("storage.disk_bytes")
            .set(self.store.disk_bytes()? as i64);
        Ok(stats)
    }

    /// Checkpoint-time compaction. A quiescent table (no staged rows, no
    /// staged deletes) whose committed dead-row fraction exceeds the
    /// threshold gets its live rows rewritten into fresh segments and a
    /// refreshed manifest published at the *same* `base_lsn` (the commit
    /// lock is held, so no commit can land in between). The table's write
    /// lock is held from the quiescence re-check through the in-memory
    /// install: everything fallible (segment writes, manifest publish)
    /// happens first, and only after the manifest is durably the truth
    /// does the infallible [`Table::install_compacted`] renumber rows in
    /// memory. A failure before the publish leaves only orphan segment
    /// files, which the next recovery or GC sweeps.
    fn maybe_compact_tables(&self, catalog: &Catalog, base_lsn: u64) -> Result<usize> {
        if self.compact_dead_fraction > 1.0 {
            return Ok(0);
        }
        let mut compacted = 0usize;
        for name in catalog.table_names() {
            let Ok(table) = catalog.get_table(&name) else {
                continue;
            };
            {
                let g = table.read();
                if !g.is_quiescent() || g.dead_fraction() < self.compact_dead_fraction {
                    continue;
                }
            }
            let mut g = table.write();
            // Re-check under the write lock: a transaction may have
            // staged rows between the peek and here.
            if !g.is_quiescent() || g.dead_fraction() < self.compact_dead_fraction {
                continue;
            }
            let snap = g.committed_snapshot();
            let dead_rows = snap.deleted().iter_ones().count() as u64;
            let types = snap.schema().types();
            let live = snap.live_chunks()?;
            let all = hylite_common::Chunk::concat(&types, &live)?;
            let mut handles: Vec<SegmentHandle> = Vec::new();
            let mut seg_list: Vec<(u64, u64)> = Vec::new();
            let mut offset = 0;
            while offset < all.len() {
                let take = (all.len() - offset).min(crate::SEGMENT_ROWS);
                let chunk = all.slice(offset, take);
                let id = self.store.alloc_id();
                self.store.write_segment(id, &chunk)?;
                seg_list.push((id, take as u64));
                handles.push(SegmentHandle::Disk(self.store.open_segment(id)?));
                offset += take;
            }
            self.store.sync_dir()?;

            // Refreshed manifest: the compacted layout for this table,
            // the just-sealed committed state (all disk-backed after the
            // seal phase) for every other.
            let mut manifests: Vec<TableManifest> = Vec::new();
            for other in catalog.table_names() {
                if other == name {
                    manifests.push(TableManifest {
                        name: name.clone(),
                        schema: snap.schema().as_ref().clone(),
                        segments: seg_list.clone(),
                        row_limit: all.len() as u64,
                        deleted: Vec::new(),
                    });
                    continue;
                }
                let Ok(t) = catalog.get_table(&other) else {
                    continue;
                };
                let osnap = t.read().committed_snapshot();
                let row_limit = osnap.visible_rows() as u64;
                let mut segs: Vec<(u64, u64)> = Vec::new();
                for seg in osnap.segments() {
                    match seg {
                        SegmentHandle::Disk(d) => segs.push((d.id(), d.rows() as u64)),
                        SegmentHandle::Resident(_) => {
                            return Err(HyError::Internal(format!(
                                "table '{other}' has resident committed rows after the seal phase"
                            )));
                        }
                    }
                }
                let deleted: Vec<u64> = osnap
                    .deleted()
                    .iter_ones()
                    .take_while(|&i| (i as u64) < row_limit)
                    .map(|i| i as u64)
                    .collect();
                manifests.push(TableManifest {
                    name: other,
                    schema: osnap.schema().as_ref().clone(),
                    segments: segs,
                    row_limit,
                    deleted,
                });
            }
            let data = encode_manifest(base_lsn, &manifests);
            publish_checkpoint(self.vfs.as_ref(), &self.dir, &data)?;

            // The compacted manifest is the durable truth; switch memory
            // over (infallible) and drop the old segment files.
            g.install_compacted(handles);
            drop(g);
            let referenced: std::collections::HashSet<u64> = manifests
                .iter()
                .flat_map(|t| t.segments.iter().map(|&(id, _)| id))
                .collect();
            self.store.gc(&referenced)?;
            self.metrics.counter("compaction.count").inc();
            self.metrics
                .counter("compaction.rows_dropped")
                .add(dead_rows);
            compacted += 1;
        }
        Ok(compacted)
    }

    /// Complete the checkpoint by truncating the WAL — after first
    /// copying the frames it would destroy into the archive, when one is
    /// configured. Archive trouble is recorded and *deferred*, never
    /// propagated: the WAL is kept (recovery skips frames below
    /// `base_lsn`, so the longer WAL is only a replay cost) and the next
    /// checkpoint retries the whole span.
    fn rotate_wal(&self, wal: &mut WalWriter) -> Result<()> {
        let mut guard = self.archive.lock();
        if let Some(archive) = guard.as_mut() {
            let frames = scan_wal_raw(self.vfs.as_ref(), &self.dir.join(WAL_FILE))?;
            match archive.archive_frames(&frames) {
                Ok(_) => {
                    self.metrics.gauge("wal.archive_lag_frames").set(0);
                }
                Err(e) => {
                    self.metrics.counter("archive.failures").inc();
                    let lag = wal
                        .next_lsn()
                        .saturating_sub(1)
                        .saturating_sub(archive.watermark());
                    self.metrics.gauge("wal.archive_lag_frames").set(lag as i64);
                    // Deliberately non-fatal: commits must never block on
                    // the archive. If the vfs itself is failing, the
                    // checkpoint's next I/O will surface it.
                    let _ = e;
                    return Ok(());
                }
            }
        }
        wal.reset()
    }

    /// Graceful shutdown: one final checkpoint (which also flushes any
    /// buffered commits).
    pub fn close(&self, catalog: &Catalog) -> Result<CheckpointStats> {
        self.checkpoint(catalog)
    }

    // -- backup -----------------------------------------------------------

    /// Online backup into `dest`. The commit lock is held only long
    /// enough to pin a consistent `(manifest bytes, WAL bytes, lsn,
    /// epoch)` tuple; the bulk copy runs outside it, so commits proceed
    /// while segment files stream out. A checkpoint can GC a pinned
    /// segment mid-copy — that surfaces as a "vanished" error and the
    /// whole backup re-pins and retries (bounded).
    pub fn backup(&self, dest: &Path, base: Option<&Path>, verify: bool) -> Result<BackupSummary> {
        const ATTEMPTS: usize = 3;
        let mut last_err: Option<HyError> = None;
        for _ in 0..ATTEMPTS {
            let pin = {
                let mut wal = self.wal.lock();
                wal.flush()?;
                let manifest_path = self.dir.join(CHECKPOINT_FILE);
                let manifest = if self.vfs.exists(&manifest_path) {
                    Some(self.vfs.read(&manifest_path)?)
                } else {
                    None
                };
                let mut wal_bytes = self.vfs.read(&self.dir.join(WAL_FILE))?;
                wal_bytes.truncate(wal.durable_len() as usize);
                BackupPin {
                    manifest,
                    wal: wal_bytes,
                    backup_lsn: wal.next_lsn().saturating_sub(1),
                    epoch: self.epoch(),
                }
            };
            match write_backup(&self.vfs, &self.store, dest, base, verify, pin) {
                Ok(summary) => {
                    self.metrics.counter("backup.count").inc();
                    self.metrics.counter("backup.bytes").add(summary.bytes);
                    self.metrics
                        .gauge("backup.last_lsn")
                        .set(summary.backup_lsn as i64);
                    let at_unix_ms = SystemTime::now()
                        .duration_since(SystemTime::UNIX_EPOCH)
                        .map(|d| d.as_millis() as u64)
                        .unwrap_or(0);
                    *self.last_backup.lock() = Some(LastBackup {
                        at_unix_ms,
                        dest: summary.dest.display().to_string(),
                        lsn: summary.backup_lsn,
                        bytes: summary.bytes,
                        segments: summary.segments_copied,
                        verified: summary.verified,
                        incremental: summary.incremental,
                    });
                    return Ok(summary);
                }
                Err(e) if e.message().contains(SEGMENT_VANISHED) => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            HyError::Internal("backup retry loop exited without an error".into())
        }))
    }

    /// The most recent completed backup, if any (the `hylite.backups`
    /// system-view row).
    pub fn last_backup(&self) -> Option<LastBackup> {
        self.last_backup.lock().clone()
    }

    /// The archive watermark (highest archived LSN), or `None` when no
    /// archive is configured.
    pub fn archive_watermark(&self) -> Option<u64> {
        self.archive.lock().as_ref().map(WalArchive::watermark)
    }

    // -- replication ------------------------------------------------------

    /// The directory's current role. Starts as the role it was opened
    /// under; an in-place [`Durability::promote_to_primary`] flips a
    /// replica to primary without a restart.
    pub fn role(&self) -> ReplRole {
        match self.role.load(Ordering::SeqCst) {
            1 => ReplRole::Primary,
            _ => ReplRole::Replica,
        }
    }

    /// Promote this replica to a writable primary **in place**: mint a
    /// fresh epoch, durably persist the new role + epoch in
    /// `replstate.hylite`, and flip [`Durability::role`]. The fresh epoch
    /// fences everything that followed the *old* primary — any replica
    /// repointed here presents a foreign epoch and is re-bootstrapped
    /// instead of resuming over a potential fork.
    ///
    /// The caller must have stopped the apply loop first: no replicated
    /// frame may land after the flip. Holds the commit lock so the flip
    /// serializes against commits and checkpoints. Idempotent on a node
    /// that is already a primary (returns the current epoch unchanged).
    pub fn promote_to_primary(&self) -> Result<u64> {
        let _wal = self.wal.lock();
        if self.role() == ReplRole::Primary {
            return Ok(self.epoch());
        }
        let epoch = next_epoch(self.epoch());
        store_repl_state(
            self.vfs.as_ref(),
            &self.dir,
            ReplState {
                role: ReplRole::Primary,
                epoch,
            },
        )?;
        self.epoch.store(epoch, Ordering::SeqCst);
        self.role.store(ReplRole::Primary.as_u8(), Ordering::SeqCst);
        self.metrics.counter("repl.promotions").inc();
        Ok(epoch)
    }

    /// The current replication epoch (see [`crate::repl`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Bytes of the WAL known durable. Replicas use this as their
    /// checkpoint-pressure signal.
    pub fn wal_durable_len(&self) -> u64 {
        self.wal.lock().durable_len()
    }

    /// The next LSN the local WAL will assign (one past the last durable
    /// commit). A replica resumes replication at exactly this LSN.
    pub fn next_lsn(&self) -> u64 {
        self.wal.lock().next_lsn()
    }

    /// Read the WAL tail a replica resuming at `from_lsn` needs, at most
    /// `max_frames` frames per call. Serves only durable (flushed)
    /// frames; holds the commit lock for the duration so the tail is
    /// always a consistent prefix of the log.
    pub fn read_replication_tail(&self, from_lsn: u64, max_frames: usize) -> Result<ReplTail> {
        let mut wal = self.wal.lock();
        let next_lsn = wal.next_lsn();
        if from_lsn > next_lsn {
            return Ok(ReplTail::Diverged { next_lsn });
        }
        if from_lsn == next_lsn {
            return Ok(ReplTail::Frames {
                frames: Vec::new(),
                next_lsn,
            });
        }
        // The requested frames exist; make sure they are on disk (group
        // commit may still be buffering them) and serve from the file,
        // re-verifying each CRC on the way out.
        wal.flush()?;
        let frames = scan_wal_raw(self.vfs.as_ref(), &self.dir.join(WAL_FILE))?;
        match frames.iter().position(|f| f.lsn == from_lsn) {
            Some(i) => {
                let upper = frames.len().min(i + max_frames.max(1));
                Ok(ReplTail::Frames {
                    frames: frames[i..upper].to_vec(),
                    next_lsn,
                })
            }
            // Truncated by a checkpoint: the history exists but not in
            // log form any more.
            None => Ok(ReplTail::NeedSnapshot),
        }
    }

    /// Encode a bootstrap snapshot for a replica: run a local checkpoint
    /// (sealing any resident delta — segment files are the shipping
    /// format), then bundle the manifest plus every referenced segment
    /// file. Holds the commit lock throughout (commits queue; readers
    /// unaffected). As a side effect the primary gets a fresh checkpoint,
    /// which only advances its own recovery position.
    pub fn bootstrap_snapshot(&self, catalog: &Catalog) -> Result<(u64, Vec<u8>)> {
        let mut wal = self.wal.lock();
        let stats = self.checkpoint_locked(catalog, &mut wal)?;
        let base_lsn = stats.base_lsn;
        let manifest = self
            .vfs
            .read(&self.dir.join(crate::checkpoint::CHECKPOINT_FILE))?;
        let image = decode_manifest(&manifest)?;
        let mut ids: Vec<u64> = image.referenced_segments().into_iter().collect();
        ids.sort_unstable();
        let mut files = Vec::with_capacity(ids.len());
        for id in ids {
            files.push((id, self.store.read_file(id)?));
        }
        Ok((base_lsn, encode_bootstrap_bundle(&files, &manifest)))
    }

    /// Apply one replicated WAL frame: re-verify its CRC, require it to
    /// continue the local log exactly (LSN gap ⇒ error, see
    /// [`WalWriter::append_raw_frame`]), make it durable, then apply its
    /// ops through the normal redo path — all inside the commit-lock
    /// critical section, so a concurrent replica checkpoint observes the
    /// append and the publish atomically. Returns the number of redo ops
    /// applied.
    pub fn apply_replicated_frame(
        &self,
        catalog: &Catalog,
        lsn: u64,
        crc: u32,
        payload: &[u8],
    ) -> Result<u64> {
        // Decode before touching the file: a CRC-valid frame that fails
        // to parse is corruption and must not become durable here.
        let (payload_lsn, ops) = decode_commit_payload(payload)?;
        if payload_lsn != lsn {
            return Err(HyError::Storage(format!(
                "replicated frame header lsn {lsn} disagrees with payload lsn {payload_lsn}"
            )));
        }
        let mut wal = self.wal.lock();
        if let Err(e) = wal.append_raw_frame(lsn, crc, payload) {
            // A replica with a full disk degrades too: it keeps serving
            // reads but stops acknowledging frames it cannot persist.
            self.note_write_error(&e);
            return Err(e);
        }
        let mut applied = 0u64;
        for op in ops {
            if apply_op(catalog, op) {
                applied += 1;
            }
        }
        self.metrics.counter("repl.frames_applied").inc();
        Ok(applied)
    }

    /// Replace this replica's entire local state with a bootstrap
    /// bundle from its primary: write the shipped segment files under
    /// locally allocated ids (a fresh id can never collide with the
    /// replica's own files; a crash mid-install leaves only orphans the
    /// next recovery deletes), publish the remapped manifest, reset the
    /// WAL to restart at the bundle's base LSN, swap the catalog
    /// contents, and durably adopt the primary's epoch. The caller must
    /// hold the writer gate so no session observes the swap half-done.
    pub fn install_bootstrap(&self, catalog: &Catalog, epoch: u64, data: &[u8]) -> Result<u64> {
        let (files, manifest) = decode_bootstrap_bundle(data)?;
        let mut image = decode_manifest(&manifest)?;
        let base_lsn = image.base_lsn;
        let mut wal = self.wal.lock();
        let mut remap = std::collections::HashMap::with_capacity(files.len());
        for (shipped_id, mut bytes) in files {
            let local_id = self.store.alloc_id();
            rebrand_segment_bytes(&mut bytes, local_id)?;
            self.store.write_validated(local_id, &bytes)?;
            remap.insert(shipped_id, local_id);
        }
        for t in &mut image.tables {
            for seg in &mut t.segments {
                seg.0 = *remap.get(&seg.0).ok_or_else(|| {
                    HyError::Storage(format!(
                        "bootstrap manifest references segment {} the bundle does not ship",
                        seg.0
                    ))
                })?;
            }
        }
        self.store.sync_dir()?;
        let local_manifest = encode_manifest(base_lsn, &image.tables);
        publish_checkpoint(self.vfs.as_ref(), &self.dir, &local_manifest)?;
        wal.reset()?;
        wal.set_next_lsn(base_lsn);
        catalog.clear();
        let referenced = image.referenced_segments();
        let rows = install_manifest(image, catalog, &self.store)?;
        // The replica's pre-bootstrap segment files are garbage now.
        self.store.gc(&referenced)?;
        store_repl_state(
            self.vfs.as_ref(),
            &self.dir,
            ReplState {
                role: self.role(),
                epoch,
            },
        )?;
        self.epoch.store(epoch, Ordering::SeqCst);
        self.metrics.counter("repl.bootstraps").inc();
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{Chunk, ColumnVector, DataType, FaultVfs, Field, Schema};
    use std::path::PathBuf;

    fn open_fault(
        fault: &FaultVfs,
        options: DurabilityOptions,
    ) -> (Durability, Catalog, RecoveryReport) {
        Durability::open(
            Arc::new(fault.clone()) as Arc<dyn Vfs>,
            &PathBuf::from("data"),
            options,
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap()
    }

    fn insert(v: i64) -> RedoOp {
        RedoOp::Insert {
            table: "t".into(),
            rows: Chunk::new(vec![ColumnVector::from_i64(vec![v])]),
        }
    }

    fn create() -> RedoOp {
        RedoOp::CreateTable {
            name: "t".into(),
            schema: Schema::new(vec![Field::new("x", DataType::Int64)]),
        }
    }

    #[test]
    fn commit_checkpoint_reopen_cycle() {
        let fault = FaultVfs::new();
        let (d, catalog, _) = open_fault(&fault, DurabilityOptions::default());
        d.log_commit(&[create()]).unwrap();
        d.log_commit(&[insert(1)]).unwrap();
        // Mirror in memory so the checkpoint has something to snapshot.
        let t = catalog
            .create_table("t", Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
        {
            let mut g = t.write();
            g.insert_rows(&[vec![hylite_common::Value::Int(1)]])
                .unwrap();
            g.commit();
        }
        let stats = d.checkpoint(&catalog).unwrap();
        assert_eq!(stats.tables, 1);
        assert!(stats.base_lsn >= 3);
        // Post-checkpoint commits land in the truncated WAL.
        d.log_commit(&[insert(2)]).unwrap();
        drop(d);
        let (_, catalog, report) = open_fault(&fault, DurabilityOptions::default());
        assert!(report.checkpoint_loaded);
        assert_eq!(report.replayed_records, 1);
        let t = catalog.get_table("t").unwrap();
        assert_eq!(t.read().committed_live_rows(), 2);
    }

    #[test]
    fn crash_points_list_is_exhaustive_and_ordered() {
        assert_eq!(CRASH_POINTS.len(), 11);
        let unique: std::collections::BTreeSet<_> = CRASH_POINTS.iter().collect();
        assert_eq!(unique.len(), CRASH_POINTS.len());
    }

    /// Commit a row durably *and* mirror it into the in-memory table, the
    /// way a real transaction's publication step does.
    fn committed_insert(d: &Durability, catalog: &Catalog, v: i64) -> u64 {
        let lsn = d.log_commit(&[insert(v)]).unwrap();
        mirror_insert(catalog, v);
        lsn
    }

    #[test]
    fn checkpoint_archives_wal_and_watermark_tracks_truncations() {
        let fault = FaultVfs::new();
        let options = DurabilityOptions {
            archive_dir: Some(PathBuf::from("arch")),
            ..DurabilityOptions::default()
        };
        let (d, catalog, _) = open_fault(&fault, options.clone());
        d.log_commit(&[create()]).unwrap();
        make_table(&catalog);
        committed_insert(&d, &catalog, 1);
        committed_insert(&d, &catalog, 2);
        d.checkpoint(&catalog).unwrap();
        assert_eq!(d.archive_watermark(), Some(3));
        committed_insert(&d, &catalog, 3);
        d.checkpoint(&catalog).unwrap();
        assert_eq!(d.archive_watermark(), Some(4));
        // Every truncated frame survives in the archive, contiguously.
        let frames = crate::archive::read_archived_frames(&fault, Path::new("arch")).unwrap();
        assert_eq!(frames.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        // The watermark is durable across reopen.
        drop(d);
        let (d, _, _) = open_fault(&fault, options);
        assert_eq!(d.archive_watermark(), Some(4));
    }

    #[test]
    fn checkpoint_compacts_dead_heavy_quiescent_tables() {
        let fault = FaultVfs::new();
        let (d, catalog, _) = open_fault(&fault, DurabilityOptions::default());
        d.log_commit(&[create()]).unwrap();
        make_table(&catalog);
        for v in 0..10 {
            committed_insert(&d, &catalog, v);
        }
        d.checkpoint(&catalog).unwrap();
        // Kill 6 of 10 rows: dead fraction 0.6 >= the default 0.3.
        let dead: Vec<usize> = (0..6).collect();
        d.log_commit(&[RedoOp::Delete {
            table: "t".into(),
            row_ids: dead.iter().map(|&i| i as u64).collect(),
        }])
        .unwrap();
        {
            let t = catalog.get_table("t").unwrap();
            let mut g = t.write();
            g.delete_rows(&dead).unwrap();
            g.commit();
        }
        d.checkpoint(&catalog).unwrap();
        {
            let t = catalog.get_table("t").unwrap();
            let g = t.read();
            assert_eq!(g.committed_live_rows(), 4);
            // Compaction physically dropped the dead rows.
            assert_eq!(g.dead_fraction(), 0.0);
        }
        // The compacted manifest is what recovery loads.
        drop(d);
        let (_, catalog, report) = open_fault(&fault, DurabilityOptions::default());
        assert!(report.checkpoint_loaded);
        assert_eq!(report.checkpoint_rows, 4);
        let t = catalog.get_table("t").unwrap();
        assert_eq!(t.read().committed_live_rows(), 4);
        assert_eq!(t.read().dead_fraction(), 0.0);
    }

    #[test]
    fn compaction_skips_tables_with_staged_rows() {
        let fault = FaultVfs::new();
        let (d, catalog, _) = open_fault(&fault, DurabilityOptions::default());
        d.log_commit(&[create()]).unwrap();
        make_table(&catalog);
        for v in 0..4 {
            committed_insert(&d, &catalog, v);
        }
        d.log_commit(&[RedoOp::Delete {
            table: "t".into(),
            row_ids: vec![0, 1, 2],
        }])
        .unwrap();
        {
            let t = catalog.get_table("t").unwrap();
            let mut g = t.write();
            g.delete_rows(&[0, 1, 2]).unwrap();
            g.commit();
            // Stage (but do not commit) a row: the table is not quiescent.
            g.insert_rows(&[vec![hylite_common::Value::Int(99)]])
                .unwrap();
        }
        d.checkpoint(&catalog).unwrap();
        let t = catalog.get_table("t").unwrap();
        // Dead rows are still present — compaction must not renumber rows
        // underneath an in-flight transaction.
        assert!(t.read().dead_fraction() > 0.0);
    }

    #[test]
    fn backup_restore_roundtrip_with_pitr_cut() {
        let fault = FaultVfs::new();
        let options = DurabilityOptions {
            archive_dir: Some(PathBuf::from("arch")),
            ..DurabilityOptions::default()
        };
        let (d, catalog, _) = open_fault(&fault, options);
        d.log_commit(&[create()]).unwrap();
        make_table(&catalog);
        committed_insert(&d, &catalog, 1);
        committed_insert(&d, &catalog, 2);
        d.checkpoint(&catalog).unwrap();
        committed_insert(&d, &catalog, 3);
        let summary = d.backup(Path::new("bkp"), None, true).unwrap();
        assert!(summary.verified);
        assert!(!summary.incremental);
        assert_eq!(summary.backup_lsn, 4);
        assert_eq!(d.last_backup().unwrap().lsn, 4);
        // Traffic continues after the backup; a checkpoint archives it.
        let stop_lsn = committed_insert(&d, &catalog, 4);
        committed_insert(&d, &catalog, 5);
        d.checkpoint(&catalog).unwrap();

        // PITR: restore to just after value 4 landed, dropping value 5.
        let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
        crate::backup::restore_backup(
            &vfs,
            Path::new("bkp"),
            Some(Path::new("arch")),
            Path::new("restored"),
            Some(stop_lsn),
        )
        .unwrap();
        let (d2, catalog2, report) = Durability::open(
            Arc::clone(&vfs),
            &PathBuf::from("restored"),
            DurabilityOptions::default(),
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap();
        assert!(report.checkpoint_loaded);
        let t = catalog2.get_table("t").unwrap();
        assert_eq!(t.read().committed_live_rows(), 4); // values 1..=4
                                                       // The restored node is re-epoched: it must not splice into the
                                                       // old fleet's replication timeline.
        assert!(d2.epoch() != d.epoch());
    }

    #[test]
    fn incremental_backup_copies_only_new_segments() {
        let fault = FaultVfs::new();
        let (d, catalog, _) = open_fault(&fault, DurabilityOptions::default());
        d.log_commit(&[create()]).unwrap();
        make_table(&catalog);
        committed_insert(&d, &catalog, 1);
        d.checkpoint(&catalog).unwrap();
        let full = d.backup(Path::new("b0"), None, false).unwrap();
        assert_eq!(full.segments_copied, 1);
        // No new sealed segments: the incremental copies zero files.
        let inc = d
            .backup(Path::new("b1"), Some(Path::new("b0")), false)
            .unwrap();
        assert!(inc.incremental);
        assert_eq!(inc.segments_copied, 0);
        assert!(inc.bytes < full.bytes);
        // A restore from the incremental pulls segments through the chain.
        let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
        let restored =
            crate::backup::restore_backup(&vfs, Path::new("b1"), None, Path::new("restored"), None)
                .unwrap();
        assert_eq!(restored.segments, 1);
        let (_, catalog2, _) = Durability::open(
            vfs,
            &PathBuf::from("restored"),
            DurabilityOptions::default(),
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap();
        let t = catalog2.get_table("t").unwrap();
        assert_eq!(t.read().committed_live_rows(), 1);
    }

    fn replica_options() -> DurabilityOptions {
        DurabilityOptions {
            role: ReplRole::Replica,
            ..DurabilityOptions::default()
        }
    }

    fn mirror_insert(catalog: &Catalog, v: i64) {
        let t = catalog.get_table("t").unwrap();
        let mut g = t.write();
        g.insert_rows(&[vec![hylite_common::Value::Int(v)]])
            .unwrap();
        g.commit();
    }

    fn make_table(catalog: &Catalog) {
        catalog
            .create_table("t", Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
    }

    #[test]
    fn primary_open_mints_fresh_epoch_and_replica_open_keeps_it() {
        let fault = FaultVfs::new();
        let (d, _, _) = open_fault(&fault, DurabilityOptions::default());
        let e1 = d.epoch();
        assert_ne!(e1, 0);
        assert_eq!(d.role(), ReplRole::Primary);
        drop(d);
        let (d, _, _) = open_fault(&fault, DurabilityOptions::default());
        assert_ne!(d.epoch(), e1, "every primary incarnation is a new epoch");
        drop(d);

        let replica = FaultVfs::new();
        let (r, _, _) = open_fault(&replica, replica_options());
        assert_eq!(r.epoch(), 0, "fresh replica has no epoch");
        assert_eq!(r.role(), ReplRole::Replica);
        drop(r);
        let (r, _, _) = open_fault(&replica, replica_options());
        assert_eq!(r.epoch(), 0, "replica reopen preserves its epoch");
    }

    #[test]
    fn replica_dir_refuses_primary_open_without_promote() {
        let fault = FaultVfs::new();
        let (r, _, _) = open_fault(&fault, replica_options());
        drop(r);
        let err = Durability::open(
            Arc::new(fault.clone()) as Arc<dyn Vfs>,
            &PathBuf::from("data"),
            DurabilityOptions::default(),
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap_err();
        assert!(err.message().contains("--promote"), "{err}");
        // Promotion takes over with a fresh epoch.
        let (p, _, _) = open_fault(
            &fault,
            DurabilityOptions {
                promote: true,
                ..DurabilityOptions::default()
            },
        );
        assert_eq!(p.role(), ReplRole::Primary);
        assert_ne!(p.epoch(), 0);
    }

    #[test]
    fn in_place_promotion_flips_role_and_mints_fresh_epoch_durably() {
        let fault = FaultVfs::new();
        let (r, rcat, _) = open_fault(&fault, replica_options());
        // Give the replica a nonzero epoch as a bootstrap would.
        make_table(&rcat);
        let (p, pcat, _) = open_fault(&FaultVfs::new(), DurabilityOptions::default());
        make_table(&pcat);
        let (_, snap) = p.bootstrap_snapshot(&pcat).unwrap();
        r.install_bootstrap(&rcat, p.epoch(), &snap).unwrap();
        let old_epoch = r.epoch();
        assert_eq!(r.role(), ReplRole::Replica);

        let epoch = r.promote_to_primary().unwrap();
        assert_eq!(r.role(), ReplRole::Primary);
        assert_ne!(epoch, 0);
        assert_ne!(epoch, old_epoch, "promotion fences the old incarnation");
        // Idempotent on a primary: same epoch back, no re-mint.
        assert_eq!(r.promote_to_primary().unwrap(), epoch);
        // The flip is durable: a plain primary reopen needs no --promote.
        drop(r);
        let (reopened, _, _) = open_fault(&fault, DurabilityOptions::default());
        assert_eq!(reopened.role(), ReplRole::Primary);
    }

    #[test]
    fn replication_tail_serves_resume_points() {
        let fault = FaultVfs::new();
        let (d, catalog, _) = open_fault(&fault, DurabilityOptions::default());
        make_table(&catalog);
        d.log_commit(&[create()]).unwrap(); // lsn 1
        d.log_commit(&[insert(1)]).unwrap(); // lsn 2
        d.log_commit(&[insert(2)]).unwrap(); // lsn 3

        // Caught-up replica gets an empty tail.
        match d.read_replication_tail(4, 64).unwrap() {
            ReplTail::Frames { frames, next_lsn } => {
                assert!(frames.is_empty());
                assert_eq!(next_lsn, 4);
            }
            other => panic!("{other:?}"),
        }
        // Mid-log resume gets exactly the missing suffix.
        match d.read_replication_tail(2, 64).unwrap() {
            ReplTail::Frames { frames, next_lsn } => {
                assert_eq!(frames.iter().map(|f| f.lsn).collect::<Vec<_>>(), vec![2, 3]);
                assert_eq!(next_lsn, 4);
            }
            other => panic!("{other:?}"),
        }
        // max_frames bounds the batch.
        match d.read_replication_tail(1, 2).unwrap() {
            ReplTail::Frames { frames, .. } => {
                assert_eq!(frames.iter().map(|f| f.lsn).collect::<Vec<_>>(), vec![1, 2]);
            }
            other => panic!("{other:?}"),
        }
        // A replica ahead of the primary has forked.
        assert!(matches!(
            d.read_replication_tail(99, 64).unwrap(),
            ReplTail::Diverged { next_lsn: 4 }
        ));
        // After a checkpoint truncates the WAL, old LSNs need a snapshot.
        mirror_insert(&catalog, 1);
        mirror_insert(&catalog, 2);
        d.checkpoint(&catalog).unwrap();
        assert!(matches!(
            d.read_replication_tail(2, 64).unwrap(),
            ReplTail::NeedSnapshot
        ));
    }

    #[test]
    fn bootstrap_roundtrip_applies_frames_after_snapshot() {
        // Primary: two committed rows, then a snapshot, then one more row.
        let primary = FaultVfs::new();
        let (p, pcat, _) = open_fault(&primary, DurabilityOptions::default());
        make_table(&pcat);
        p.log_commit(&[create()]).unwrap();
        p.log_commit(&[insert(1)]).unwrap();
        mirror_insert(&pcat, 1);
        let (base_lsn, snapshot) = p.bootstrap_snapshot(&pcat).unwrap();
        assert_eq!(base_lsn, 3);
        p.log_commit(&[insert(2)]).unwrap(); // lsn 3
        mirror_insert(&pcat, 2);

        // Replica: install the snapshot, then apply the tail.
        let replica = FaultVfs::new();
        let (r, rcat, _) = open_fault(&replica, replica_options());
        let rows = r.install_bootstrap(&rcat, p.epoch(), &snapshot).unwrap();
        assert_eq!(rows, 1);
        assert_eq!(r.epoch(), p.epoch(), "replica adopted the primary's epoch");
        let tail = match p.read_replication_tail(base_lsn, 64).unwrap() {
            ReplTail::Frames { frames, .. } => frames,
            other => panic!("{other:?}"),
        };
        assert_eq!(tail.len(), 1);
        for f in &tail {
            r.apply_replicated_frame(&rcat, f.lsn, f.crc, &f.payload)
                .unwrap();
        }
        let t = rcat.get_table("t").unwrap();
        assert_eq!(t.read().committed_live_rows(), 2);

        // A replica restart resumes from its durable LSN, not a snapshot.
        drop(r);
        let (r, rcat, report) = open_fault(&replica, replica_options());
        assert_eq!(r.epoch(), p.epoch(), "epoch survives the restart");
        assert_eq!(report.next_lsn, 4);
        assert_eq!(
            rcat.get_table("t").unwrap().read().committed_live_rows(),
            2,
            "checkpoint + applied frame both recovered"
        );
    }

    #[test]
    fn disk_full_degrades_node_and_probe_resumes_writes() {
        let fault = FaultVfs::new();
        let (d, catalog, _) = open_fault(&fault, DurabilityOptions::default());
        make_table(&catalog);
        d.log_commit(&[create()]).unwrap();
        assert!(!d.try_resume_writes().unwrap(), "healthy node: no-op");

        fault.set_disk_full(true);
        let err = d.log_commit(&[insert(1)]).unwrap_err();
        assert!(matches!(err, HyError::DiskFull(_)), "{err}");
        assert!(d.degraded());
        assert_eq!(d.node_state(), "degraded");

        // Later writes are rejected up front, same typed error.
        let err = d.log_commit(&[insert(2)]).unwrap_err();
        assert!(matches!(err, HyError::DiskFull(_)), "{err}");
        // Replication reads of the durable log still serve.
        match d.read_replication_tail(1, 64).unwrap() {
            ReplTail::Frames { frames, .. } => assert_eq!(frames.len(), 1),
            other => panic!("{other:?}"),
        }

        // The probe fails while the disk is still full...
        assert!(!d.try_resume_writes().unwrap());
        assert!(d.degraded());
        // ...and succeeds once space frees: writes resume, no restart.
        fault.set_disk_full(false);
        assert!(d.try_resume_writes().unwrap());
        assert_eq!(d.node_state(), "ok");
        d.log_commit(&[insert(3)]).unwrap();
        match d.read_replication_tail(1, 64).unwrap() {
            ReplTail::Frames { frames, .. } => assert_eq!(frames.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn segment_seal_enospc_degrades_via_checkpoint() {
        let fault = FaultVfs::new();
        let (d, catalog, _) = open_fault(&fault, DurabilityOptions::default());
        make_table(&catalog);
        d.log_commit(&[create()]).unwrap();
        d.log_commit(&[insert(1)]).unwrap();
        mirror_insert(&catalog, 1);
        fault.set_disk_full(true);
        let err = d.checkpoint(&catalog).unwrap_err();
        assert!(matches!(err, HyError::DiskFull(_)), "{err}");
        assert!(d.degraded());
        fault.set_disk_full(false);
        assert!(d.try_resume_writes().unwrap());
        // The interrupted checkpoint retries cleanly.
        let stats = d.checkpoint(&catalog).unwrap();
        assert_eq!(stats.tables, 1);
    }

    #[test]
    fn applied_frame_with_wrong_payload_lsn_is_rejected() {
        let fault = FaultVfs::new();
        let (d, catalog, _) = open_fault(&fault, DurabilityOptions::default());
        make_table(&catalog);
        let frame = crate::wal::encode_commit_frame(1, &[insert(1)]);
        let payload = frame[8..].to_vec();
        let crc = hylite_common::crc32(&payload);
        // Header lsn 2 vs payload lsn 1: refused before anything lands.
        assert!(d
            .apply_replicated_frame(&catalog, 2, crc, &payload)
            .is_err());
        assert_eq!(
            d.read_replication_tail(1, 64).ok().map(|t| match t {
                ReplTail::Frames { frames, .. } => frames.len(),
                _ => usize::MAX,
            }),
            Some(0)
        );
    }
}
