//! The durability orchestrator: one object owning the WAL writer and the
//! checkpoint procedure, shared by every session of a database.
//!
//! Locking: a single commit mutex serializes WAL appends *and* the whole
//! checkpoint. Crucially, commit *publication* — the promotion of a
//! table's working state to its committed state — happens inside the
//! same critical section as the WAL append (see
//! [`Durability::with_commit_lock`]). That pairing is what makes
//! checkpoints correct: a checkpoint holding the mutex can never observe
//! an acknowledged commit that is in the WAL but not yet in memory (it
//! would pick a `base_lsn` past the commit, snapshot memory without it,
//! and truncate the commit's only durable record), nor memory state whose
//! WAL frame hasn't been appended yet. While a checkpoint runs, commits
//! stall (they queue on the mutex) but readers are completely
//! unaffected — the checkpoint reads committed snapshots, which are
//! `Arc`-stable by construction. This is the main-memory twist on the
//! paper's design: the snapshot mechanism that isolates long analytical
//! queries from OLTP writes is the same one that makes consistent
//! checkpointing cheap.
//!
//! Lock order: the commit mutex is acquired *before* any table lock
//! (publication and checkpoint snapshots take table locks inside it).
//! No caller may wait on the commit mutex while holding a table lock.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use hylite_common::faultfs::Vfs;
use hylite_common::{MetricsRegistry, Result};
use parking_lot::Mutex;

use crate::catalog::Catalog;
use crate::checkpoint::{
    encode_checkpoint, publish_checkpoint, CP_CKPT_AFTER_RENAME, CP_CKPT_RENAME, CP_CKPT_WRITE,
};
use crate::recovery::{recover, RecoveryReport};
use crate::wal::{
    RedoOp, SyncMode, WalWriter, CP_WAL_AFTER_WRITE, CP_WAL_APPEND, CP_WAL_POST_FSYNC,
    CP_WAL_PRE_FSYNC, CP_WAL_TRUNCATE, WAL_FILE,
};

/// Every named crash point the durability code passes through, in rough
/// chronological order of a commit followed by a checkpoint. The
/// crash-point matrix test iterates this list; adding a crash point
/// without registering it here means it never gets tested.
pub const CRASH_POINTS: &[&str] = &[
    CP_WAL_APPEND,
    CP_WAL_AFTER_WRITE,
    CP_WAL_PRE_FSYNC,
    CP_WAL_POST_FSYNC,
    CP_CKPT_WRITE,
    CP_CKPT_RENAME,
    CP_CKPT_AFTER_RENAME,
    CP_WAL_TRUNCATE,
];

/// Tunables for the durability subsystem.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// When the WAL fsyncs relative to commit acknowledgement.
    pub sync_mode: SyncMode,
    /// Group-commit buffer threshold in bytes ([`SyncMode::Buffered`]
    /// only).
    pub group_commit_bytes: usize,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            sync_mode: SyncMode::Commit,
            group_commit_bytes: 256 * 1024,
        }
    }
}

/// Outcome of one checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointStats {
    /// Tables captured.
    pub tables: usize,
    /// Bytes of the published checkpoint file.
    pub bytes: u64,
    /// The checkpoint's base LSN.
    pub base_lsn: u64,
    /// Wall-clock duration in milliseconds.
    pub duration_ms: u64,
}

/// The per-database durability engine. Cheap to share (`Arc` it); all
/// methods take `&self`.
#[derive(Debug)]
pub struct Durability {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    metrics: Arc<MetricsRegistry>,
    wal: Mutex<WalWriter>,
}

impl Durability {
    /// Run recovery against `dir`, then open the WAL for appending.
    /// Returns the durability engine, the recovered catalog, and the
    /// recovery report.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        options: DurabilityOptions,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<(Durability, Catalog, RecoveryReport)> {
        let (catalog, report) = recover(&vfs, dir, &metrics)?;
        let wal = WalWriter::open(
            Arc::clone(&vfs),
            dir.join(WAL_FILE),
            options.sync_mode,
            options.group_commit_bytes,
            report.next_lsn,
            Arc::clone(&metrics),
        )?;
        Ok((
            Durability {
                vfs,
                dir: dir.to_owned(),
                metrics,
                wal: Mutex::new(wal),
            },
            catalog,
            report,
        ))
    }

    /// The injectable filesystem this database runs on.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured sync mode.
    pub fn sync_mode(&self) -> SyncMode {
        self.wal.lock().sync_mode()
    }

    /// Log one commit's redo ops. When this returns `Ok`, the commit is
    /// durable per the configured [`SyncMode`] and may be acknowledged.
    ///
    /// Commit paths that also publish in-memory state must use
    /// [`Durability::with_commit_lock`] instead, so the append and the
    /// publish are atomic with respect to checkpoints.
    pub fn log_commit(&self, ops: &[RedoOp]) -> Result<u64> {
        self.wal.lock().log_commit(ops)
    }

    /// Run `f` while holding the commit mutex — the same lock
    /// [`Durability::checkpoint`] holds for its whole duration. `f`
    /// appends the commit's WAL frame via the provided [`WalWriter`] and
    /// then performs the in-memory publish (or rollback, on append
    /// failure) *before returning*, which guarantees a checkpoint never
    /// runs between a commit's WAL append and its publication.
    ///
    /// `f` may take table locks; it must not re-enter the durability
    /// engine (the commit mutex is not reentrant).
    pub fn with_commit_lock<R>(&self, f: impl FnOnce(&mut WalWriter) -> Result<R>) -> Result<R> {
        let mut wal = self.wal.lock();
        f(&mut wal)
    }

    /// Force any group-commit buffered frames to disk.
    pub fn flush(&self) -> Result<()> {
        self.wal.lock().flush()
    }

    /// Take a checkpoint: flush the WAL, snapshot every table at the
    /// current LSN, publish atomically, then truncate the WAL. Holds the
    /// commit lock throughout (readers unaffected).
    pub fn checkpoint(&self, catalog: &Catalog) -> Result<CheckpointStats> {
        let started = Instant::now();
        let mut wal = self.wal.lock();
        // Buffered frames must hit the disk first: if the checkpoint then
        // fails part-way, the WAL still covers those commits.
        wal.flush()?;
        let base_lsn = wal.next_lsn();
        let data = encode_checkpoint(catalog, base_lsn);
        publish_checkpoint(self.vfs.as_ref(), &self.dir, &data)?;
        wal.reset()?;
        let stats = CheckpointStats {
            tables: catalog.table_names().len(),
            bytes: data.len() as u64,
            base_lsn,
            duration_ms: started.elapsed().as_millis() as u64,
        };
        self.metrics
            .histogram("checkpoint.duration_ms")
            .record(stats.duration_ms);
        self.metrics.counter("checkpoint.count").inc();
        self.metrics
            .counter("checkpoint.bytes_written")
            .add(stats.bytes);
        Ok(stats)
    }

    /// Graceful shutdown: one final checkpoint (which also flushes any
    /// buffered commits).
    pub fn close(&self, catalog: &Catalog) -> Result<CheckpointStats> {
        self.checkpoint(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{Chunk, ColumnVector, DataType, FaultVfs, Field, Schema};
    use std::path::PathBuf;

    fn open_fault(
        fault: &FaultVfs,
        options: DurabilityOptions,
    ) -> (Durability, Catalog, RecoveryReport) {
        Durability::open(
            Arc::new(fault.clone()) as Arc<dyn Vfs>,
            &PathBuf::from("data"),
            options,
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap()
    }

    fn insert(v: i64) -> RedoOp {
        RedoOp::Insert {
            table: "t".into(),
            rows: Chunk::new(vec![ColumnVector::from_i64(vec![v])]),
        }
    }

    fn create() -> RedoOp {
        RedoOp::CreateTable {
            name: "t".into(),
            schema: Schema::new(vec![Field::new("x", DataType::Int64)]),
        }
    }

    #[test]
    fn commit_checkpoint_reopen_cycle() {
        let fault = FaultVfs::new();
        let (d, catalog, _) = open_fault(&fault, DurabilityOptions::default());
        d.log_commit(&[create()]).unwrap();
        d.log_commit(&[insert(1)]).unwrap();
        // Mirror in memory so the checkpoint has something to snapshot.
        let t = catalog
            .create_table("t", Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
        {
            let mut g = t.write();
            g.insert_rows(&[vec![hylite_common::Value::Int(1)]])
                .unwrap();
            g.commit();
        }
        let stats = d.checkpoint(&catalog).unwrap();
        assert_eq!(stats.tables, 1);
        assert!(stats.base_lsn >= 3);
        // Post-checkpoint commits land in the truncated WAL.
        d.log_commit(&[insert(2)]).unwrap();
        drop(d);
        let (_, catalog, report) = open_fault(&fault, DurabilityOptions::default());
        assert!(report.checkpoint_loaded);
        assert_eq!(report.replayed_records, 1);
        let t = catalog.get_table("t").unwrap();
        assert_eq!(t.read().committed_live_rows(), 2);
    }

    #[test]
    fn crash_points_list_is_exhaustive_and_ordered() {
        assert_eq!(CRASH_POINTS.len(), 8);
        let unique: std::collections::BTreeSet<_> = CRASH_POINTS.iter().collect();
        assert_eq!(unique.len(), CRASH_POINTS.len());
    }
}
