//! Main-memory column-store storage engine.
//!
//! Tables are append-only sequences of immutable columnar *segments*
//! (shared via `Arc`) plus a delete bitmap, which makes snapshotting a
//! long-running analytical query O(#segments): the snapshot bumps the
//! segment `Arc`s and copies the (bit-packed) delete mask, after which
//! concurrent OLTP inserts/deletes never disturb the reader — the paper's
//! "analytics in a fully transactional environment" property, reproduced
//! as snapshot isolation for readers with single-writer transactions.
//!
//! * [`Table`] — schema + segments + delete bitmap + commit watermarks.
//! * [`TableSnapshot`] — a stable view; splits into morsels for parallel
//!   scans.
//! * [`Catalog`] — name → table map.
//! * [`Transaction`] — undo-based rollback over the touched tables.

pub mod archive;
pub mod backup;
pub mod catalog;
pub mod checkpoint;
pub mod durability;
pub mod pool;
pub mod recovery;
pub mod repl;
pub mod segment;
pub mod snapshot;
pub mod table;
pub mod transaction;
pub mod wal;
pub mod writer;

pub use archive::WalArchive;
pub use backup::{restore_backup, BackupMeta, BackupSummary, RestoreSummary};
pub use catalog::Catalog;
pub use checkpoint::CheckpointImage;
pub use durability::{CheckpointStats, Durability, DurabilityOptions, ReplTail, CRASH_POINTS};
pub use pool::{BufferPool, PoolStats};
pub use recovery::RecoveryReport;
pub use repl::{ReplRole, ReplState};
pub use segment::{DiskSegment, SegmentStore, ZoneRange, BLOCK_ROWS, SEGMENT_DIR};
pub use snapshot::{Morsel, ScanPruning, SegmentHandle, TableSnapshot};
pub use table::{Table, TableRef, SEGMENT_ROWS};
pub use transaction::Transaction;
pub use wal::{RawFrame, RedoOp, SyncMode, WalWriter};
pub use writer::{WriterGate, WriterGuard};
