//! The in-memory table: immutable columnar segments + delete bitmap.

use std::sync::Arc;

use hylite_common::{Bitmap, Chunk, HyError, Result, Row, Schema, Value};
use parking_lot::RwLock;

use crate::snapshot::{SegmentHandle, TableSnapshot};

/// Maximum rows per sealed segment. Large enough that scans amortize
/// per-segment overhead, small enough that parallel scans get plenty of
/// morsels even on mid-size tables.
pub const SEGMENT_ROWS: usize = 64 * 1024;

/// Shared handle to a table; the catalog hands these out.
pub type TableRef = Arc<RwLock<Table>>;

/// A main-memory table.
///
/// Rows carry implicit global row ids: segment rows concatenated in order.
/// Deleting marks the row's bit in `deleted`; space is reclaimed only by
/// [`Table::compact`]. Two watermarks implement reader/writer isolation:
/// everything up to `committed_len` with `committed_deleted` is what other
/// sessions see; the working state (`total_len`, `deleted`) is what the
/// writing session itself sees.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    segments: Vec<SegmentHandle>,
    total_len: usize,
    deleted: Bitmap,
    committed_len: usize,
    committed_deleted: Bitmap,
    version: u64,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema: Arc::new(schema),
            segments: Vec::new(),
            total_len: 0,
            deleted: Bitmap::new(),
            committed_len: 0,
            committed_deleted: Bitmap::new(),
            version: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Monotonic change counter (bumped by every mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total stored rows including uncommitted and deleted ones.
    pub fn total_rows(&self) -> usize {
        self.total_len
    }

    /// Live (non-deleted) rows in the working state.
    pub fn live_rows(&self) -> usize {
        self.total_len - self.deleted.count_ones()
    }

    /// Live rows visible to other sessions (committed state).
    pub fn committed_live_rows(&self) -> usize {
        let deleted_committed = self
            .committed_deleted
            .iter_ones()
            .take_while(|&i| i < self.committed_len)
            .count();
        self.committed_len - deleted_committed
    }

    /// Append a chunk of rows, splitting into `SEGMENT_ROWS`-sized
    /// segments. Column types must match the schema exactly (the
    /// executor/binder coerce beforehand).
    pub fn insert_chunk(&mut self, chunk: Chunk) -> Result<usize> {
        if chunk.num_columns() != self.schema.len() {
            return Err(HyError::Storage(format!(
                "table '{}' has {} columns but insert provides {}",
                self.name,
                self.schema.len(),
                chunk.num_columns()
            )));
        }
        for (i, col) in chunk.columns().iter().enumerate() {
            let expect = self.schema.field(i).data_type;
            if col.data_type() != expect {
                return Err(HyError::Storage(format!(
                    "column '{}' of table '{}' expects {expect}, got {}",
                    self.schema.field(i).name,
                    self.name,
                    col.data_type()
                )));
            }
        }
        let n = chunk.len();
        let mut offset = 0;
        while offset < n {
            let take = (n - offset).min(SEGMENT_ROWS);
            let segment = if offset == 0 && take == n {
                chunk.clone()
            } else {
                chunk.slice(offset, take)
            };
            self.segments
                .push(SegmentHandle::Resident(Arc::new(segment)));
            offset += take;
        }
        self.total_len += n;
        for _ in 0..n {
            self.deleted.push(false);
        }
        self.version += 1;
        Ok(n)
    }

    /// Insert rows of values, coercing each to the schema's types.
    pub fn insert_rows(&mut self, rows: &[Vec<Value>]) -> Result<usize> {
        let types = self.schema.types();
        for row in rows {
            if row.len() != types.len() {
                return Err(HyError::Storage(format!(
                    "table '{}' expects {} values per row, got {}",
                    self.name,
                    types.len(),
                    row.len()
                )));
            }
        }
        let chunk = Chunk::from_rows(&types, rows)?;
        self.insert_chunk(chunk)
    }

    /// Mark global row ids as deleted. Ids must be < `total_rows`.
    pub fn delete_rows(&mut self, row_ids: &[usize]) -> Result<usize> {
        let mut n = 0;
        for &id in row_ids {
            if id >= self.total_len {
                return Err(HyError::Storage(format!(
                    "row id {id} out of range for table '{}' ({} rows)",
                    self.name, self.total_len
                )));
            }
            if !self.deleted.get(id) {
                self.deleted.set(id, true);
                n += 1;
            }
        }
        if n > 0 {
            self.version += 1;
        }
        Ok(n)
    }

    /// Update = delete the old versions and append the new rows, the
    /// classic column-store write path. Returns the number of updated rows.
    pub fn update_rows(&mut self, row_ids: &[usize], new_rows: Vec<Vec<Value>>) -> Result<usize> {
        if row_ids.len() != new_rows.len() {
            return Err(HyError::Internal(format!(
                "update: {} row ids but {} replacement rows",
                row_ids.len(),
                new_rows.len()
            )));
        }
        let n = self.delete_rows(row_ids)?;
        self.insert_rows(&new_rows)?;
        Ok(n.max(new_rows.len()))
    }

    /// Materialize row `id` (including deleted rows; caller filters).
    pub fn row(&self, id: usize) -> Result<Row> {
        let mut offset = 0;
        for seg in &self.segments {
            if id < offset + seg.len() {
                return match seg {
                    SegmentHandle::Resident(chunk) => Ok(chunk.row(id - offset)),
                    SegmentHandle::Disk(d) => Ok(d.read_rows(id - offset, 1, None)?.row(0)),
                };
            }
            offset += seg.len();
        }
        Err(HyError::Storage(format!(
            "row id {id} out of range for table '{}'",
            self.name
        )))
    }

    /// A stable snapshot of the *working* state (what the writing session
    /// itself reads: includes its own uncommitted changes).
    pub fn snapshot(&self) -> TableSnapshot {
        TableSnapshot::new(
            Arc::clone(&self.schema),
            self.segments.clone(),
            self.total_len,
            self.deleted.clone(),
        )
    }

    /// A stable snapshot of the *committed* state (what other sessions
    /// read while a transaction is open here).
    pub fn committed_snapshot(&self) -> TableSnapshot {
        // Only segments overlapping [0, committed_len) are needed.
        let mut segs = Vec::new();
        let mut covered = 0;
        for seg in &self.segments {
            if covered >= self.committed_len {
                break;
            }
            segs.push(seg.clone());
            covered += seg.len();
        }
        TableSnapshot::new(
            Arc::clone(&self.schema),
            segs,
            self.committed_len,
            self.committed_deleted.clone(),
        )
    }

    /// Promote the working state to committed.
    pub fn commit(&mut self) {
        self.committed_len = self.total_len;
        self.committed_deleted = self.deleted.clone();
        self.version += 1;
    }

    /// Discard uncommitted changes: drop appended rows, restore deletes.
    pub fn rollback(&mut self) {
        // Drop segments past the committed watermark.
        let mut covered = 0;
        let mut keep = 0;
        for seg in &self.segments {
            if covered >= self.committed_len {
                break;
            }
            covered += seg.len();
            keep += 1;
        }
        debug_assert!(
            covered == self.committed_len,
            "committed watermark must align with segment boundaries \
             (commits seal the insert chunk)"
        );
        self.segments.truncate(keep);
        self.total_len = self.committed_len;
        self.deleted = self.committed_deleted.clone();
        self.version += 1;
    }

    /// Rewrite the table without deleted rows and with full segments.
    /// Invalidates global row ids (snapshots taken before remain valid —
    /// they hold their own handles). Disk-backed segments are pulled back
    /// into memory; the next checkpoint re-seals them.
    pub fn compact(&mut self) -> Result<()> {
        let snap = self.snapshot();
        let types = self.schema.types();
        let fresh = snap.live_chunks()?;
        let all = Chunk::concat(&types, &fresh)?;
        self.segments.clear();
        self.total_len = 0;
        self.deleted = Bitmap::new();
        self.insert_chunk(all)?;
        self.commit();
        Ok(())
    }

    /// Fraction of committed rows carrying a committed delete mark
    /// (0.0 on an empty table) — the checkpoint-time compaction trigger.
    pub fn dead_fraction(&self) -> f64 {
        if self.committed_len == 0 {
            return 0.0;
        }
        let dead = self
            .committed_deleted
            .iter_ones()
            .take_while(|&i| i < self.committed_len)
            .count();
        dead as f64 / self.committed_len as f64
    }

    /// Whether the working and committed states agree exactly — no
    /// in-flight transaction has staged rows or deletes here. Only a
    /// quiescent table may be compacted: compaction renumbers global row
    /// ids, and an open transaction addresses rows by the old ids.
    pub fn is_quiescent(&self) -> bool {
        self.total_len == self.committed_len && self.deleted == self.committed_deleted
    }

    /// Install a compacted layout: `segments` hold exactly the previous
    /// committed live rows, renumbered densely with no delete marks. The
    /// caller must hold the write lock from verifying quiescence through
    /// this call. Infallible by design — the checkpoint publishes the
    /// compacted manifest first and must then be able to make memory
    /// agree. Open snapshots keep reading their own (old) handles.
    pub fn install_compacted(&mut self, segments: Vec<SegmentHandle>) {
        debug_assert!(self.is_quiescent(), "compacting a non-quiescent table");
        let total: usize = segments.iter().map(SegmentHandle::len).sum();
        self.segments = segments;
        self.total_len = total;
        self.deleted = Bitmap::filled(total, false);
        self.committed_len = total;
        self.committed_deleted = self.deleted.clone();
        self.version += 1;
    }

    /// Build a table directly from recovered parts (checkpoint-manifest
    /// install). The handles become the committed state; their total row
    /// count must equal `row_limit`.
    pub fn from_parts(
        name: impl Into<String>,
        schema: Schema,
        segments: Vec<SegmentHandle>,
        row_limit: usize,
        deleted_ids: &[u64],
    ) -> Result<Table> {
        let name = name.into();
        let total: usize = segments.iter().map(SegmentHandle::len).sum();
        if total != row_limit {
            return Err(HyError::Storage(format!(
                "table '{name}': segments hold {total} rows but the manifest declares {row_limit}"
            )));
        }
        let mut deleted = Bitmap::filled(total, false);
        for &id in deleted_ids {
            let id = usize::try_from(id)
                .ok()
                .filter(|&i| i < total)
                .ok_or_else(|| {
                    HyError::Storage(format!(
                        "table '{name}': deleted row id {id} out of range ({total} rows)"
                    ))
                })?;
            deleted.set(id, true);
        }
        Ok(Table {
            name,
            schema: Arc::new(schema),
            segments,
            total_len: total,
            deleted: deleted.clone(),
            committed_len: total,
            committed_deleted: deleted,
            version: 1,
        })
    }

    /// Replace the committed prefix of the segment list with `sealed`
    /// (typically disk-backed handles a checkpoint just wrote). The new
    /// handles must cover exactly `committed_len` rows; uncommitted tail
    /// segments are preserved. Data is unchanged — only its backing moves
    /// — so `version` is not bumped and open snapshots stay valid.
    pub fn swap_sealed_prefix(&mut self, sealed: Vec<SegmentHandle>) -> Result<()> {
        let sealed_rows: usize = sealed.iter().map(SegmentHandle::len).sum();
        if sealed_rows != self.committed_len {
            return Err(HyError::Internal(format!(
                "sealed segments cover {sealed_rows} rows but table '{}' has {} committed",
                self.name, self.committed_len
            )));
        }
        let mut covered = 0;
        let mut keep_from = 0;
        for seg in &self.segments {
            if covered >= self.committed_len {
                break;
            }
            covered += seg.len();
            keep_from += 1;
        }
        debug_assert_eq!(covered, self.committed_len);
        let tail = self.segments.split_off(keep_from);
        self.segments = sealed;
        self.segments.extend(tail);
        Ok(())
    }

    /// (total segments, disk-backed segments, on-disk bytes, uncompressed
    /// bytes of the disk-backed segments) — the `hylite.storage` view.
    pub fn segment_storage(&self) -> (usize, usize, u64, u64) {
        let mut disk = 0usize;
        let mut disk_bytes = 0u64;
        let mut raw_bytes = 0u64;
        for seg in &self.segments {
            if let SegmentHandle::Disk(d) = seg {
                disk += 1;
                disk_bytes += d.meta().file_len;
                raw_bytes += d.meta().raw_bytes;
            }
        }
        (self.segments.len(), disk, disk_bytes, raw_bytes)
    }

    /// Approximate heap footprint of live data in bytes (statistics for
    /// the optimizer and the memory-ablation experiment). Disk-backed
    /// segments count nothing here — that is the larger-than-RAM point;
    /// their cached blocks are charged to the buffer pool instead.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = 0;
        for seg in &self.segments {
            let SegmentHandle::Resident(seg) = seg else {
                continue;
            };
            for col in seg.columns() {
                bytes += match &**col {
                    hylite_common::ColumnVector::Int64 { data, .. } => data.len() * 8,
                    hylite_common::ColumnVector::Float64 { data, .. } => data.len() * 8,
                    hylite_common::ColumnVector::Bool { data, .. } => data.len(),
                    hylite_common::ColumnVector::Varchar { data, .. } => {
                        data.iter().map(|s| s.len() + 24).sum()
                    }
                };
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
        ])
    }

    fn row(id: i64, v: f64) -> Vec<Value> {
        vec![Value::Int(id), Value::Float(v)]
    }

    #[test]
    fn insert_and_scan() {
        let mut t = Table::new("t", schema());
        t.insert_rows(&[row(1, 1.0), row(2, 2.0)]).unwrap();
        t.commit();
        assert_eq!(t.live_rows(), 2);
        let snap = t.snapshot();
        assert_eq!(snap.live_rows(), 2);
        let chunks: Vec<_> = snap.live_chunks().unwrap();
        let total: usize = chunks.iter().map(Chunk::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn arity_and_type_checks() {
        let mut t = Table::new("t", schema());
        assert!(t.insert_rows(&[vec![Value::Int(1)]]).is_err());
        let bad = Chunk::new(vec![
            hylite_common::ColumnVector::from_f64(vec![1.0]),
            hylite_common::ColumnVector::from_f64(vec![1.0]),
        ]);
        assert!(t.insert_chunk(bad).is_err());
    }

    #[test]
    fn large_insert_splits_segments() {
        let mut t = Table::new("t", schema());
        let n = SEGMENT_ROWS + 10;
        let ids: Vec<i64> = (0..n as i64).collect();
        let vs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let chunk = Chunk::new(vec![
            hylite_common::ColumnVector::from_i64(ids),
            hylite_common::ColumnVector::from_f64(vs),
        ]);
        t.insert_chunk(chunk).unwrap();
        t.commit();
        assert_eq!(t.total_rows(), n);
        let snap = t.snapshot();
        assert!(snap.segment_count() >= 2);
        assert_eq!(snap.live_rows(), n);
    }

    #[test]
    fn delete_marks_rows() {
        let mut t = Table::new("t", schema());
        t.insert_rows(&[row(1, 1.0), row(2, 2.0), row(3, 3.0)])
            .unwrap();
        t.commit();
        assert_eq!(t.delete_rows(&[1]).unwrap(), 1);
        assert_eq!(t.delete_rows(&[1]).unwrap(), 0, "idempotent");
        assert_eq!(t.live_rows(), 2);
        let snap = t.snapshot();
        let all: Vec<Row> = snap
            .live_chunks()
            .unwrap()
            .iter()
            .flat_map(|c| c.rows())
            .collect();
        let ids: Vec<i64> = all.iter().map(|r| r.int(0).unwrap()).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn update_is_delete_plus_insert() {
        let mut t = Table::new("t", schema());
        t.insert_rows(&[row(1, 1.0), row(2, 2.0)]).unwrap();
        t.commit();
        t.update_rows(&[0], vec![row(1, 10.0)]).unwrap();
        t.commit();
        let snap = t.snapshot();
        let mut vs: Vec<f64> = snap
            .live_chunks()
            .unwrap()
            .iter()
            .flat_map(|c| c.rows())
            .map(|r| r.float(1).unwrap())
            .collect();
        vs.sort_by(f64::total_cmp);
        assert_eq!(vs, vec![2.0, 10.0]);
    }

    #[test]
    fn rollback_restores_committed_state() {
        let mut t = Table::new("t", schema());
        t.insert_rows(&[row(1, 1.0), row(2, 2.0)]).unwrap();
        t.commit();
        t.insert_rows(&[row(3, 3.0)]).unwrap();
        t.delete_rows(&[0]).unwrap();
        assert_eq!(t.live_rows(), 2);
        t.rollback();
        assert_eq!(t.live_rows(), 2);
        assert_eq!(t.total_rows(), 2);
        let ids: Vec<i64> = t
            .snapshot()
            .live_chunks()
            .unwrap()
            .iter()
            .flat_map(|c| c.rows())
            .map(|r| r.int(0).unwrap())
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn committed_snapshot_hides_uncommitted() {
        let mut t = Table::new("t", schema());
        t.insert_rows(&[row(1, 1.0)]).unwrap();
        t.commit();
        t.insert_rows(&[row(2, 2.0)]).unwrap();
        t.delete_rows(&[0]).unwrap();
        // Another session sees only the committed row, not the delete.
        let other = t.committed_snapshot();
        assert_eq!(other.live_rows(), 1);
        // The writing session sees its own changes.
        let own = t.snapshot();
        assert_eq!(own.live_rows(), 1);
        let id = own
            .live_chunks()
            .unwrap()
            .iter()
            .flat_map(|c| c.rows())
            .map(|r| r.int(0).unwrap())
            .next()
            .unwrap();
        assert_eq!(id, 2);
    }

    #[test]
    fn snapshot_is_stable_under_writes() {
        let mut t = Table::new("t", schema());
        t.insert_rows(&[row(1, 1.0), row(2, 2.0)]).unwrap();
        t.commit();
        let snap = t.snapshot();
        t.insert_rows(&[row(3, 3.0)]).unwrap();
        t.delete_rows(&[0]).unwrap();
        t.commit();
        assert_eq!(snap.live_rows(), 2, "snapshot unaffected by later writes");
    }

    #[test]
    fn compact_reclaims_deleted() {
        let mut t = Table::new("t", schema());
        t.insert_rows(&[row(1, 1.0), row(2, 2.0), row(3, 3.0)])
            .unwrap();
        t.commit();
        t.delete_rows(&[0, 2]).unwrap();
        t.commit();
        t.compact().unwrap();
        assert_eq!(t.total_rows(), 1);
        assert_eq!(t.live_rows(), 1);
        let ids: Vec<i64> = t
            .snapshot()
            .live_chunks()
            .unwrap()
            .iter()
            .flat_map(|c| c.rows())
            .map(|r| r.int(0).unwrap())
            .collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn row_lookup_across_segments() {
        let mut t = Table::new("t", schema());
        t.insert_rows(&[row(1, 1.0)]).unwrap();
        t.insert_rows(&[row(2, 2.0)]).unwrap();
        assert_eq!(t.row(1).unwrap().int(0).unwrap(), 2);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn approx_bytes_grows() {
        let mut t = Table::new("t", schema());
        let before = t.approx_bytes();
        t.insert_rows(&[row(1, 1.0), row(2, 2.0)]).unwrap();
        assert!(t.approx_bytes() > before);
    }
}
