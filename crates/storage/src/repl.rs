//! Replication identity: the persisted role + epoch of a data directory.
//!
//! Replication needs a cheap way to answer "is this replica's history a
//! prefix of this primary's history?". CRCs catch torn frames and the
//! LSN-gap check catches holes, but neither catches the *fork* case: a
//! primary crashes losing its buffered WAL tail, restarts, and re-issues
//! the same LSNs for different commits. A replica that had applied the
//! lost tail would then resume mid-fork and silently diverge.
//!
//! The guard is an **epoch**: a random nonzero token minted every time a
//! data directory is opened as a primary. The epoch identifies one
//! *incarnation* of a primary's history. A replica remembers the epoch it
//! bootstrapped from and presents it when it reconnects; any mismatch —
//! including the conservative false positives from a clean primary
//! restart — forces a re-bootstrap from a fresh checkpoint instead of a
//! resume. Epochs are compared for equality only, never ordered.
//!
//! Role is persisted alongside the epoch as a fence against accidental
//! split-brain: a directory last opened as a replica refuses to open as a
//! primary unless promotion is requested explicitly.
//!
//! On-disk layout of `replstate.hylite`:
//!
//! ```text
//! [u32 magic "HYRP"] [u32 version] [u8 role] [u64 epoch] [u32 crc32]
//! ```
//!
//! written with the same tmp + fsync + atomic-rename discipline as the
//! checkpoint, so a crash mid-write leaves the previous state intact.

use std::path::Path;
use std::time::SystemTime;

use hylite_common::faultfs::Vfs;
use hylite_common::wire::{self, ByteReader};
use hylite_common::{crc32, HyError, Result};

/// Magic number opening the replication state file (`"HYRP"`).
pub const REPL_STATE_MAGIC: u32 = 0x4859_5250;
/// Replication state format version.
pub const REPL_STATE_VERSION: u32 = 1;
/// File name of the replication state inside the data directory.
pub const REPL_STATE_FILE: &str = "replstate.hylite";
/// Scratch name the state is written to before the atomic rename.
pub const REPL_STATE_TMP_FILE: &str = "replstate.tmp";

/// Whether a data directory serves writes or follows a primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRole {
    /// Accepts writes and streams its WAL to replicas.
    Primary,
    /// Read-only; applies a primary's WAL stream.
    Replica,
}

impl ReplRole {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            ReplRole::Primary => 1,
            ReplRole::Replica => 2,
        }
    }

    fn from_u8(v: u8) -> Result<ReplRole> {
        match v {
            1 => Ok(ReplRole::Primary),
            2 => Ok(ReplRole::Replica),
            other => Err(HyError::Storage(format!(
                "replication state has unknown role tag {other}"
            ))),
        }
    }
}

/// The persisted replication identity of a data directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplState {
    /// Last role the directory was opened under.
    pub role: ReplRole,
    /// The primary-incarnation epoch this directory's history belongs
    /// to. `0` on a replica means "never bootstrapped" and always forces
    /// a snapshot.
    pub epoch: u64,
}

/// Mint a fresh nonzero epoch, mixing wall-clock entropy with the
/// previous epoch so even two opens in the same clock tick differ.
pub fn next_epoch(prev: u64) -> u64 {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut e = splitmix64(nanos ^ prev.rotate_left(32));
    if e == 0 {
        e = 1; // 0 is reserved for "never bootstrapped"
    }
    e
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Load the replication state of a data directory, `None` if the
/// directory predates replication (or is fresh). A present-but-corrupt
/// state file is a hard error: guessing a role or epoch could serve
/// forked data.
pub fn load_repl_state(vfs: &dyn Vfs, dir: &Path) -> Result<Option<ReplState>> {
    let path = dir.join(REPL_STATE_FILE);
    if !vfs.exists(&path) {
        return Ok(None);
    }
    let bytes = vfs.read(&path)?;
    let mut r = ByteReader::new(&bytes);
    let (magic, version) = (r.u32()?, r.u32()?);
    if magic != REPL_STATE_MAGIC {
        return Err(HyError::Storage(format!(
            "{} is not a HyLite replication state file (magic {magic:#010x})",
            path.display()
        )));
    }
    if version != REPL_STATE_VERSION {
        return Err(HyError::Storage(format!(
            "replication state version {version} not supported (this build reads {REPL_STATE_VERSION})"
        )));
    }
    let role = r.u8()?;
    let epoch = r.u64()?;
    let crc = r.u32()?;
    if !r.is_empty() {
        return Err(HyError::Storage(
            "replication state file has trailing bytes".into(),
        ));
    }
    if crc32(&bytes[8..17]) != crc {
        return Err(HyError::Storage(
            "replication state file failed its CRC check".into(),
        ));
    }
    Ok(Some(ReplState {
        role: ReplRole::from_u8(role)?,
        epoch,
    }))
}

/// Durably persist the replication state: tmp file, fsync, directory
/// sync, atomic rename.
pub fn store_repl_state(vfs: &dyn Vfs, dir: &Path, state: ReplState) -> Result<()> {
    let mut buf = Vec::with_capacity(21);
    wire::put_u32(&mut buf, REPL_STATE_MAGIC);
    wire::put_u32(&mut buf, REPL_STATE_VERSION);
    buf.push(state.role.as_u8());
    wire::put_u64(&mut buf, state.epoch);
    let crc = crc32(&buf[8..17]);
    wire::put_u32(&mut buf, crc);

    let tmp = dir.join(REPL_STATE_TMP_FILE);
    let path = dir.join(REPL_STATE_FILE);
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all(&buf)?;
        f.sync()?;
    }
    vfs.sync_dir(dir)?;
    vfs.rename(&tmp, &path)?;
    vfs.sync_dir(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::FaultVfs;
    use std::path::PathBuf;

    #[test]
    fn state_roundtrips() {
        let fault = FaultVfs::new();
        let dir = PathBuf::from("data");
        fault.create_dir_all(&dir).unwrap();
        assert_eq!(load_repl_state(&fault, &dir).unwrap(), None);
        let state = ReplState {
            role: ReplRole::Replica,
            epoch: 0xABCD_EF01_2345_6789,
        };
        store_repl_state(&fault, &dir, state).unwrap();
        assert_eq!(load_repl_state(&fault, &dir).unwrap(), Some(state));
        // Overwrite with a new role/epoch.
        let promoted = ReplState {
            role: ReplRole::Primary,
            epoch: 7,
        };
        store_repl_state(&fault, &dir, promoted).unwrap();
        assert_eq!(load_repl_state(&fault, &dir).unwrap(), Some(promoted));
    }

    #[test]
    fn corrupt_state_is_fatal() {
        let fault = FaultVfs::new();
        let dir = PathBuf::from("data");
        fault.create_dir_all(&dir).unwrap();
        store_repl_state(
            &fault,
            &dir,
            ReplState {
                role: ReplRole::Primary,
                epoch: 42,
            },
        )
        .unwrap();
        fault.corrupt(&dir.join(REPL_STATE_FILE), 12, 0x10).unwrap();
        assert!(load_repl_state(&fault, &dir).is_err());
    }

    #[test]
    fn epochs_are_nonzero_and_vary() {
        let a = next_epoch(0);
        let b = next_epoch(a);
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b, "mixing in the previous epoch breaks clock ties");
    }
}
