//! Checkpoints: a columnar snapshot of every table + the catalog, written
//! atomically so the WAL can be truncated.
//!
//! ## On-disk layout
//!
//! ```text
//! [u32 magic "HYCK"] [u32 version] [u64 base_lsn]
//! [u32 ntables]
//! per table:
//!     [str name] [schema]
//!     [u32 nsegments] [chunk ...]        -- physical segments, in order
//!     [u64 row_limit]                    -- committed row horizon
//!     [u64 ndeleted] [u64 row_id ...]    -- committed delete marks
//! [u32 crc32(everything above)]
//! ```
//!
//! Segments are serialized exactly as they sit in memory — *including*
//! delete-marked rows — because global row ids are positional: dropping
//! dead rows here would renumber the survivors and break any later WAL
//! `Delete` frame that refers to them. Space reclamation stays where it
//! already lives (`Table::compact`, which is itself a logged event in the
//! sense that it only runs on quiescent tables).
//!
//! ## Publish protocol
//!
//! The checkpointer writes `checkpoint.tmp`, fsyncs it, atomically
//! renames it over `checkpoint.hylite`, and only then truncates the WAL.
//! Every step is crash-safe:
//!
//! * crash before the rename — the old checkpoint + full WAL still
//!   recover everything; the leftover tmp file is deleted on open.
//! * crash after the rename, before the WAL truncate — the new
//!   checkpoint carries `base_lsn`, and recovery skips WAL frames below
//!   it, so nothing is replayed twice.
//!
//! The checkpoint carries `base_lsn` = the LSN the *next* commit would
//! get; every commit with `lsn < base_lsn` is inside the snapshot.

use std::path::Path;

use hylite_common::faultfs::Vfs;
use hylite_common::wire::{self, ByteReader};
use hylite_common::{crc32, Chunk, HyError, Result, Schema};

use crate::catalog::Catalog;

/// Magic number opening a checkpoint file (`"HYCK"`).
pub const CHECKPOINT_MAGIC: u32 = 0x4859_434B;
/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// File name of the current checkpoint inside the data directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.hylite";
/// Scratch name the checkpoint is written to before the atomic rename.
pub const CHECKPOINT_TMP_FILE: &str = "checkpoint.tmp";

/// Crash point: before the checkpoint temp file is written.
pub const CP_CKPT_WRITE: &str = "checkpoint.write";
/// Crash point: temp file durable, rename not yet done.
pub const CP_CKPT_RENAME: &str = "checkpoint.rename";
/// Crash point: checkpoint published, WAL not yet truncated.
pub const CP_CKPT_AFTER_RENAME: &str = "checkpoint.after_rename";

/// Decoded checkpoint, ready to install into a fresh catalog.
#[derive(Debug)]
pub struct CheckpointImage {
    /// WAL frames with `lsn < base_lsn` are contained in this image.
    pub base_lsn: u64,
    /// Per-table physical state.
    pub tables: Vec<TableImage>,
}

/// One table inside a [`CheckpointImage`].
#[derive(Debug)]
pub struct TableImage {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub schema: Schema,
    /// Physical segments in row-id order (deleted rows included).
    pub segments: Vec<Chunk>,
    /// Committed row horizon; must equal the summed segment lengths.
    pub row_limit: u64,
    /// Global row ids carrying a committed delete mark.
    pub deleted: Vec<u64>,
}

/// Serialize the committed state of every table. `base_lsn` is the LSN
/// the next commit will receive; the caller must hold the commit lock so
/// no commit lands between choosing `base_lsn` and reading the
/// snapshots.
pub fn encode_checkpoint(catalog: &Catalog, base_lsn: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4096);
    wire::put_u32(&mut buf, CHECKPOINT_MAGIC);
    wire::put_u32(&mut buf, CHECKPOINT_VERSION);
    wire::put_u64(&mut buf, base_lsn);
    let names = catalog.table_names();
    let snapshots: Vec<_> = names
        .iter()
        .filter_map(|n| {
            let t = catalog.get_table(n).ok()?;
            let snap = t.read().committed_snapshot();
            Some((n.clone(), snap))
        })
        .collect();
    wire::put_u32(&mut buf, snapshots.len() as u32);
    for (name, snap) in &snapshots {
        wire::put_str(&mut buf, name);
        wire::put_schema(&mut buf, snap.schema());
        wire::put_u32(&mut buf, snap.segment_count() as u32);
        for seg in snap.segments() {
            wire::put_chunk(&mut buf, seg);
        }
        let row_limit = snap.visible_rows() as u64;
        wire::put_u64(&mut buf, row_limit);
        let deleted: Vec<u64> = snap
            .deleted()
            .iter_ones()
            .take_while(|&i| (i as u64) < row_limit)
            .map(|i| i as u64)
            .collect();
        wire::put_u64(&mut buf, deleted.len() as u64);
        for id in deleted {
            wire::put_u64(&mut buf, id);
        }
    }
    let crc = crc32(&buf);
    wire::put_u32(&mut buf, crc);
    buf
}

/// Parse and verify a checkpoint file's bytes. Any inconsistency — bad
/// magic, bad CRC, truncation — is a hard error: unlike a torn WAL tail,
/// a damaged checkpoint means real data loss and must not be papered
/// over.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointImage> {
    if bytes.len() < 20 {
        return Err(HyError::Storage(format!(
            "checkpoint file is {} bytes — too short to be valid",
            bytes.len()
        )));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err(HyError::Storage(
            "checkpoint file failed its CRC check (corrupted)".into(),
        ));
    }
    let mut r = ByteReader::new(body);
    let magic = r.u32()?;
    if magic != CHECKPOINT_MAGIC {
        return Err(HyError::Storage(format!(
            "not a HyLite checkpoint (magic {magic:#010x})"
        )));
    }
    let version = r.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(HyError::Storage(format!(
            "checkpoint version {version} not supported (this build reads {CHECKPOINT_VERSION})"
        )));
    }
    let base_lsn = r.u64()?;
    let ntables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1024));
    for _ in 0..ntables {
        let name = r.str()?;
        let schema = r.schema()?;
        let nsegs = r.u32()? as usize;
        let mut segments = Vec::with_capacity(nsegs.min(1024));
        for _ in 0..nsegs {
            segments.push(r.chunk()?);
        }
        let row_limit = r.u64()?;
        let ndel = r.u64()? as usize;
        let mut deleted = Vec::with_capacity(ndel.min(r.remaining() / 8));
        for _ in 0..ndel {
            deleted.push(r.u64()?);
        }
        tables.push(TableImage {
            name,
            schema,
            segments,
            row_limit,
            deleted,
        });
    }
    if !r.is_empty() {
        return Err(HyError::Storage(
            "checkpoint file has trailing bytes".into(),
        ));
    }
    Ok(CheckpointImage { base_lsn, tables })
}

/// Rebuild tables from an image into `catalog` (expected empty). Returns
/// the number of rows restored (deleted rows included).
pub fn install_image(image: CheckpointImage, catalog: &Catalog) -> Result<u64> {
    let mut rows = 0u64;
    for t in image.tables {
        let table = catalog.create_table(&t.name, t.schema)?;
        let mut guard = table.write();
        let mut restored = 0u64;
        for seg in t.segments {
            restored += guard.insert_chunk(seg)? as u64;
        }
        if restored != t.row_limit {
            return Err(HyError::Storage(format!(
                "checkpoint table '{}' declares {} rows but carries {restored}",
                guard.name(),
                t.row_limit
            )));
        }
        let ids: Vec<usize> = t.deleted.iter().map(|&i| i as usize).collect();
        guard.delete_rows(&ids)?;
        guard.commit();
        rows += restored;
    }
    Ok(rows)
}

/// Write checkpoint bytes durably: temp file, fsync, atomic rename. The
/// WAL truncation that completes the checkpoint is the caller's job (it
/// owns the WAL writer).
pub fn publish_checkpoint(vfs: &dyn Vfs, dir: &Path, data: &[u8]) -> Result<()> {
    let tmp = dir.join(CHECKPOINT_TMP_FILE);
    let dest = dir.join(CHECKPOINT_FILE);
    vfs.crash_point(CP_CKPT_WRITE)?;
    let mut f = vfs.create(&tmp)?;
    f.write_all(data)?;
    f.sync()?;
    drop(f);
    // Make the tmp file's directory entry durable before the rename:
    // some filesystems otherwise recover the rename with an empty or
    // missing source file even though its data was fsynced.
    vfs.sync_dir(dir)?;
    vfs.crash_point(CP_CKPT_RENAME)?;
    vfs.rename(&tmp, &dest)?;
    vfs.crash_point(CP_CKPT_AFTER_RENAME)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{DataType, FaultVfs, Field, Value};

    fn catalog_with_data() -> Catalog {
        let cat = Catalog::new();
        let t = cat
            .create_table(
                "t",
                Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("name", DataType::Varchar),
                ]),
            )
            .unwrap();
        let mut g = t.write();
        g.insert_rows(&[
            vec![Value::Int(1), Value::from("a")],
            vec![Value::Int(2), Value::from("b")],
            vec![Value::Int(3), Value::from("c")],
        ])
        .unwrap();
        g.delete_rows(&[1]).unwrap();
        g.commit();
        drop(g);
        cat.create_table("empty", Schema::new(vec![Field::new("x", DataType::Bool)]))
            .unwrap();
        cat
    }

    #[test]
    fn encode_install_roundtrip() {
        let cat = catalog_with_data();
        let bytes = encode_checkpoint(&cat, 42);
        let image = decode_checkpoint(&bytes).unwrap();
        assert_eq!(image.base_lsn, 42);
        let restored = Catalog::new();
        let rows = install_image(image, &restored).unwrap();
        assert_eq!(rows, 3, "physical rows include the deleted one");
        assert_eq!(restored.table_names(), vec!["empty", "t"]);
        let t = restored.get_table("t").unwrap();
        let g = t.read();
        assert_eq!(g.total_rows(), 3);
        assert_eq!(g.committed_live_rows(), 2, "delete mark restored");
        // Row ids are positional and must be stable: row 2 is still id=3.
        assert_eq!(g.row(2).unwrap().int(0).unwrap(), 3);
    }

    #[test]
    fn uncommitted_rows_stay_out() {
        let cat = catalog_with_data();
        let t = cat.get_table("t").unwrap();
        t.write()
            .insert_rows(&[vec![Value::Int(99), Value::from("x")]])
            .unwrap(); // no commit
        let bytes = encode_checkpoint(&cat, 1);
        let image = decode_checkpoint(&bytes).unwrap();
        assert_eq!(image.tables.iter().map(|t| t.row_limit).sum::<u64>(), 3);
    }

    #[test]
    fn corruption_is_a_hard_error() {
        let cat = catalog_with_data();
        let mut bytes = encode_checkpoint(&cat, 1);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(decode_checkpoint(&bytes).is_err());
        assert!(decode_checkpoint(&[1, 2, 3]).is_err());
        assert!(decode_checkpoint(&[]).is_err());
    }

    #[test]
    fn publish_renames_atomically() {
        let vfs = FaultVfs::new();
        let dir = Path::new("data");
        publish_checkpoint(&vfs, dir, b"snapshot-v1").unwrap();
        assert!(!vfs.exists(&dir.join(CHECKPOINT_TMP_FILE)));
        assert_eq!(
            vfs.read(&dir.join(CHECKPOINT_FILE)).unwrap(),
            b"snapshot-v1"
        );
        // Overwrite with a second checkpoint.
        publish_checkpoint(&vfs, dir, b"snapshot-v2").unwrap();
        assert_eq!(
            vfs.read(&dir.join(CHECKPOINT_FILE)).unwrap(),
            b"snapshot-v2"
        );
    }
}
