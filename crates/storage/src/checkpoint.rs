//! Checkpoints: a small *manifest* naming the sealed segment files that
//! hold every table's committed state, published atomically so the WAL
//! can be truncated.
//!
//! ## Manifest layout (v2)
//!
//! ```text
//! [u32 magic "HYCK"] [u32 version] [u64 base_lsn]
//! [u32 ntables]
//! per table:
//!     [str name] [schema]
//!     [u32 nsegments] [(u64 segment_id, u64 rows) ...]   -- in row-id order
//!     [u64 row_limit]                    -- committed row horizon
//!     [u64 ndeleted] [u64 row_id ...]    -- committed delete marks
//! [u32 crc32(everything above)]
//! ```
//!
//! Row data lives in the segment files the manifest points at (see
//! [`crate::segment`]); the manifest itself is a few hundred bytes. That
//! makes checkpoints *incremental*: a checkpoint seals only rows that are
//! not yet in a sealed segment — segments already on disk are simply
//! re-listed by id — so a small delta costs a small write regardless of
//! database size. (v1 serialized every committed row into one monolithic
//! file on every checkpoint; this build is pre-1.0 and reads only v2.)
//!
//! Segments are sealed exactly as the rows sit in memory — *including*
//! delete-marked rows — because global row ids are positional: dropping
//! dead rows here would renumber the survivors and break any later WAL
//! `Delete` frame that refers to them. Space reclamation stays where it
//! already lives (`Table::compact`).
//!
//! ## Publish protocol
//!
//! The checkpointer writes all new segment files and fsyncs them and the
//! segment directory, then writes `checkpoint.tmp`, fsyncs it, atomically
//! renames it over `checkpoint.hylite`, and only then truncates the WAL.
//! Every step is crash-safe:
//!
//! * crash while writing segments — the old manifest never references
//!   the new files; recovery deletes them as orphans.
//! * crash before the rename — the old manifest + full WAL still recover
//!   everything; the leftover tmp file is deleted on open.
//! * crash after the rename, before the WAL truncate — the new manifest
//!   carries `base_lsn`, and recovery skips WAL frames below it, so
//!   nothing is replayed twice.
//!
//! The manifest carries `base_lsn` = the LSN the *next* commit would
//! get; every commit with `lsn < base_lsn` is inside the checkpoint.

use std::path::Path;

use hylite_common::faultfs::Vfs;
use hylite_common::wire::{self, ByteReader};
use hylite_common::{crc32, HyError, Result, Schema};
use parking_lot::RwLock;

use crate::catalog::Catalog;
use crate::segment::SegmentStore;
use crate::snapshot::SegmentHandle;
use crate::table::Table;

/// Magic number opening a checkpoint manifest (`"HYCK"`).
pub const CHECKPOINT_MAGIC: u32 = 0x4859_434B;
/// Checkpoint format version (v2 = segment manifest).
pub const CHECKPOINT_VERSION: u32 = 2;
/// File name of the current checkpoint inside the data directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.hylite";
/// Scratch name the checkpoint is written to before the atomic rename.
pub const CHECKPOINT_TMP_FILE: &str = "checkpoint.tmp";

/// Crash point: before the checkpoint temp file is written.
pub const CP_CKPT_WRITE: &str = "checkpoint.write";
/// Crash point: temp file durable, rename not yet done.
pub const CP_CKPT_RENAME: &str = "checkpoint.rename";
/// Crash point: checkpoint published, WAL not yet truncated.
pub const CP_CKPT_AFTER_RENAME: &str = "checkpoint.after_rename";
/// Crash point: before each new segment file is written (some of the
/// checkpoint's segments may exist on disk, the manifest does not).
pub const CP_SEG_WRITE: &str = "checkpoint.segment_write";

/// Decoded checkpoint manifest, ready to install into a fresh catalog.
#[derive(Debug)]
pub struct CheckpointImage {
    /// WAL frames with `lsn < base_lsn` are contained in this image.
    pub base_lsn: u64,
    /// Per-table manifests.
    pub tables: Vec<TableManifest>,
}

/// One table inside a [`CheckpointImage`].
#[derive(Debug)]
pub struct TableManifest {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub schema: Schema,
    /// `(segment id, rows)` in row-id order (deleted rows included).
    pub segments: Vec<(u64, u64)>,
    /// Committed row horizon; must equal the summed segment rows.
    pub row_limit: u64,
    /// Global row ids carrying a committed delete mark.
    pub deleted: Vec<u64>,
}

impl CheckpointImage {
    /// Every segment id any table references.
    pub fn referenced_segments(&self) -> std::collections::HashSet<u64> {
        self.tables
            .iter()
            .flat_map(|t| t.segments.iter().map(|&(id, _)| id))
            .collect()
    }
}

/// Serialize a manifest. `base_lsn` is the LSN the next commit will
/// receive; the caller must hold the commit lock so no commit lands
/// between choosing `base_lsn` and sealing the snapshots.
pub fn encode_manifest(base_lsn: u64, tables: &[TableManifest]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(512);
    wire::put_u32(&mut buf, CHECKPOINT_MAGIC);
    wire::put_u32(&mut buf, CHECKPOINT_VERSION);
    wire::put_u64(&mut buf, base_lsn);
    wire::put_u32(&mut buf, tables.len() as u32);
    for t in tables {
        wire::put_str(&mut buf, &t.name);
        wire::put_schema(&mut buf, &t.schema);
        wire::put_u32(&mut buf, t.segments.len() as u32);
        for &(id, rows) in &t.segments {
            wire::put_u64(&mut buf, id);
            wire::put_u64(&mut buf, rows);
        }
        wire::put_u64(&mut buf, t.row_limit);
        wire::put_u64(&mut buf, t.deleted.len() as u64);
        for &id in &t.deleted {
            wire::put_u64(&mut buf, id);
        }
    }
    let crc = crc32(&buf);
    wire::put_u32(&mut buf, crc);
    buf
}

/// Parse and verify a manifest's bytes. Any inconsistency — bad magic,
/// bad CRC, truncation — is a hard error: unlike a torn WAL tail, a
/// damaged checkpoint means real data loss and must not be papered over.
pub fn decode_manifest(bytes: &[u8]) -> Result<CheckpointImage> {
    if bytes.len() < 24 {
        return Err(HyError::Storage(format!(
            "checkpoint manifest is {} bytes — too short to be valid",
            bytes.len()
        )));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err(HyError::Storage(
            "checkpoint manifest failed its CRC check (corrupted)".into(),
        ));
    }
    let mut r = ByteReader::new(body);
    let magic = r.u32()?;
    if magic != CHECKPOINT_MAGIC {
        return Err(HyError::Storage(format!(
            "not a HyLite checkpoint (magic {magic:#010x})"
        )));
    }
    let version = r.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(HyError::Storage(format!(
            "checkpoint version {version} not supported (this build reads {CHECKPOINT_VERSION})"
        )));
    }
    let base_lsn = r.u64()?;
    let ntables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1024));
    for _ in 0..ntables {
        let name = r.str()?;
        let schema = r.schema()?;
        let nsegs = r.u32()? as usize;
        let mut segments = Vec::with_capacity(nsegs.min(r.remaining() / 16));
        for _ in 0..nsegs {
            let id = r.u64()?;
            let rows = r.u64()?;
            segments.push((id, rows));
        }
        let row_limit = r.u64()?;
        let ndel = r.u64()? as usize;
        let mut deleted = Vec::with_capacity(ndel.min(r.remaining() / 8));
        for _ in 0..ndel {
            deleted.push(r.u64()?);
        }
        tables.push(TableManifest {
            name,
            schema,
            segments,
            row_limit,
            deleted,
        });
    }
    if !r.is_empty() {
        return Err(HyError::Storage(
            "checkpoint manifest has trailing bytes".into(),
        ));
    }
    Ok(CheckpointImage { base_lsn, tables })
}

/// Rebuild tables from a manifest into `catalog` (expected empty),
/// opening each referenced segment through `store` — headers only, no
/// row data is loaded. Returns the number of rows restored (deleted rows
/// included).
pub fn install_manifest(
    image: CheckpointImage,
    catalog: &Catalog,
    store: &std::sync::Arc<SegmentStore>,
) -> Result<u64> {
    let mut rows = 0u64;
    for t in image.tables {
        let mut handles = Vec::with_capacity(t.segments.len());
        for &(id, seg_rows) in &t.segments {
            let seg = store.open_segment(id)?;
            if seg.rows() as u64 != seg_rows {
                return Err(HyError::Storage(format!(
                    "checkpoint table '{}': segment {id} holds {} rows but the \
                     manifest declares {seg_rows}",
                    t.name,
                    seg.rows()
                )));
            }
            handles.push(SegmentHandle::Disk(seg));
        }
        let row_limit = usize::try_from(t.row_limit).map_err(|_| {
            HyError::Storage(format!(
                "checkpoint table '{}': row limit {} too large",
                t.name, t.row_limit
            ))
        })?;
        let table = Table::from_parts(&t.name, t.schema, handles, row_limit, &t.deleted)?;
        catalog.restore_table(std::sync::Arc::new(RwLock::new(table)));
        rows += t.row_limit;
    }
    Ok(rows)
}

/// Magic number opening a bootstrap bundle (`"HYBS"`).
pub const BOOTSTRAP_MAGIC: u32 = 0x4859_4253;
/// Bootstrap bundle format version.
pub const BOOTSTRAP_VERSION: u32 = 1;

/// Pack a manifest plus the segment files it references into one blob —
/// the replica-bootstrap payload (ships over the existing single-blob
/// `SnapshotOffer` wire frame).
///
/// ```text
/// [u32 magic "HYBS"] [u32 version]
/// [u32 nsegs] per segment: [u64 id] [u64 len] [file bytes]
/// [u64 manifest_len] [manifest bytes]
/// [u32 crc32(everything above)]
/// ```
pub fn encode_bootstrap_bundle(segments: &[(u64, Vec<u8>)], manifest: &[u8]) -> Vec<u8> {
    let total: usize = segments.iter().map(|(_, b)| b.len() + 16).sum();
    let mut buf = Vec::with_capacity(total + manifest.len() + 32);
    wire::put_u32(&mut buf, BOOTSTRAP_MAGIC);
    wire::put_u32(&mut buf, BOOTSTRAP_VERSION);
    wire::put_u32(&mut buf, segments.len() as u32);
    for (id, bytes) in segments {
        wire::put_u64(&mut buf, *id);
        wire::put_u64(&mut buf, bytes.len() as u64);
        buf.extend_from_slice(bytes);
    }
    wire::put_u64(&mut buf, manifest.len() as u64);
    buf.extend_from_slice(manifest);
    let crc = crc32(&buf);
    wire::put_u32(&mut buf, crc);
    buf
}

/// A decoded bootstrap bundle: the `(segment id, bytes)` files plus the
/// manifest bytes.
pub type BootstrapBundle = (Vec<(u64, Vec<u8>)>, Vec<u8>);

/// Unpack a bootstrap bundle into `(segment files, manifest bytes)`.
/// Lengths are bounds-checked against the actual blob before any
/// allocation; the CRC covers the whole bundle.
pub fn decode_bootstrap_bundle(bytes: &[u8]) -> Result<BootstrapBundle> {
    if bytes.len() < 28 {
        return Err(HyError::Storage(format!(
            "bootstrap bundle is {} bytes — too short to be valid",
            bytes.len()
        )));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err(HyError::Storage(
            "bootstrap bundle failed its CRC check (corrupted)".into(),
        ));
    }
    let mut r = ByteReader::new(body);
    let magic = r.u32()?;
    if magic != BOOTSTRAP_MAGIC {
        return Err(HyError::Storage(format!(
            "not a HyLite bootstrap bundle (magic {magic:#010x})"
        )));
    }
    let version = r.u32()?;
    if version != BOOTSTRAP_VERSION {
        return Err(HyError::Storage(format!(
            "bootstrap bundle version {version} not supported (this build reads {BOOTSTRAP_VERSION})"
        )));
    }
    let nsegs = r.u32()? as usize;
    let mut segments = Vec::with_capacity(nsegs.min(4096));
    for _ in 0..nsegs {
        let id = r.u64()?;
        let len = r.u64()?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&n| n <= r.remaining())
            .ok_or_else(|| {
                HyError::Storage(format!(
                    "bootstrap bundle declares a {len}-byte segment with {} bytes left",
                    r.remaining()
                ))
            })?;
        segments.push((id, r.take(len)?.to_vec()));
    }
    let mlen = r.u64()?;
    let mlen = usize::try_from(mlen)
        .ok()
        .filter(|&n| n <= r.remaining())
        .ok_or_else(|| {
            HyError::Storage(format!(
                "bootstrap bundle declares a {mlen}-byte manifest with {} bytes left",
                r.remaining()
            ))
        })?;
    let manifest = r.take(mlen)?.to_vec();
    if !r.is_empty() {
        return Err(HyError::Storage(
            "bootstrap bundle has trailing bytes".into(),
        ));
    }
    Ok((segments, manifest))
}

/// Write manifest bytes durably: temp file, fsync, atomic rename. The
/// segment files the manifest references must already be durable (the
/// sealing pass syncs them and their directory). The WAL truncation that
/// completes the checkpoint is the caller's job (it owns the WAL writer).
pub fn publish_checkpoint(vfs: &dyn Vfs, dir: &Path, data: &[u8]) -> Result<()> {
    let tmp = dir.join(CHECKPOINT_TMP_FILE);
    let dest = dir.join(CHECKPOINT_FILE);
    vfs.crash_point(CP_CKPT_WRITE)?;
    let mut f = vfs.create(&tmp)?;
    f.write_all(data)?;
    f.sync()?;
    drop(f);
    // Make the tmp file's directory entry durable before the rename:
    // some filesystems otherwise recover the rename with an empty or
    // missing source file even though its data was fsynced.
    vfs.sync_dir(dir)?;
    vfs.crash_point(CP_CKPT_RENAME)?;
    vfs.rename(&tmp, &dest)?;
    vfs.crash_point(CP_CKPT_AFTER_RENAME)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BufferPool;
    use hylite_common::telemetry::MetricsRegistry;
    use hylite_common::{DataType, FaultVfs, Field, Value};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn catalog_with_data() -> Catalog {
        let cat = Catalog::new();
        let t = cat
            .create_table(
                "t",
                Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("name", DataType::Varchar),
                ]),
            )
            .unwrap();
        let mut g = t.write();
        g.insert_rows(&[
            vec![Value::Int(1), Value::from("a")],
            vec![Value::Int(2), Value::from("b")],
            vec![Value::Int(3), Value::from("c")],
        ])
        .unwrap();
        g.delete_rows(&[1]).unwrap();
        g.commit();
        drop(g);
        cat.create_table("empty", Schema::new(vec![Field::new("x", DataType::Bool)]))
            .unwrap();
        cat
    }

    fn test_store(vfs: &FaultVfs) -> Arc<SegmentStore> {
        SegmentStore::open(
            Arc::new(vfs.clone()),
            &PathBuf::from("data"),
            Arc::new(BufferPool::new(1 << 24, &MetricsRegistry::new())),
        )
        .unwrap()
    }

    /// Seal every table of `cat` into `store` and return the manifests —
    /// a miniature of what `Durability::checkpoint` does.
    fn seal_catalog(cat: &Catalog, store: &Arc<SegmentStore>) -> Vec<TableManifest> {
        let mut tables = Vec::new();
        for name in cat.table_names() {
            let t = cat.get_table(&name).unwrap();
            let snap = t.read().committed_snapshot();
            let mut segments = Vec::new();
            for seg in snap.segments() {
                let chunk = seg.to_chunk().unwrap();
                let id = store.alloc_id();
                store.write_segment(id, &chunk).unwrap();
                segments.push((id, chunk.len() as u64));
            }
            let row_limit = snap.visible_rows() as u64;
            let deleted: Vec<u64> = snap
                .deleted()
                .iter_ones()
                .take_while(|&i| (i as u64) < row_limit)
                .map(|i| i as u64)
                .collect();
            tables.push(TableManifest {
                name,
                schema: snap.schema().as_ref().clone(),
                segments,
                row_limit,
                deleted,
            });
        }
        tables
    }

    #[test]
    fn encode_install_roundtrip() {
        let vfs = FaultVfs::new();
        let store = test_store(&vfs);
        let cat = catalog_with_data();
        let tables = seal_catalog(&cat, &store);
        let bytes = encode_manifest(42, &tables);
        let image = decode_manifest(&bytes).unwrap();
        assert_eq!(image.base_lsn, 42);
        let restored = Catalog::new();
        let rows = install_manifest(image, &restored, &store).unwrap();
        assert_eq!(rows, 3, "physical rows include the deleted one");
        assert_eq!(restored.table_names(), vec!["empty", "t"]);
        let t = restored.get_table("t").unwrap();
        let g = t.read();
        assert_eq!(g.total_rows(), 3);
        assert_eq!(g.committed_live_rows(), 2, "delete mark restored");
        // Row ids are positional and must be stable: row 2 is still id=3.
        assert_eq!(g.row(2).unwrap().int(0).unwrap(), 3);
    }

    #[test]
    fn manifest_is_small_regardless_of_rows() {
        let vfs = FaultVfs::new();
        let store = test_store(&vfs);
        let cat = Catalog::new();
        let t = cat
            .create_table("big", Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
        {
            let mut g = t.write();
            let rows: Vec<Vec<Value>> = (0..10_000).map(|i| vec![Value::Int(i)]).collect();
            g.insert_rows(&rows).unwrap();
            g.commit();
        }
        let tables = seal_catalog(&cat, &store);
        let bytes = encode_manifest(1, &tables);
        assert!(
            bytes.len() < 256,
            "manifest is {} bytes — it must not scale with row count",
            bytes.len()
        );
    }

    #[test]
    fn rows_mismatch_is_rejected_at_install() {
        let vfs = FaultVfs::new();
        let store = test_store(&vfs);
        let cat = catalog_with_data();
        let mut tables = seal_catalog(&cat, &store);
        for t in &mut tables {
            for seg in &mut t.segments {
                seg.1 += 1; // lie about the row count
            }
        }
        let image = decode_manifest(&encode_manifest(1, &tables)).unwrap();
        assert!(install_manifest(image, &Catalog::new(), &store).is_err());
    }

    #[test]
    fn corruption_is_a_hard_error() {
        let bytes = encode_manifest(1, &[]);
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(decode_manifest(&bad).is_err());
        assert!(decode_manifest(&[1, 2, 3]).is_err());
        assert!(decode_manifest(&[]).is_err());
        // v1 monolithic checkpoints are not readable by this build.
        let mut v1 = Vec::new();
        wire::put_u32(&mut v1, CHECKPOINT_MAGIC);
        wire::put_u32(&mut v1, 1);
        wire::put_u64(&mut v1, 7);
        wire::put_u32(&mut v1, 0);
        let crc = crc32(&v1);
        wire::put_u32(&mut v1, crc);
        let err = decode_manifest(&v1).unwrap_err();
        assert!(err.message().contains("version"), "{err}");
    }

    #[test]
    fn publish_renames_atomically() {
        let vfs = FaultVfs::new();
        let dir = Path::new("data");
        publish_checkpoint(&vfs, dir, b"snapshot-v1").unwrap();
        assert!(!vfs.exists(&dir.join(CHECKPOINT_TMP_FILE)));
        assert_eq!(
            vfs.read(&dir.join(CHECKPOINT_FILE)).unwrap(),
            b"snapshot-v1"
        );
        // Overwrite with a second checkpoint.
        publish_checkpoint(&vfs, dir, b"snapshot-v2").unwrap();
        assert_eq!(
            vfs.read(&dir.join(CHECKPOINT_FILE)).unwrap(),
            b"snapshot-v2"
        );
    }
}
