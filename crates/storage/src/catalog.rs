//! Catalog: the name → table map shared by all sessions.

use std::collections::BTreeMap;
use std::sync::Arc;

use hylite_common::{HyError, Result, Schema};
use parking_lot::RwLock;

use crate::table::{Table, TableRef};
use crate::writer::WriterGate;

/// Thread-safe table catalog. Table names are case-insensitive.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, TableRef>>,
    /// Database-wide single-writer gate; every path that stages table
    /// mutations (sessions, bulk loads) serializes on it.
    writer_gate: WriterGate,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// The database-wide writer gate (see [`WriterGate`]).
    pub fn writer_gate(&self) -> &WriterGate {
        &self.writer_gate
    }

    /// Create a table; errors if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<TableRef> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(HyError::Catalog(format!("table '{name}' already exists")));
        }
        let table = Arc::new(RwLock::new(Table::new(key.clone(), schema)));
        tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// Drop a table; errors if absent unless `if_exists`.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<Option<TableRef>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        match tables.remove(&key) {
            Some(t) => Ok(Some(t)),
            None if if_exists => Ok(None),
            None => Err(HyError::Catalog(format!("table '{name}' does not exist"))),
        }
    }

    /// Restore a previously dropped table (transaction rollback of DROP).
    pub fn restore_table(&self, table: TableRef) {
        let key = table.read().name().to_owned();
        self.tables.write().insert(key, table);
    }

    /// Look up a table.
    pub fn get_table(&self, name: &str) -> Result<TableRef> {
        let key = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&key)
            .cloned()
            .ok_or_else(|| HyError::Catalog(format!("table '{name}' does not exist")))
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Drop every table at once. Used when a replica discards its local
    /// state to install a bootstrap checkpoint from its primary; the
    /// caller must hold the writer gate and the commit lock so no
    /// session observes the catalog half-cleared.
    pub fn clear(&self) {
        self.tables.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int64)])
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        cat.create_table("T1", schema()).unwrap();
        assert!(cat.has_table("t1"));
        assert!(cat.has_table("T1"), "case-insensitive");
        assert!(cat.get_table("t1").is_ok());
        assert!(cat.create_table("t1", schema()).is_err(), "duplicate");
        cat.drop_table("T1", false).unwrap();
        assert!(!cat.has_table("t1"));
        assert!(cat.drop_table("t1", false).is_err());
        assert!(cat.drop_table("t1", true).unwrap().is_none());
    }

    #[test]
    fn restore_after_drop() {
        let cat = Catalog::new();
        cat.create_table("t", schema()).unwrap();
        let dropped = cat.drop_table("t", false).unwrap().unwrap();
        assert!(!cat.has_table("t"));
        cat.restore_table(dropped);
        assert!(cat.has_table("t"));
    }

    #[test]
    fn names_sorted() {
        let cat = Catalog::new();
        cat.create_table("b", schema()).unwrap();
        cat.create_table("a", schema()).unwrap();
        assert_eq!(cat.table_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn concurrent_access() {
        let cat = Arc::new(Catalog::new());
        cat.create_table("t", schema()).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let cat = Arc::clone(&cat);
                std::thread::spawn(move || {
                    let t = cat.get_table("t").unwrap();
                    let mut guard = t.write();
                    guard
                        .insert_rows(&[vec![hylite_common::Value::Int(i)]])
                        .unwrap();
                    guard.commit();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let t = cat.get_table("t").unwrap();
        assert_eq!(t.read().live_rows(), 8);
    }
}
