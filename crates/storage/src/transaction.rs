//! Single-writer transactions over the tables a statement touched.
//!
//! HyLite's write model is deliberately simple (the paper's subject is
//! analytics, not concurrency control): a transaction records which tables
//! it mutated; COMMIT promotes each table's working state to its committed
//! state, ROLLBACK restores the committed state. Readers in other sessions
//! always scan committed snapshots, so an open transaction never leaks
//! half-done changes to them — snapshot isolation for analytics.

use std::collections::BTreeMap;

use crate::table::TableRef;

/// An open transaction: the set of tables with uncommitted changes.
#[derive(Default)]
pub struct Transaction {
    touched: BTreeMap<String, TableRef>,
}

impl Transaction {
    /// A fresh transaction touching nothing.
    pub fn new() -> Transaction {
        Transaction::default()
    }

    /// Record that `table` was mutated in this transaction.
    pub fn touch(&mut self, table: &TableRef) {
        let name = table.read().name().to_owned();
        self.touched
            .entry(name)
            .or_insert_with(|| TableRef::clone(table));
    }

    /// Number of distinct tables touched.
    pub fn touched_count(&self) -> usize {
        self.touched.len()
    }

    /// Promote all touched tables' working state to committed.
    pub fn commit(self) {
        for table in self.touched.values() {
            table.write().commit();
        }
    }

    /// Restore all touched tables to their committed state.
    pub fn rollback(self) {
        for table in self.touched.values() {
            table.write().rollback();
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("touched", &self.touched.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use hylite_common::{DataType, Field, Schema, Value};

    fn setup() -> (Catalog, TableRef) {
        let cat = Catalog::new();
        let t = cat
            .create_table("t", Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
        t.write().insert_rows(&[vec![Value::Int(1)]]).unwrap();
        t.write().commit();
        (cat, t)
    }

    #[test]
    fn commit_publishes() {
        let (_cat, t) = setup();
        let mut tx = Transaction::new();
        t.write().insert_rows(&[vec![Value::Int(2)]]).unwrap();
        tx.touch(&t);
        assert_eq!(t.read().committed_snapshot().live_rows(), 1);
        tx.commit();
        assert_eq!(t.read().committed_snapshot().live_rows(), 2);
    }

    #[test]
    fn rollback_discards() {
        let (_cat, t) = setup();
        let mut tx = Transaction::new();
        t.write().insert_rows(&[vec![Value::Int(2)]]).unwrap();
        t.write().delete_rows(&[0]).unwrap();
        tx.touch(&t);
        tx.rollback();
        assert_eq!(t.read().live_rows(), 1);
        assert_eq!(
            t.read()
                .snapshot()
                .to_chunk()
                .unwrap()
                .column(0)
                .as_i64()
                .unwrap(),
            &[1]
        );
    }

    #[test]
    fn touch_is_idempotent() {
        let (_cat, t) = setup();
        let mut tx = Transaction::new();
        tx.touch(&t);
        tx.touch(&t);
        assert_eq!(tx.touched_count(), 1);
    }

    #[test]
    fn reader_snapshot_isolated_from_open_tx() {
        let (_cat, t) = setup();
        let mut tx = Transaction::new();
        // "Analytical reader" in another session takes a committed snapshot.
        let reader = t.read().committed_snapshot();
        t.write().insert_rows(&[vec![Value::Int(2)]]).unwrap();
        tx.touch(&t);
        tx.commit();
        // Even after commit, the earlier snapshot stays what it was.
        assert_eq!(reader.live_rows(), 1);
        // A fresh snapshot sees the new row.
        assert_eq!(t.read().committed_snapshot().live_rows(), 2);
    }
}
