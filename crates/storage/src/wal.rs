//! Redo write-ahead log: the durability half of the commit path.
//!
//! The WAL is a single append-only file of *commit frames*. Each frame
//! carries everything needed to redo one committed transaction — there is
//! no undo logging because uncommitted state lives only in memory (the
//! paper's main-memory design): a crash simply never sees it.
//!
//! ## On-disk layout
//!
//! ```text
//! [u32 magic "HYWL"] [u32 version]                      -- file header
//! [u32 len] [u32 crc32(payload)] [payload]              -- frame, repeated
//!     payload = [u64 lsn] [u32 nops] [op ...]
//! ```
//!
//! Integers are little-endian; ops reuse the wire codec
//! ([`hylite_common::wire`]) for strings, schemas, and columnar chunks.
//! A frame is valid only if its full length is present *and* its CRC
//! matches, which is what makes torn tail writes detectable: recovery
//! replays valid frames in order and discards everything from the first
//! invalid frame on.
//!
//! ## Sync modes
//!
//! * [`SyncMode::Commit`] — every commit is written *and* fsynced before
//!   the commit is acknowledged. An acknowledged commit survives any
//!   crash.
//! * [`SyncMode::Buffered`] — frames accumulate in a group-commit buffer
//!   flushed when it exceeds the configured threshold (and at checkpoint/
//!   shutdown). Much cheaper, but commits acknowledged since the last
//!   flush can be lost in a crash — a bounded, documented loss window.
//!
//! ## Failure handling
//!
//! If a write or fsync fails, the not-yet-acknowledged frame may be
//! partially in the file. The writer rolls the file back to the last
//! durable frame boundary; if even that fails, the WAL is *poisoned* and
//! every later commit errors until restart — the alternative would be a
//! later successful fsync silently making a never-acknowledged frame
//! durable.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hylite_common::faultfs::{Vfs, VfsFile};
use hylite_common::wire::{self, ByteReader, MAX_FRAME_BYTES};
use hylite_common::{crc32, Chunk, HyError, MetricsRegistry, Result, Schema};

/// Magic number opening the WAL file (`"HYWL"`).
pub const WAL_MAGIC: u32 = 0x4859_574C;
/// WAL format version; bumped on incompatible layout changes.
pub const WAL_VERSION: u32 = 1;
/// Size of the WAL file header in bytes.
pub const WAL_HEADER_LEN: u64 = 8;
/// File name of the WAL inside the data directory.
pub const WAL_FILE: &str = "wal.hylite";

/// Crash point: before the commit frame reaches the file.
pub const CP_WAL_APPEND: &str = "wal.append";
/// Crash point: frame written to the page cache, not yet fsynced.
pub const CP_WAL_AFTER_WRITE: &str = "wal.after_write";
/// Crash point: immediately before the commit fsync.
pub const CP_WAL_PRE_FSYNC: &str = "wal.pre_fsync";
/// Crash point: fsync done, acknowledgement not yet returned.
pub const CP_WAL_POST_FSYNC: &str = "wal.post_fsync";
/// Crash point: before the post-checkpoint WAL truncation.
pub const CP_WAL_TRUNCATE: &str = "wal.truncate";

/// When the WAL fsyncs relative to commit acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Write + fsync before every commit acknowledgement (durable).
    Commit,
    /// Group-commit buffering with a bounded loss window.
    Buffered,
}

/// One redo operation inside a commit frame. `Insert` carries the rows in
/// columnar form exactly as they were appended, so replay reproduces the
/// same physical layout (and therefore the same global row ids that later
/// `Delete` frames refer to).
#[derive(Debug, Clone, PartialEq)]
pub enum RedoOp {
    /// `CREATE TABLE` — name plus full schema.
    CreateTable {
        /// Table name (already lower-cased by the catalog).
        name: String,
        /// Column definitions.
        schema: Schema,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// Rows appended to a table in one statement.
    Insert {
        /// Target table.
        table: String,
        /// The appended rows, columnar.
        rows: Chunk,
    },
    /// Rows delete-marked by their global row ids.
    Delete {
        /// Target table.
        table: String,
        /// Global row ids that were marked deleted.
        row_ids: Vec<u64>,
    },
}

impl RedoOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            RedoOp::CreateTable { name, schema } => {
                buf.push(1);
                wire::put_str(buf, name);
                wire::put_schema(buf, schema);
            }
            RedoOp::DropTable { name } => {
                buf.push(2);
                wire::put_str(buf, name);
            }
            RedoOp::Insert { table, rows } => {
                buf.push(3);
                wire::put_str(buf, table);
                wire::put_chunk(buf, rows);
            }
            RedoOp::Delete { table, row_ids } => {
                buf.push(4);
                wire::put_str(buf, table);
                wire::put_u64(buf, row_ids.len() as u64);
                for &id in row_ids {
                    wire::put_u64(buf, id);
                }
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<RedoOp> {
        Ok(match r.u8()? {
            1 => RedoOp::CreateTable {
                name: r.str()?,
                schema: r.schema()?,
            },
            2 => RedoOp::DropTable { name: r.str()? },
            3 => RedoOp::Insert {
                table: r.str()?,
                rows: r.chunk()?,
            },
            4 => {
                let table = r.str()?;
                let n = r.u64()? as usize;
                // Each id costs 8 bytes; cap the preallocation by what the
                // frame can actually hold.
                let mut row_ids = Vec::with_capacity(n.min(r.remaining() / 8));
                for _ in 0..n {
                    row_ids.push(r.u64()?);
                }
                RedoOp::Delete { table, row_ids }
            }
            other => {
                return Err(HyError::Storage(format!(
                    "WAL frame has unknown redo op tag {other}"
                )))
            }
        })
    }
}

/// Encode one commit as a complete frame (length + CRC + payload).
pub fn encode_commit_frame(lsn: u64, ops: &[RedoOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    wire::put_u64(&mut payload, lsn);
    wire::put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        op.encode(&mut payload);
    }
    let mut frame = Vec::with_capacity(payload.len() + 8);
    wire::put_u32(&mut frame, payload.len() as u32);
    wire::put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decode a commit-frame payload (`[u64 lsn][u32 nops][ops...]`) into its
/// LSN and redo ops. Replication uses this on replica-received frames;
/// recovery uses it on frames scanned from disk.
pub fn decode_commit_payload(payload: &[u8]) -> Result<(u64, Vec<RedoOp>)> {
    let mut r = ByteReader::new(payload);
    let lsn = r.u64()?;
    let nops = r.u32()? as usize;
    let mut ops = Vec::with_capacity(nops.min(payload.len()));
    for _ in 0..nops {
        ops.push(RedoOp::decode(&mut r)?);
    }
    if !r.is_empty() {
        return Err(HyError::Storage(
            "WAL frame has trailing bytes after its ops".into(),
        ));
    }
    Ok((lsn, ops))
}

/// Result of scanning a WAL file: the valid commit prefix plus what had
/// to be discarded.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Valid commits in LSN order, `(lsn, ops)`.
    pub commits: Vec<(u64, Vec<RedoOp>)>,
    /// Byte offset of the first byte *after* each commit's frame,
    /// parallel to `commits`. Recovery uses these to truncate the file
    /// at an exact frame boundary when it rejects a later frame (e.g. an
    /// LSN gap).
    pub frame_ends: Vec<u64>,
    /// Byte length of the valid prefix (header + valid frames). The file
    /// should be truncated to this length before appending again.
    pub valid_len: u64,
    /// Bytes past the valid prefix (torn/corrupt tail).
    pub discarded_bytes: u64,
}

/// One CRC-verified WAL frame in raw (undecoded) form: what replication
/// ships to replicas. `payload` is the exact bytes the CRC covers.
#[derive(Debug, Clone, PartialEq)]
pub struct RawFrame {
    /// The commit's log sequence number.
    pub lsn: u64,
    /// CRC32 of `payload` as stored in the file.
    pub crc: u32,
    /// The frame payload (`[lsn][nops][ops...]`).
    pub payload: Vec<u8>,
}

/// Scan a WAL file into raw CRC-verified frames without decoding ops,
/// stopping at the first torn or corrupt frame (same tail rules as
/// [`scan_wal`]). The LSN is peeked from the payload head; a CRC-valid
/// frame too short to carry an LSN is real corruption and errors out.
pub fn scan_wal_raw(vfs: &dyn Vfs, path: &Path) -> Result<Vec<RawFrame>> {
    let mut frames = Vec::new();
    if !vfs.exists(path) {
        return Ok(frames);
    }
    let bytes = vfs.read(path)?;
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        return Ok(frames);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != WAL_MAGIC {
        return Err(HyError::Storage(format!(
            "{} is not a HyLite WAL (magic {magic:#010x})",
            path.display()
        )));
    }
    let mut pos = WAL_HEADER_LEN as usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len as u64 > MAX_FRAME_BYTES as u64 || pos + 8 + len > bytes.len() {
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        if payload.len() < 8 {
            return Err(HyError::Storage(
                "WAL frame too short to carry an LSN".into(),
            ));
        }
        let lsn = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        frames.push(RawFrame {
            lsn,
            crc,
            payload: payload.to_vec(),
        });
        pos += 8 + len;
    }
    Ok(frames)
}

/// Scan a WAL file, stopping at the first torn or corrupt frame.
///
/// A truncated or CRC-mismatching *tail* is normal after a crash and is
/// reported, not an error. A file that is long enough to have a header
/// but opens with the wrong magic, or a CRC-valid frame that fails to
/// parse, is real corruption and errors out rather than silently
/// dropping data.
pub fn scan_wal(vfs: &dyn Vfs, path: &Path) -> Result<WalScan> {
    let mut scan = WalScan::default();
    if !vfs.exists(path) {
        return Ok(scan);
    }
    let bytes = vfs.read(path)?;
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        // Crash before the header fsync: treat as empty.
        scan.discarded_bytes = bytes.len() as u64;
        return Ok(scan);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if magic != WAL_MAGIC {
        return Err(HyError::Storage(format!(
            "{} is not a HyLite WAL (magic {magic:#010x})",
            path.display()
        )));
    }
    if version != WAL_VERSION {
        return Err(HyError::Storage(format!(
            "WAL version {version} not supported (this build reads {WAL_VERSION})"
        )));
    }
    let mut pos = WAL_HEADER_LEN as usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len as u64 > MAX_FRAME_BYTES as u64 || pos + 8 + len > bytes.len() {
            break; // torn length/payload
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // torn or bit-flipped frame
        }
        let (lsn, ops) = decode_commit_payload(payload)?;
        scan.commits.push((lsn, ops));
        pos += 8 + len;
        scan.frame_ends.push(pos as u64);
    }
    scan.valid_len = pos as u64;
    scan.discarded_bytes = bytes.len() as u64 - scan.valid_len;
    Ok(scan)
}

/// The append side of the WAL. One instance per database, serialized by
/// the durability layer's commit lock.
pub struct WalWriter {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    file: Box<dyn VfsFile>,
    sync_mode: SyncMode,
    group_commit_bytes: usize,
    /// Encoded frames not yet handed to the file (group-commit buffer).
    buffer: Vec<u8>,
    /// Commits sitting in `buffer`.
    buffered_commits: u64,
    /// Bytes of the file known durable (written + fsynced).
    durable_len: u64,
    next_lsn: u64,
    poisoned: bool,
    /// Set by [`Durability`] while the node is in read-only degraded
    /// mode: `log_commit` rejects before touching the buffer, but only
    /// *after* the caller's closure has entered — so the caller's
    /// rollback arm runs and staged in-memory rows are discarded. A
    /// rejection outside the closure would leak them into the next
    /// commit's publish.
    degraded: bool,
    metrics: Arc<MetricsRegistry>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("sync_mode", &self.sync_mode)
            .field("durable_len", &self.durable_len)
            .field("next_lsn", &self.next_lsn)
            .field("buffered", &self.buffer.len())
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl WalWriter {
    /// Open (or create) the WAL for appending. `next_lsn` comes from
    /// recovery; the file is expected to already be repaired (truncated
    /// to its valid prefix).
    pub fn open(
        vfs: Arc<dyn Vfs>,
        path: PathBuf,
        sync_mode: SyncMode,
        group_commit_bytes: usize,
        next_lsn: u64,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<WalWriter> {
        let existing = if vfs.exists(&path) {
            vfs.len(&path)?
        } else {
            0
        };
        let durable_len = if existing < WAL_HEADER_LEN {
            let mut f = vfs.create(&path)?;
            let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
            wire::put_u32(&mut header, WAL_MAGIC);
            wire::put_u32(&mut header, WAL_VERSION);
            f.write_all(&header)?;
            f.sync()?;
            // The file's *directory entry* must be durable too, or a
            // power loss can vanish the whole WAL — fsynced frames and
            // all — on a freshly created database.
            if let Some(dir) = path.parent() {
                vfs.sync_dir(dir)?;
            }
            WAL_HEADER_LEN
        } else {
            existing
        };
        // Always append through a fresh append-mode handle: a handle from
        // `create` has a positioned cursor, which keeps writing at its old
        // offset (leaving a hole) after an out-of-band truncate.
        let file = vfs.open_append(&path)?;
        Ok(WalWriter {
            vfs,
            path,
            file,
            sync_mode,
            group_commit_bytes: group_commit_bytes.max(1),
            buffer: Vec::new(),
            buffered_commits: 0,
            durable_len,
            next_lsn: next_lsn.max(1),
            poisoned: false,
            degraded: false,
            metrics,
        })
    }

    /// The LSN the next commit will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Override the next LSN. Only valid on an empty (just-reset) WAL:
    /// a replica installing a bootstrap checkpoint restarts its log at
    /// the snapshot's base LSN.
    pub fn set_next_lsn(&mut self, lsn: u64) {
        debug_assert!(self.buffer.is_empty(), "set_next_lsn on a dirty WAL");
        self.next_lsn = lsn.max(1);
    }

    /// The configured sync mode.
    pub fn sync_mode(&self) -> SyncMode {
        self.sync_mode
    }

    /// Bytes of the file known durable (written + fsynced). Replicas use
    /// this as a cheap checkpoint-pressure signal.
    pub fn durable_len(&self) -> u64 {
        self.durable_len
    }

    /// Append a WAL frame received verbatim from a replication primary.
    ///
    /// The frame keeps the primary's LSN so the replica's WAL is
    /// byte-compatible with the primary's and catch-up can resume from
    /// `next_lsn - 1` after any crash. `lsn` must be exactly the next
    /// expected LSN — a gap means the stream diverged and the caller
    /// must re-bootstrap instead of applying a forked history. The frame
    /// is written *and fsynced* before this returns `Ok` regardless of
    /// sync mode: a replica only acknowledges durably applied LSNs.
    pub fn append_raw_frame(&mut self, lsn: u64, crc: u32, payload: &[u8]) -> Result<()> {
        self.check_poisoned()?;
        if crc32(payload) != crc {
            return Err(HyError::Storage(format!(
                "replicated frame lsn {lsn} failed its CRC check"
            )));
        }
        if lsn != self.next_lsn {
            return Err(HyError::Storage(format!(
                "replicated frame lsn {lsn} does not continue the local WAL \
                 (expected {}): stream diverged",
                self.next_lsn
            )));
        }
        let frame_start = self.buffer.len();
        wire::put_u32(&mut self.buffer, payload.len() as u32);
        wire::put_u32(&mut self.buffer, crc);
        self.buffer.extend_from_slice(payload);
        self.buffered_commits += 1;
        if let Err(e) = self.flush() {
            self.buffer.truncate(frame_start);
            self.buffered_commits = self.buffered_commits.saturating_sub(1);
            return Err(e);
        }
        self.next_lsn = lsn + 1;
        self.metrics.counter("wal.commits").inc();
        Ok(())
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(HyError::Storage(
                "WAL is poisoned after a failed rollback; restart the database".into(),
            ));
        }
        Ok(())
    }

    /// Whether a failed rollback has poisoned the writer.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Retry the rollback that poisoned the writer: truncate the file to
    /// the last durable frame boundary and reopen the append handle. Safe
    /// because recovery never trusts bytes past a valid frame boundary —
    /// this merely completes the cleanup the failure interrupted. The
    /// group-commit buffer is kept: in Buffered mode it holds frames of
    /// already-acknowledged commits, which the next flush retries. Called
    /// by the disk-pressure probe once space frees up; a no-op when the
    /// writer is healthy.
    pub fn try_unpoison(&mut self) -> Result<()> {
        if !self.poisoned {
            return Ok(());
        }
        self.vfs.truncate(&self.path, self.durable_len)?;
        self.file = self.vfs.open_append(&self.path)?;
        self.poisoned = false;
        Ok(())
    }

    /// Flip the degraded-mode write rejection (see the `degraded` field).
    /// Owned by [`crate::durability::Durability`], which mirrors its
    /// node-level flag into the
    /// writer under the commit lock.
    pub fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// Log one commit. In [`SyncMode::Commit`] the frame is durable when
    /// this returns `Ok`; in [`SyncMode::Buffered`] it is at least in the
    /// group-commit buffer. Returns the commit's LSN.
    pub fn log_commit(&mut self, ops: &[RedoOp]) -> Result<u64> {
        if self.degraded {
            // Reject up front, before the frame touches the buffer. The
            // error is the same retryable DiskFull (5005) the original
            // failure produced, so clients see one consistent code.
            return Err(HyError::DiskFull(
                "node is in read-only degraded mode (disk full); \
                 writes resume automatically once space frees"
                    .into(),
            ));
        }
        self.check_poisoned()?;
        let lsn = self.next_lsn;
        let frame = encode_commit_frame(lsn, ops);
        let frame_start = self.buffer.len();
        self.buffer.extend_from_slice(&frame);
        self.buffered_commits += 1;
        let must_flush = match self.sync_mode {
            SyncMode::Commit => true,
            SyncMode::Buffered => self.buffer.len() >= self.group_commit_bytes,
        };
        if must_flush {
            if let Err(e) = self.flush() {
                // This commit is about to be rejected and its in-memory
                // effects rolled back: its frame must not linger in the
                // buffer where a later retry would make it durable.
                // Earlier buffered frames stay queued — those commits
                // were already acknowledged (Buffered mode) and their
                // effects are published in memory.
                self.buffer.truncate(frame_start);
                self.buffered_commits = self.buffered_commits.saturating_sub(1);
                return Err(e);
            }
        }
        // Advance only after a successful (or deferred) append so an LSN
        // never refers to a frame that was rolled back.
        self.next_lsn = lsn + 1;
        self.metrics.counter("wal.commits").inc();
        Ok(lsn)
    }

    /// Write + fsync the group-commit buffer. On failure the *file* is
    /// rolled back to the last durable frame boundary (or poisoned if
    /// even that fails), but the buffered frames are kept: in Buffered
    /// mode they belong to already-acknowledged commits whose effects
    /// are live in memory, so the next flush retries them rather than
    /// silently widening the loss window to cover plain I/O errors.
    /// Every failure is counted in `wal.flush_failures`.
    pub fn flush(&mut self) -> Result<()> {
        self.check_poisoned()?;
        if self.buffer.is_empty() {
            return Ok(());
        }
        match self.try_flush() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.metrics.counter("wal.flush_failures").inc();
                // Without the rollback, a *later* successful fsync could
                // make a partially written, never-acknowledged frame
                // durable behind the engine's back.
                if self.vfs.truncate(&self.path, self.durable_len).is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    fn try_flush(&mut self) -> Result<()> {
        self.vfs.crash_point(CP_WAL_APPEND)?;
        self.file.write_all(&self.buffer)?;
        self.vfs.crash_point(CP_WAL_AFTER_WRITE)?;
        self.vfs.crash_point(CP_WAL_PRE_FSYNC)?;
        self.file.sync()?;
        self.vfs.crash_point(CP_WAL_POST_FSYNC)?;
        self.durable_len += self.buffer.len() as u64;
        self.metrics
            .counter("wal.bytes_written")
            .add(self.buffer.len() as u64);
        self.metrics.counter("wal.fsyncs").inc();
        self.metrics
            .counter("wal.group_commits")
            .add(u64::from(self.buffered_commits > 1));
        self.buffer.clear();
        self.buffered_commits = 0;
        Ok(())
    }

    /// Drop every logged frame (after a checkpoint made them redundant):
    /// truncate the file back to just its header. The caller must have
    /// flushed first.
    pub fn reset(&mut self) -> Result<()> {
        self.check_poisoned()?;
        self.vfs.crash_point(CP_WAL_TRUNCATE)?;
        self.buffer.clear();
        self.buffered_commits = 0;
        self.vfs.truncate(&self.path, WAL_HEADER_LEN)?;
        // Reopen so the handle's notion of EOF agrees with the truncated
        // file on every platform.
        self.file = self.vfs.open_append(&self.path)?;
        self.durable_len = WAL_HEADER_LEN;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{ColumnVector, DataType, FaultVfs, Field};

    fn vfs_and_path() -> (Arc<dyn Vfs>, FaultVfs, PathBuf) {
        let fault = FaultVfs::new();
        (
            Arc::new(fault.clone()) as Arc<dyn Vfs>,
            fault,
            PathBuf::from("wal.hylite"),
        )
    }

    fn writer(vfs: Arc<dyn Vfs>, path: PathBuf, mode: SyncMode) -> WalWriter {
        WalWriter::open(vfs, path, mode, 1024, 1, Arc::new(MetricsRegistry::new())).unwrap()
    }

    fn insert_op(n: i64) -> RedoOp {
        RedoOp::Insert {
            table: "t".into(),
            rows: Chunk::new(vec![ColumnVector::from_i64(vec![n])]),
        }
    }

    #[test]
    fn commits_roundtrip_through_scan() {
        let (vfs, _, path) = vfs_and_path();
        let mut w = writer(Arc::clone(&vfs), path.clone(), SyncMode::Commit);
        let ops = vec![
            RedoOp::CreateTable {
                name: "t".into(),
                schema: Schema::new(vec![Field::new("x", DataType::Int64)]),
            },
            insert_op(1),
            RedoOp::Delete {
                table: "t".into(),
                row_ids: vec![0, 2],
            },
            RedoOp::DropTable { name: "t".into() },
        ];
        let lsn1 = w.log_commit(&ops).unwrap();
        let lsn2 = w.log_commit(&[insert_op(2)]).unwrap();
        assert!(lsn2 > lsn1);
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        assert_eq!(scan.discarded_bytes, 0);
        assert_eq!(scan.commits.len(), 2);
        assert_eq!(scan.commits[0].0, lsn1);
        assert_eq!(scan.commits[0].1, ops);
        assert_eq!(scan.commits[1].1, vec![insert_op(2)]);
    }

    #[test]
    fn torn_tail_is_discarded_not_an_error() {
        let (vfs, fault, path) = vfs_and_path();
        let mut w = writer(Arc::clone(&vfs), path.clone(), SyncMode::Commit);
        w.log_commit(&[insert_op(1)]).unwrap();
        let durable = fault.file_len(&path).unwrap() as u64;
        // Append half a frame by hand.
        let frame = encode_commit_frame(99, &[insert_op(2)]);
        let mut f = vfs.open_append(&path).unwrap();
        f.write_all(&frame[..frame.len() / 2]).unwrap();
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        assert_eq!(scan.commits.len(), 1);
        assert_eq!(scan.valid_len, durable);
        assert!(scan.discarded_bytes > 0);
    }

    #[test]
    fn bit_flip_invalidates_the_frame() {
        let (vfs, fault, path) = vfs_and_path();
        let mut w = writer(Arc::clone(&vfs), path.clone(), SyncMode::Commit);
        w.log_commit(&[insert_op(1)]).unwrap();
        let good = scan_wal(vfs.as_ref(), &path).unwrap();
        assert_eq!(good.commits.len(), 1);
        // Flip one payload bit; the CRC must catch it.
        fault
            .corrupt(&path, WAL_HEADER_LEN as usize + 12, 0x40)
            .unwrap();
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        assert_eq!(scan.commits.len(), 0);
        assert_eq!(scan.valid_len, WAL_HEADER_LEN);
    }

    #[test]
    fn failed_fsync_rolls_back_to_durable_boundary() {
        let (vfs, fault, path) = vfs_and_path();
        let mut w = writer(Arc::clone(&vfs), path.clone(), SyncMode::Commit);
        w.log_commit(&[insert_op(1)]).unwrap();
        let durable = fault.file_len(&path).unwrap() as u64;
        fault.fail_fsyncs(1);
        assert!(w.log_commit(&[insert_op(2)]).is_err());
        // The failed frame is gone from the file entirely.
        assert_eq!(fault.file_len(&path).unwrap() as u64, durable);
        // The writer is still usable and the next commit lands.
        w.log_commit(&[insert_op(3)]).unwrap();
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        let vals: Vec<_> = scan.commits.iter().map(|(_, ops)| ops.clone()).collect();
        assert_eq!(vals, vec![vec![insert_op(1)], vec![insert_op(3)]]);
    }

    #[test]
    fn buffered_mode_defers_fsync_until_threshold() {
        let (vfs, fault, path) = vfs_and_path();
        let mut w = WalWriter::open(
            Arc::clone(&vfs),
            path.clone(),
            SyncMode::Buffered,
            1 << 20,
            1,
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap();
        w.log_commit(&[insert_op(1)]).unwrap();
        assert_eq!(
            fault.file_len(&path).unwrap() as u64,
            WAL_HEADER_LEN,
            "frame still buffered"
        );
        w.flush().unwrap();
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        assert_eq!(scan.commits.len(), 1);
    }

    #[test]
    fn buffered_flush_failure_retains_acked_frames() {
        let (vfs, fault, path) = vfs_and_path();
        let metrics = Arc::new(MetricsRegistry::new());
        let mut w = WalWriter::open(
            Arc::clone(&vfs),
            path.clone(),
            SyncMode::Buffered,
            1 << 20,
            1,
            Arc::clone(&metrics),
        )
        .unwrap();
        // Two acknowledged commits sit in the group-commit buffer.
        let lsn1 = w.log_commit(&[insert_op(1)]).unwrap();
        let lsn2 = w.log_commit(&[insert_op(2)]).unwrap();
        fault.fail_fsyncs(1);
        assert!(w.flush().is_err());
        assert_eq!(metrics.counter("wal.flush_failures").get(), 1);
        assert_eq!(
            fault.file_len(&path).unwrap() as u64,
            WAL_HEADER_LEN,
            "failed flush rolled the file back to the durable boundary"
        );
        // The acked frames were NOT discarded: the next flush lands them.
        w.flush().unwrap();
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        assert_eq!(
            scan.commits.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![lsn1, lsn2]
        );
        assert_eq!(scan.commits[0].1, vec![insert_op(1)]);
        assert_eq!(scan.commits[1].1, vec![insert_op(2)]);
    }

    #[test]
    fn buffered_rejected_commit_is_not_resurrected_by_retry() {
        let (vfs, fault, path) = vfs_and_path();
        // Threshold 1024: the small first commit stays buffered, the big
        // second one trips a flush inside `log_commit`.
        let mut w = WalWriter::open(
            Arc::clone(&vfs),
            path.clone(),
            SyncMode::Buffered,
            1024,
            1,
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap();
        w.log_commit(&[insert_op(1)]).unwrap();
        let big = RedoOp::Insert {
            table: "t".into(),
            rows: Chunk::new(vec![ColumnVector::from_i64((0..256).collect())]),
        };
        fault.fail_fsyncs(1);
        assert!(w.log_commit(&[big]).is_err(), "flush failure rejects it");
        // The rejected commit's frame must be gone from the buffer: its
        // in-memory effects were rolled back, so a successful retry must
        // not make it durable behind the engine's back.
        w.flush().unwrap();
        let lsn3 = w.log_commit(&[insert_op(3)]).unwrap();
        w.flush().unwrap();
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        let vals: Vec<_> = scan.commits.iter().map(|(_, ops)| ops.clone()).collect();
        assert_eq!(vals, vec![vec![insert_op(1)], vec![insert_op(3)]]);
        assert_eq!(lsn3, 2, "the rejected commit's LSN was reused");
    }

    #[test]
    fn reset_truncates_to_header() {
        let (vfs, fault, path) = vfs_and_path();
        let mut w = writer(Arc::clone(&vfs), path.clone(), SyncMode::Commit);
        w.log_commit(&[insert_op(1)]).unwrap();
        w.reset().unwrap();
        assert_eq!(fault.file_len(&path).unwrap() as u64, WAL_HEADER_LEN);
        // Still appendable after the reset.
        w.log_commit(&[insert_op(2)]).unwrap();
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        assert_eq!(scan.commits.len(), 1);
        assert_eq!(scan.commits[0].1, vec![insert_op(2)]);
    }

    #[test]
    fn raw_scan_matches_decoded_scan() {
        let (vfs, _, path) = vfs_and_path();
        let mut w = writer(Arc::clone(&vfs), path.clone(), SyncMode::Commit);
        let lsn1 = w.log_commit(&[insert_op(1)]).unwrap();
        let lsn2 = w.log_commit(&[insert_op(2)]).unwrap();
        let raw = scan_wal_raw(vfs.as_ref(), &path).unwrap();
        assert_eq!(raw.len(), 2);
        assert_eq!(raw[0].lsn, lsn1);
        assert_eq!(raw[1].lsn, lsn2);
        for f in &raw {
            assert_eq!(crc32(&f.payload), f.crc);
            let (lsn, ops) = decode_commit_payload(&f.payload).unwrap();
            assert_eq!(lsn, f.lsn);
            assert_eq!(ops.len(), 1);
        }
    }

    #[test]
    fn raw_frames_replayed_verbatim_reproduce_the_wal() {
        let (vfs, _, path) = vfs_and_path();
        let mut w = writer(Arc::clone(&vfs), path.clone(), SyncMode::Commit);
        w.log_commit(&[insert_op(1)]).unwrap();
        w.log_commit(&[insert_op(2), insert_op(3)]).unwrap();
        let frames = scan_wal_raw(vfs.as_ref(), &path).unwrap();
        let primary_bytes = vfs.read(&path).unwrap();

        // "Replica": apply the raw frames into a fresh WAL.
        let replica = FaultVfs::new();
        let rvfs: Arc<dyn Vfs> = Arc::new(replica.clone());
        let rpath = PathBuf::from("replica-wal.hylite");
        let mut rw = writer(Arc::clone(&rvfs), rpath.clone(), SyncMode::Commit);
        for f in &frames {
            rw.append_raw_frame(f.lsn, f.crc, &f.payload).unwrap();
        }
        assert_eq!(rw.next_lsn(), w.next_lsn());
        assert_eq!(rvfs.read(&rpath).unwrap(), primary_bytes, "byte-identical");
    }

    #[test]
    fn raw_append_rejects_gaps_and_bad_crc() {
        let (vfs, _, path) = vfs_and_path();
        let mut w = writer(Arc::clone(&vfs), path.clone(), SyncMode::Commit);
        let frame1 = encode_commit_frame(1, &[insert_op(1)]);
        let frame3 = encode_commit_frame(3, &[insert_op(3)]);
        let payload1 = frame1[8..].to_vec();
        let payload3 = frame3[8..].to_vec();
        // Bad CRC is rejected before anything touches the file.
        assert!(w
            .append_raw_frame(1, crc32(&payload1) ^ 1, &payload1)
            .is_err());
        w.append_raw_frame(1, crc32(&payload1), &payload1).unwrap();
        // LSN 3 after LSN 1 is a gap: divergence, not appendable.
        let err = w
            .append_raw_frame(3, crc32(&payload3), &payload3)
            .unwrap_err();
        assert!(err.message().contains("diverged"), "{err}");
        assert_eq!(w.next_lsn(), 2, "rejected frame did not advance the LSN");
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        assert_eq!(scan.commits.len(), 1);
    }

    #[test]
    fn scan_reports_frame_end_offsets() {
        let (vfs, fault, path) = vfs_and_path();
        let mut w = writer(Arc::clone(&vfs), path.clone(), SyncMode::Commit);
        w.log_commit(&[insert_op(1)]).unwrap();
        let after_first = fault.file_len(&path).unwrap() as u64;
        w.log_commit(&[insert_op(2)]).unwrap();
        let after_second = fault.file_len(&path).unwrap() as u64;
        let scan = scan_wal(vfs.as_ref(), &path).unwrap();
        assert_eq!(scan.frame_ends, vec![after_first, after_second]);
        assert_eq!(scan.valid_len, after_second);
    }

    #[test]
    fn foreign_file_is_rejected() {
        let (vfs, _, path) = vfs_and_path();
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"definitely not a WAL file").unwrap();
        assert!(scan_wal(vfs.as_ref(), &path).is_err());
    }
}
