//! Continuous WAL archiving: the bridge between backups and
//! point-in-time recovery.
//!
//! A checkpoint truncates the WAL, which is exactly right for crash
//! recovery and exactly wrong for PITR: the truncated frames are the
//! only record of the commits between two backups. When the server runs
//! with `--archive-dir`, every frame about to be truncated is first
//! CRC-verified and copied into an archive *span* file, so the full
//! commit history since the last backup survives checkpoints.
//!
//! ## Archive layout
//!
//! ```text
//! <archive-dir>/
//!     wal_<start>_<end>.hylite   -- one span per checkpoint rotation,
//!                                   frames start..=end, WAL file format
//!     archive.lsn                -- watermark: highest archived LSN
//! ```
//!
//! Span files reuse the WAL on-disk format (header + CRC-framed commit
//! frames), so [`crate::wal::scan_wal_raw`] reads them unchanged. The
//! file *name* declares the exact LSN range the span must contain; a
//! scan that yields anything else is a torn or corrupted span and is a
//! hard error at restore time — PITR must never silently skip commits.
//!
//! ## Failure semantics
//!
//! Archiving runs inside the checkpoint (commit lock held), but an
//! archive failure must never block commits: the caller counts the
//! failure (`archive.failures`), *skips the WAL truncation*, and the
//! next checkpoint retries the same frames. Recovery ignores frames
//! below `base_lsn`, so retaining them is harmless. The span file is
//! published tmp → fsync → rename with the [`CP_ARCHIVE_ROTATE`] crash
//! point immediately before the rename, so a crash mid-rotation leaves
//! only scratch the next open sweeps away — never a half-span that
//! parses.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use hylite_common::faultfs::Vfs;
use hylite_common::wire;
use hylite_common::{HyError, MetricsRegistry, Result};

use crate::wal::{scan_wal_raw, RawFrame, WAL_MAGIC, WAL_VERSION};

/// File holding the archive watermark (highest archived LSN).
pub const ARCHIVE_WATERMARK_FILE: &str = "archive.lsn";
/// Crash point: span file written and fsynced, rename not yet done.
pub const CP_ARCHIVE_ROTATE: &str = "archive.rotate";

/// File name of the span holding frames `start..=end`.
pub fn span_file_name(start: u64, end: u64) -> String {
    format!("wal_{start:016x}_{end:016x}.hylite")
}

/// Parse a [`span_file_name`] back to `(start, end)` (`None` for foreign
/// files, including the watermark and scratch files).
pub fn parse_span_file_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("wal_")?.strip_suffix(".hylite")?;
    let (start, end) = rest.split_once('_')?;
    if start.len() != 16 || end.len() != 16 {
        return None;
    }
    Some((
        u64::from_str_radix(start, 16).ok()?,
        u64::from_str_radix(end, 16).ok()?,
    ))
}

/// The archiving side: owned by `Durability`, invoked under the commit
/// lock right before each WAL truncation.
pub struct WalArchive {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    metrics: Arc<MetricsRegistry>,
    /// Highest LSN known archived (mirror of the watermark file).
    watermark: u64,
}

impl std::fmt::Debug for WalArchive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalArchive")
            .field("dir", &self.dir)
            .field("watermark", &self.watermark)
            .finish()
    }
}

impl WalArchive {
    /// Open (or create) an archive directory. Leftover scratch from a
    /// crash mid-rotation is deleted; the watermark is loaded from disk.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        dir: PathBuf,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<WalArchive> {
        vfs.create_dir_all(&dir)?;
        for name in vfs.list_dir(&dir)? {
            if name.ends_with(".tmp") {
                let _ = vfs.remove(&dir.join(name));
            }
        }
        let watermark = read_watermark(vfs.as_ref(), &dir)?;
        Ok(WalArchive {
            vfs,
            dir,
            metrics,
            watermark,
        })
    }

    /// The archive directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Highest LSN durably archived (0 when nothing is).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Archive every frame newer than the watermark as one new span.
    /// Returns the number of frames archived (0 when already caught up).
    /// Frames must be contiguous and CRC-valid — they come straight from
    /// a [`scan_wal_raw`] of the durable WAL, which enforces both.
    pub fn archive_frames(&mut self, frames: &[RawFrame]) -> Result<u64> {
        let fresh: Vec<&RawFrame> = frames.iter().filter(|f| f.lsn > self.watermark).collect();
        let (Some(first), Some(last)) = (fresh.first(), fresh.last()) else {
            return Ok(0);
        };
        let (start, end) = (first.lsn, last.lsn);
        for (i, f) in fresh.iter().enumerate() {
            if f.lsn != start + i as u64 {
                return Err(HyError::Storage(format!(
                    "archive span {start}..={end} has an LSN hole at {}",
                    f.lsn
                )));
            }
        }
        let mut buf = Vec::with_capacity(fresh.iter().map(|f| f.payload.len() + 8).sum());
        wire::put_u32(&mut buf, WAL_MAGIC);
        wire::put_u32(&mut buf, WAL_VERSION);
        for f in &fresh {
            wire::put_u32(&mut buf, f.payload.len() as u32);
            wire::put_u32(&mut buf, f.crc);
            buf.extend_from_slice(&f.payload);
        }
        let name = span_file_name(start, end);
        let tmp = self.dir.join(format!("{name}.tmp"));
        let dest = self.dir.join(&name);
        let mut f = self.vfs.create(&tmp)?;
        f.write_all(&buf)?;
        f.sync()?;
        drop(f);
        self.vfs.sync_dir(&self.dir)?;
        self.vfs.crash_point(CP_ARCHIVE_ROTATE)?;
        self.vfs.rename(&tmp, &dest)?;
        self.vfs.sync_dir(&self.dir)?;
        write_watermark(self.vfs.as_ref(), &self.dir, end)?;
        self.watermark = end;
        self.metrics.counter("archive.spans").inc();
        self.metrics
            .counter("archive.frames")
            .add(fresh.len() as u64);
        self.metrics.counter("archive.bytes").add(buf.len() as u64);
        Ok(fresh.len() as u64)
    }
}

/// Read the watermark file (0 when absent or empty).
pub fn read_watermark(vfs: &dyn Vfs, dir: &Path) -> Result<u64> {
    let path = dir.join(ARCHIVE_WATERMARK_FILE);
    if !vfs.exists(&path) {
        return Ok(0);
    }
    let bytes = vfs.read(&path)?;
    if bytes.len() != 8 {
        return Err(HyError::Storage(format!(
            "archive watermark file is {} bytes (want 8) — archive corrupted",
            bytes.len()
        )));
    }
    Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
}

fn write_watermark(vfs: &dyn Vfs, dir: &Path, lsn: u64) -> Result<()> {
    let tmp = dir.join(format!("{ARCHIVE_WATERMARK_FILE}.tmp"));
    let dest = dir.join(ARCHIVE_WATERMARK_FILE);
    let mut f = vfs.create(&tmp)?;
    f.write_all(&lsn.to_le_bytes())?;
    f.sync()?;
    drop(f);
    vfs.rename(&tmp, &dest)?;
    vfs.sync_dir(dir)?;
    Ok(())
}

/// Read every archived frame into an LSN-ordered map, verifying each
/// span delivers *exactly* the LSN range its name declares. A span that
/// scans short (torn tail), starts late, or skips an LSN is detected
/// here — restore refuses to build a history with silent holes.
pub fn read_archived_frames(vfs: &dyn Vfs, dir: &Path) -> Result<BTreeMap<u64, RawFrame>> {
    let mut frames = BTreeMap::new();
    // `list_dir` yields nothing for a missing directory (and FaultVfs
    // tracks only files, so an exists() check on the dir would misfire).
    let mut spans: Vec<(u64, u64, String)> = vfs
        .list_dir(dir)?
        .into_iter()
        .filter_map(|name| parse_span_file_name(&name).map(|(s, e)| (s, e, name)))
        .collect();
    spans.sort();
    for (start, end, name) in spans {
        let path = dir.join(&name);
        let scanned = scan_wal_raw(vfs, &path)?;
        let want = (end - start + 1) as usize;
        if scanned.len() != want
            || scanned.first().map(|f| f.lsn) != Some(start)
            || scanned.last().map(|f| f.lsn) != Some(end)
        {
            return Err(HyError::Storage(format!(
                "archive span {name} is torn: declares lsn {start}..={end} \
                 ({want} frames) but {} valid frames scanned",
                scanned.len()
            )));
        }
        for (i, f) in scanned.iter().enumerate() {
            if f.lsn != start + i as u64 {
                return Err(HyError::Storage(format!(
                    "archive span {name} has an LSN hole at {}",
                    f.lsn
                )));
            }
        }
        for f in scanned {
            frames.insert(f.lsn, f);
        }
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::encode_commit_frame;
    use hylite_common::{crc32, Chunk, ColumnVector, FaultVfs};

    fn frame(lsn: u64) -> RawFrame {
        let full = encode_commit_frame(
            lsn,
            &[crate::wal::RedoOp::Insert {
                table: "t".into(),
                rows: Chunk::new(vec![ColumnVector::from_i64(vec![lsn as i64])]),
            }],
        );
        let payload = full[8..].to_vec();
        RawFrame {
            lsn,
            crc: crc32(&payload),
            payload,
        }
    }

    fn archive(fault: &FaultVfs) -> WalArchive {
        WalArchive::open(
            Arc::new(fault.clone()),
            PathBuf::from("archive"),
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap()
    }

    #[test]
    fn spans_accumulate_and_watermark_advances() {
        let fault = FaultVfs::new();
        let mut a = archive(&fault);
        assert_eq!(a.archive_frames(&[frame(1), frame(2)]).unwrap(), 2);
        assert_eq!(a.watermark(), 2);
        // Re-archiving the same frames is a no-op; new frames roll a span.
        assert_eq!(a.archive_frames(&[frame(1), frame(2)]).unwrap(), 0);
        assert_eq!(
            a.archive_frames(&[frame(2), frame(3), frame(4)]).unwrap(),
            2
        );
        assert_eq!(a.watermark(), 4);
        let all = read_archived_frames(&fault, Path::new("archive")).unwrap();
        assert_eq!(all.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        // Watermark survives reopen.
        let a2 = archive(&fault);
        assert_eq!(a2.watermark(), 4);
    }

    #[test]
    fn span_names_roundtrip() {
        let name = span_file_name(3, 17);
        assert_eq!(parse_span_file_name(&name), Some((3, 17)));
        assert_eq!(parse_span_file_name("archive.lsn"), None);
        assert_eq!(parse_span_file_name(&format!("{name}.tmp")), None);
    }

    #[test]
    fn torn_span_is_detected_at_read() {
        let fault = FaultVfs::new();
        let mut a = archive(&fault);
        a.archive_frames(&[frame(1), frame(2), frame(3)]).unwrap();
        // Truncate the span mid-frame: the name still promises 1..=3.
        let path = Path::new("archive").join(span_file_name(1, 3));
        let len = fault.file_len(&path).unwrap() as u64;
        fault.truncate(&path, len - 5).unwrap();
        let err = read_archived_frames(&fault, Path::new("archive")).unwrap_err();
        assert!(err.message().contains("torn"), "{err}");
    }

    #[test]
    fn crash_before_rename_leaves_no_span() {
        let fault = FaultVfs::new();
        let mut a = archive(&fault);
        fault.arm_crash(hylite_common::faultfs::CrashSpec::first(CP_ARCHIVE_ROTATE));
        assert!(a.archive_frames(&[frame(1)]).is_err());
        assert!(fault.crashed());
        fault.reboot();
        // Reopen: scratch swept, watermark unmoved, nothing half-visible.
        let a2 = archive(&fault);
        assert_eq!(a2.watermark(), 0);
        assert!(read_archived_frames(&fault, Path::new("archive"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn frames_with_holes_are_rejected() {
        let fault = FaultVfs::new();
        let mut a = archive(&fault);
        assert!(a.archive_frames(&[frame(1), frame(3)]).is_err());
    }
}
