//! A byte-capped block cache between disk-backed segments and scans.
//!
//! Sealed segments live on disk (see [`crate::segment`]); scans pull
//! individual column blocks through this pool. The pool hands out
//! `Arc<ColumnVector>`s, so an in-flight scan keeps its blocks alive even
//! if they are evicted underneath it — eviction only drops the pool's own
//! reference.
//!
//! Eviction is second-chance clock: every hit sets a referenced bit, the
//! clock hand clears it on first pass and evicts on second. This gives
//! LRU-like behavior without per-access list surgery — one mutex, O(1)
//! amortized per operation.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hylite_common::telemetry::{Counter, Gauge, MetricsRegistry};
use hylite_common::{ColumnVector, Result};

/// Cache key: (segment id, column index, block index).
pub type BlockKey = (u64, u32, u32);

struct Slot {
    data: Arc<ColumnVector>,
    bytes: usize,
    referenced: bool,
}

#[derive(Default)]
struct PoolInner {
    slots: HashMap<BlockKey, Slot>,
    clock: VecDeque<BlockKey>,
    used: usize,
}

/// Point-in-time pool statistics (for the `hylite.storage` view).
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    /// Configured capacity in bytes.
    pub cap_bytes: usize,
    /// Bytes currently cached.
    pub used_bytes: usize,
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to load from disk.
    pub misses: u64,
    /// Blocks evicted to stay under the cap.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit fraction in `[0, 1]`; `1.0` when there were no lookups yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The block cache. Cheap to share (`Arc` it); all methods take `&self`.
pub struct BufferPool {
    cap: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    m_hits: Arc<Counter>,
    m_misses: Arc<Counter>,
    m_evictions: Arc<Counter>,
    m_bytes: Arc<Gauge>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("cap_bytes", &s.cap_bytes)
            .field("used_bytes", &s.used_bytes)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl BufferPool {
    /// A pool holding at most `cap_bytes` of decoded blocks. Telemetry
    /// lands in `metrics` under `storage.pool.*`.
    pub fn new(cap_bytes: usize, metrics: &MetricsRegistry) -> BufferPool {
        BufferPool {
            cap: cap_bytes,
            inner: Mutex::new(PoolInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            m_hits: metrics.counter("storage.pool.hits"),
            m_misses: metrics.counter("storage.pool.misses"),
            m_evictions: metrics.counter("storage.pool.evictions"),
            m_bytes: metrics.gauge("storage.pool.bytes"),
        }
    }

    /// Configured capacity in bytes.
    pub fn cap_bytes(&self) -> usize {
        self.cap
    }

    /// Fetch a block, loading (and caching) it on a miss. The loader runs
    /// outside the pool lock, so a slow disk read does not serialize every
    /// other scan; two racing loads of the same block both succeed and one
    /// result wins the cache slot.
    pub fn get_or_load(
        &self,
        key: BlockKey,
        load: impl FnOnce() -> Result<Arc<ColumnVector>>,
    ) -> Result<Arc<ColumnVector>> {
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(slot) = inner.slots.get_mut(&key) {
                slot.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.m_hits.inc();
                return Ok(Arc::clone(&slot.data));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.m_misses.inc();
        let data = load()?;
        let bytes = data.heap_bytes().max(1);
        if bytes > self.cap {
            // A block bigger than the whole pool: hand it out uncached
            // rather than flushing everything else for a one-shot read.
            return Ok(data);
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some(slot) = inner.slots.get_mut(&key) {
            // Racing load landed first; keep its copy.
            slot.referenced = true;
            return Ok(Arc::clone(&slot.data));
        }
        inner.slots.insert(
            key,
            Slot {
                data: Arc::clone(&data),
                bytes,
                referenced: false,
            },
        );
        inner.clock.push_back(key);
        inner.used += bytes;
        self.evict_to_cap(&mut inner);
        self.m_bytes.set(inner.used as i64);
        Ok(data)
    }

    fn evict_to_cap(&self, inner: &mut PoolInner) {
        while inner.used > self.cap {
            let Some(key) = inner.clock.pop_front() else {
                break;
            };
            let Some(slot) = inner.slots.get_mut(&key) else {
                continue; // stale clock entry
            };
            if slot.referenced {
                slot.referenced = false;
                inner.clock.push_back(key);
                continue;
            }
            let bytes = slot.bytes;
            inner.slots.remove(&key);
            inner.used -= bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.m_evictions.inc();
        }
    }

    /// Drop every cached block of one segment (after its file is garbage
    /// collected). Stale clock entries are skipped lazily by the hand.
    pub fn evict_segment(&self, segment_id: u64) {
        let mut inner = self.inner.lock().unwrap();
        let keys: Vec<BlockKey> = inner
            .slots
            .keys()
            .filter(|(sid, _, _)| *sid == segment_id)
            .copied()
            .collect();
        for key in keys {
            if let Some(slot) = inner.slots.remove(&key) {
                inner.used -= slot.bytes;
            }
        }
        self.m_bytes.set(inner.used as i64);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PoolStats {
        let used = self.inner.lock().unwrap().used;
        PoolStats {
            cap_bytes: self.cap,
            used_bytes: used,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize, fill: i64) -> Arc<ColumnVector> {
        Arc::new(ColumnVector::from_i64(vec![fill; n]))
    }

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(cap, &MetricsRegistry::new())
    }

    #[test]
    fn hit_after_load() {
        let p = pool(1 << 20);
        let a = p.get_or_load((1, 0, 0), || Ok(block(10, 7))).unwrap();
        let b = p
            .get_or_load((1, 0, 0), || panic!("must be cached"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn cap_is_enforced_by_eviction() {
        // Each block is 100 i64s = 800 bytes; cap fits two.
        let p = pool(1700);
        for i in 0..5u32 {
            p.get_or_load((1, 0, i), || Ok(block(100, i as i64)))
                .unwrap();
        }
        let s = p.stats();
        assert!(s.used_bytes <= 1700, "{} over cap", s.used_bytes);
        assert!(s.evictions >= 3);
        // Evicted blocks reload fine.
        let v = p.get_or_load((1, 0, 0), || Ok(block(100, 0))).unwrap();
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn recently_hit_blocks_survive_the_clock() {
        let p = pool(1700);
        p.get_or_load((1, 0, 0), || Ok(block(100, 0))).unwrap();
        p.get_or_load((1, 0, 1), || Ok(block(100, 1))).unwrap();
        // Touch block 0 so it has its referenced bit set...
        p.get_or_load((1, 0, 0), || panic!("cached")).unwrap();
        // ...then force one eviction: block 1 (unreferenced) must go first.
        p.get_or_load((1, 0, 2), || Ok(block(100, 2))).unwrap();
        p.get_or_load((1, 0, 0), || panic!("survived the clock"))
            .unwrap();
    }

    #[test]
    fn oversized_block_is_not_cached() {
        let p = pool(100);
        p.get_or_load((1, 0, 0), || Ok(block(1000, 1))).unwrap();
        assert_eq!(p.stats().used_bytes, 0);
    }

    #[test]
    fn evict_segment_clears_only_that_segment() {
        let p = pool(1 << 20);
        p.get_or_load((1, 0, 0), || Ok(block(10, 1))).unwrap();
        p.get_or_load((2, 0, 0), || Ok(block(10, 2))).unwrap();
        p.evict_segment(1);
        let mut loaded = false;
        p.get_or_load((1, 0, 0), || {
            loaded = true;
            Ok(block(10, 1))
        })
        .unwrap();
        assert!(loaded, "segment 1 was dropped");
        p.get_or_load((2, 0, 0), || panic!("segment 2 untouched"))
            .unwrap();
    }
}
