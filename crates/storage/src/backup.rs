//! Online backups and point-in-time restore.
//!
//! A backup is a directory that pins one consistent moment of the
//! database — `(manifest, base_lsn, backup_lsn, epoch)` — captured while
//! holding the commit lock for only as long as it takes to read the
//! manifest and the durable WAL prefix into memory. Segment files are
//! copied *outside* any lock: they are immutable once sealed, and if a
//! concurrent checkpoint GCs one mid-copy the caller simply re-pins and
//! retries.
//!
//! ## Backup directory layout
//!
//! ```text
//! <backup-dir>/
//!     segments/seg_*.hyseg   -- CRC-validated copies of sealed segments
//!     checkpoint.hylite      -- manifest copy (absent pre-first-checkpoint)
//!     wal.hylite             -- durable WAL prefix at pin time
//!     backup.hylite          -- metadata ("HYBK"), written LAST
//! ```
//!
//! The metadata file is the commit record: it is published tmp → fsync →
//! rename only after every other file is durable, so a directory without
//! a valid `backup.hylite` is an interrupted backup and restore refuses
//! it. The [`CP_BACKUP_SEG_COPY`] crash point fires before each segment
//! copy to prove exactly that in the crash matrix.
//!
//! ## Incremental chains
//!
//! `BACKUP TO 'dir' FROM 'base'` copies only segment ids absent from the
//! base backup's chain and records the base path in its metadata.
//! Restore resolves the chain child → parent, reading each segment from
//! the nearest backup that holds it, so chains must stay at their
//! recorded paths. Chains only make sense against backups of the *same*
//! data directory (segment ids are per-directory).
//!
//! ## Restore
//!
//! [`restore_backup`] materialises a fresh data directory: validated
//! segment copies + the manifest + a rebuilt WAL holding the contiguous
//! frames from `base_lsn` up to the target LSN, merged from the backup's
//! WAL copy and any archive spans (see [`crate::archive`]). Replication
//! state is deliberately *not* restored — the first primary open of the
//! restored directory mints a fresh epoch, so a restored node can never
//! splice into its old fleet.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use hylite_common::faultfs::Vfs;
use hylite_common::wire::{self, ByteReader};
use hylite_common::{crc32, HyError, Result};

use crate::archive::read_archived_frames;
use crate::checkpoint::{decode_manifest, CHECKPOINT_FILE};
use crate::segment::{segment_file_name, validate_segment_bytes, SegmentStore, SEGMENT_DIR};
use crate::wal::{scan_wal_raw, RawFrame, WAL_FILE, WAL_MAGIC, WAL_VERSION};

/// Magic number opening a backup metadata file (`"HYBK"`).
pub const BACKUP_MAGIC: u32 = 0x4859_424B;
/// Backup metadata format version.
pub const BACKUP_VERSION: u32 = 1;
/// Metadata file name — its presence marks a *completed* backup.
pub const BACKUP_META_FILE: &str = "backup.hylite";
/// Crash point: before each segment file is copied into the backup.
pub const CP_BACKUP_SEG_COPY: &str = "backup.segment_copy";
/// Error-message marker for a segment GC'd mid-copy; the caller re-pins
/// and retries on it.
pub const SEGMENT_VANISHED: &str = "vanished during backup";
/// Longest incremental chain restore will follow (cycle guard).
const MAX_CHAIN_DEPTH: usize = 64;

/// Metadata sealing a completed backup.
#[derive(Debug, Clone, PartialEq)]
pub struct BackupMeta {
    /// The pinned manifest's base LSN (0 when no checkpoint existed).
    pub base_lsn: u64,
    /// Highest LSN whose effects the backup contains (manifest + WAL copy).
    pub backup_lsn: u64,
    /// The source node's epoch at pin time (informational: restore mints
    /// a fresh one).
    pub epoch: u64,
    /// Whether the `--verify` full rescan ran before this was written.
    pub verified: bool,
    /// Path of the incremental base backup, if any.
    pub base: Option<String>,
    /// Segment ids physically copied into this backup.
    pub copied_segments: Vec<u64>,
    /// Referenced segment ids held by the base chain instead.
    pub base_segments: Vec<u64>,
    /// Bytes copied into this backup (segments + WAL + manifest).
    pub bytes: u64,
}

/// Serialize backup metadata (CRC-framed like every HyLite file).
pub fn encode_backup_meta(meta: &BackupMeta) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    wire::put_u32(&mut buf, BACKUP_MAGIC);
    wire::put_u32(&mut buf, BACKUP_VERSION);
    wire::put_u64(&mut buf, meta.base_lsn);
    wire::put_u64(&mut buf, meta.backup_lsn);
    wire::put_u64(&mut buf, meta.epoch);
    buf.push(u8::from(meta.verified));
    match &meta.base {
        Some(base) => {
            buf.push(1);
            wire::put_str(&mut buf, base);
        }
        None => buf.push(0),
    }
    wire::put_u32(&mut buf, meta.copied_segments.len() as u32);
    for &id in &meta.copied_segments {
        wire::put_u64(&mut buf, id);
    }
    wire::put_u32(&mut buf, meta.base_segments.len() as u32);
    for &id in &meta.base_segments {
        wire::put_u64(&mut buf, id);
    }
    wire::put_u64(&mut buf, meta.bytes);
    let crc = crc32(&buf);
    wire::put_u32(&mut buf, crc);
    buf
}

/// Parse and verify backup metadata. Any damage is a hard error: a
/// backup that cannot prove what it contains must not be restored.
pub fn decode_backup_meta(bytes: &[u8]) -> Result<BackupMeta> {
    if bytes.len() < 16 {
        return Err(HyError::Storage(format!(
            "backup metadata is {} bytes — too short to be valid",
            bytes.len()
        )));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err(HyError::Storage(
            "backup metadata failed its CRC check (corrupted)".into(),
        ));
    }
    let mut r = ByteReader::new(body);
    let magic = r.u32()?;
    if magic != BACKUP_MAGIC {
        return Err(HyError::Storage(format!(
            "not a HyLite backup (magic {magic:#010x})"
        )));
    }
    let version = r.u32()?;
    if version != BACKUP_VERSION {
        return Err(HyError::Storage(format!(
            "backup version {version} not supported (this build reads {BACKUP_VERSION})"
        )));
    }
    let base_lsn = r.u64()?;
    let backup_lsn = r.u64()?;
    let epoch = r.u64()?;
    let verified = r.u8()? != 0;
    let base = if r.u8()? != 0 { Some(r.str()?) } else { None };
    let ncopied = r.u32()? as usize;
    let mut copied_segments = Vec::with_capacity(ncopied.min(r.remaining() / 8));
    for _ in 0..ncopied {
        copied_segments.push(r.u64()?);
    }
    let nbase = r.u32()? as usize;
    let mut base_segments = Vec::with_capacity(nbase.min(r.remaining() / 8));
    for _ in 0..nbase {
        base_segments.push(r.u64()?);
    }
    let bytes_copied = r.u64()?;
    if !r.is_empty() {
        return Err(HyError::Storage(
            "backup metadata has trailing bytes".into(),
        ));
    }
    Ok(BackupMeta {
        base_lsn,
        backup_lsn,
        epoch,
        verified,
        base,
        copied_segments,
        base_segments,
        bytes: bytes_copied,
    })
}

/// Read and decode a backup directory's metadata. A directory without
/// one is an interrupted (or foreign) backup and is refused.
pub fn read_backup_meta(vfs: &dyn Vfs, dir: &Path) -> Result<BackupMeta> {
    let path = dir.join(BACKUP_META_FILE);
    if !vfs.exists(&path) {
        return Err(HyError::Storage(format!(
            "{} is not a completed backup: {BACKUP_META_FILE} is missing \
             (the backup was interrupted or never finished)",
            dir.display()
        )));
    }
    decode_backup_meta(&vfs.read(&path)?)
}

/// The consistent moment a backup captures, read under the commit lock.
#[derive(Debug)]
pub struct BackupPin {
    /// `checkpoint.hylite` bytes at pin time (`None` pre-first-checkpoint).
    pub manifest: Option<Vec<u8>>,
    /// The durable WAL prefix at pin time (header included).
    pub wal: Vec<u8>,
    /// Highest LSN the pin covers (`next_lsn - 1`).
    pub backup_lsn: u64,
    /// Source node epoch at pin time.
    pub epoch: u64,
}

/// What a completed backup did; surfaced through SQL, the wire frame,
/// and the `hylite.backups` system view.
#[derive(Debug, Clone)]
pub struct BackupSummary {
    /// Where the backup was written.
    pub dest: PathBuf,
    /// The pinned manifest's base LSN.
    pub base_lsn: u64,
    /// Highest LSN the backup contains.
    pub backup_lsn: u64,
    /// Segment files physically copied (incremental backups copy fewer).
    pub segments_copied: u64,
    /// Bytes copied (segments + WAL + manifest).
    pub bytes: u64,
    /// Whether the full verify rescan ran.
    pub verified: bool,
    /// Whether this backup rides on an incremental base.
    pub incremental: bool,
}

/// Resolve an incremental chain child → parent, starting at (and
/// including) `dir`. Metadata of every link is validated on the way.
pub fn resolve_chain(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<(PathBuf, BackupMeta)>> {
    let mut chain = Vec::new();
    let mut cur = dir.to_path_buf();
    loop {
        if chain.len() >= MAX_CHAIN_DEPTH {
            return Err(HyError::Storage(format!(
                "backup chain from {} exceeds {MAX_CHAIN_DEPTH} links (cycle?)",
                dir.display()
            )));
        }
        let meta = read_backup_meta(vfs, &cur)?;
        let base = meta.base.clone();
        chain.push((cur, meta));
        match base {
            Some(b) => cur = PathBuf::from(b),
            None => return Ok(chain),
        }
    }
}

/// Write a pinned backup to `dest`. Segment copies are CRC-validated on
/// read; `verify` re-scans every file from `dest` before the metadata is
/// published. A segment GC'd between pin and copy fails with a
/// [`SEGMENT_VANISHED`] error the caller retries with a fresh pin.
pub fn write_backup(
    vfs: &Arc<dyn Vfs>,
    store: &Arc<SegmentStore>,
    dest: &Path,
    base: Option<&Path>,
    verify: bool,
    pin: BackupPin,
) -> Result<BackupSummary> {
    if vfs.exists(&dest.join(BACKUP_META_FILE)) {
        return Err(HyError::Storage(format!(
            "{} is already a completed backup; refusing to overwrite",
            dest.display()
        )));
    }
    let (base_lsn, referenced) = match &pin.manifest {
        Some(bytes) => {
            let image = decode_manifest(bytes)?;
            let mut ids: Vec<u64> = image.referenced_segments().into_iter().collect();
            ids.sort_unstable();
            (image.base_lsn, ids)
        }
        None => (0, Vec::new()),
    };
    // Incremental: segment ids the base chain already holds need no copy.
    let held: std::collections::HashSet<u64> = match base {
        Some(b) => resolve_chain(vfs.as_ref(), b)?
            .iter()
            .flat_map(|(_, m)| m.copied_segments.iter().copied())
            .collect(),
        None => Default::default(),
    };
    let seg_dir = dest.join(SEGMENT_DIR);
    vfs.create_dir_all(&seg_dir)?;
    let mut copied_segments = Vec::new();
    let mut base_segments = Vec::new();
    let mut bytes_copied = 0u64;
    for &id in &referenced {
        if held.contains(&id) {
            base_segments.push(id);
            continue;
        }
        vfs.crash_point(CP_BACKUP_SEG_COPY)?;
        let bytes = store.read_file(id).map_err(|e| {
            HyError::Storage(format!(
                "segment {id} {SEGMENT_VANISHED} (checkpoint GC raced the copy): {e}"
            ))
        })?;
        let meta = validate_segment_bytes(&bytes)?;
        if meta.id != id {
            return Err(HyError::Storage(format!(
                "segment file for id {id} declares id {} — store corrupted",
                meta.id
            )));
        }
        let mut f = vfs.create(&seg_dir.join(segment_file_name(id)))?;
        f.write_all(&bytes)?;
        f.sync()?;
        bytes_copied += bytes.len() as u64;
        copied_segments.push(id);
    }
    vfs.sync_dir(&seg_dir)?;
    if let Some(manifest) = &pin.manifest {
        let mut f = vfs.create(&dest.join(CHECKPOINT_FILE))?;
        f.write_all(manifest)?;
        f.sync()?;
        bytes_copied += manifest.len() as u64;
    }
    let mut f = vfs.create(&dest.join(WAL_FILE))?;
    f.write_all(&pin.wal)?;
    f.sync()?;
    bytes_copied += pin.wal.len() as u64;
    vfs.sync_dir(dest)?;

    if verify {
        verify_backup_files(vfs.as_ref(), dest, &copied_segments)?;
    }

    let meta = BackupMeta {
        base_lsn,
        backup_lsn: pin.backup_lsn,
        epoch: pin.epoch,
        verified: verify,
        base: base.map(|b| b.display().to_string()),
        copied_segments,
        base_segments,
        bytes: bytes_copied,
    };
    let encoded = encode_backup_meta(&meta);
    let tmp = dest.join(format!("{BACKUP_META_FILE}.tmp"));
    let mut f = vfs.create(&tmp)?;
    f.write_all(&encoded)?;
    f.sync()?;
    drop(f);
    vfs.sync_dir(dest)?;
    vfs.rename(&tmp, &dest.join(BACKUP_META_FILE))?;
    vfs.sync_dir(dest)?;
    Ok(BackupSummary {
        dest: dest.to_path_buf(),
        base_lsn,
        backup_lsn: meta.backup_lsn,
        segments_copied: meta.copied_segments.len() as u64,
        bytes: meta.bytes,
        verified: verify,
        incremental: meta.base.is_some(),
    })
}

/// Full verify rescan: every copied segment re-read from the backup and
/// CRC-validated, the manifest re-decoded, the WAL copy re-scanned.
fn verify_backup_files(vfs: &dyn Vfs, dest: &Path, copied: &[u64]) -> Result<()> {
    for &id in copied {
        let bytes = vfs.read(&dest.join(SEGMENT_DIR).join(segment_file_name(id)))?;
        let meta = validate_segment_bytes(&bytes)?;
        if meta.id != id {
            return Err(HyError::Storage(format!(
                "backup verify: segment copy {id} declares id {}",
                meta.id
            )));
        }
    }
    let ckpt = dest.join(CHECKPOINT_FILE);
    if vfs.exists(&ckpt) {
        decode_manifest(&vfs.read(&ckpt)?)?;
    }
    scan_wal_raw(vfs, &dest.join(WAL_FILE))?;
    Ok(())
}

/// What a restore materialised.
#[derive(Debug, Clone)]
pub struct RestoreSummary {
    /// The restored manifest's base LSN.
    pub base_lsn: u64,
    /// Highest LSN the restored WAL replays to (the PITR target).
    pub restored_lsn: u64,
    /// Segment files materialised into the new data directory.
    pub segments: u64,
    /// WAL frames written into the new data directory.
    pub wal_frames: u64,
    /// Bytes written in total.
    pub bytes: u64,
}

impl RestoreSummary {
    /// One-line human-readable summary (the server logs this).
    pub fn summary(&self) -> String {
        format!(
            "restored to lsn {} ({} segments, {} wal frames, {} bytes; manifest base lsn {})",
            self.restored_lsn, self.segments, self.wal_frames, self.bytes, self.base_lsn
        )
    }
}

/// Materialise `backup_dir` (plus `archive_dir` spans, if given) into a
/// fresh `dest_dir`, cut strictly at `to_lsn` (or the highest contiguous
/// LSN available). The result is a normal data directory the existing
/// recovery path opens; replication state is not carried over, so the
/// first primary open mints a fresh epoch.
pub fn restore_backup(
    vfs: &Arc<dyn Vfs>,
    backup_dir: &Path,
    archive_dir: Option<&Path>,
    dest_dir: &Path,
    to_lsn: Option<u64>,
) -> Result<RestoreSummary> {
    let chain = resolve_chain(vfs.as_ref(), backup_dir)?;
    // `list_dir` is empty for a missing directory (and FaultVfs tracks
    // only files, so exists() on the dir itself would always miss).
    if !vfs.list_dir(dest_dir)?.is_empty() {
        return Err(HyError::Storage(format!(
            "restore target {} is not empty; refusing to overwrite",
            dest_dir.display()
        )));
    }
    let dest_segs = dest_dir.join(SEGMENT_DIR);
    vfs.create_dir_all(&dest_segs)?;

    let mut bytes_written = 0u64;
    let ckpt_src = backup_dir.join(CHECKPOINT_FILE);
    let (base_lsn, referenced) = if vfs.exists(&ckpt_src) {
        let bytes = vfs.read(&ckpt_src)?;
        let image = decode_manifest(&bytes)?;
        let mut ids: Vec<u64> = image.referenced_segments().into_iter().collect();
        ids.sort_unstable();
        let mut f = vfs.create(&dest_dir.join(CHECKPOINT_FILE))?;
        f.write_all(&bytes)?;
        f.sync()?;
        bytes_written += bytes.len() as u64;
        (image.base_lsn, ids)
    } else {
        (0, Vec::new())
    };

    // Copy every referenced segment from the nearest chain link holding it.
    for &id in &referenced {
        let name = segment_file_name(id);
        let src = chain
            .iter()
            .find(|(_, m)| m.copied_segments.contains(&id))
            .map(|(dir, _)| dir.join(SEGMENT_DIR).join(&name))
            .ok_or_else(|| {
                HyError::Storage(format!(
                    "backup chain from {} holds no copy of segment {id}",
                    backup_dir.display()
                ))
            })?;
        let bytes = vfs.read(&src)?;
        let seg_meta = validate_segment_bytes(&bytes)?;
        if seg_meta.id != id {
            return Err(HyError::Storage(format!(
                "backup segment copy {id} declares id {} — backup corrupted",
                seg_meta.id
            )));
        }
        let mut f = vfs.create(&dest_segs.join(&name))?;
        f.write_all(&bytes)?;
        f.sync()?;
        bytes_written += bytes.len() as u64;
    }
    vfs.sync_dir(&dest_segs)?;

    // Merge the commit history: the backup's WAL copy plus every archive
    // span. Same-LSN frames are identical by construction (both are
    // CRC-verified copies of the primary's log).
    let mut frames: BTreeMap<u64, RawFrame> = BTreeMap::new();
    for f in scan_wal_raw(vfs.as_ref(), &backup_dir.join(WAL_FILE))? {
        frames.insert(f.lsn, f);
    }
    if let Some(adir) = archive_dir {
        for (lsn, f) in read_archived_frames(vfs.as_ref(), adir)? {
            frames.insert(lsn, f);
        }
    }

    // The manifest already contains every commit below base_lsn; replay
    // starts there. Walk the contiguous run to find what is reachable.
    let start = base_lsn.max(1);
    let mut highest = start - 1;
    while frames.contains_key(&(highest + 1)) {
        highest += 1;
    }
    let target = match to_lsn {
        Some(t) => {
            if t + 1 < start {
                return Err(HyError::Storage(format!(
                    "cannot restore to lsn {t}: the backup's checkpoint already \
                     contains every commit below lsn {base_lsn}; use an older base backup"
                )));
            }
            if t > highest {
                return Err(HyError::Storage(format!(
                    "cannot restore to lsn {t}: backup + archive only reach lsn {highest} \
                     contiguously"
                )));
            }
            t
        }
        None => highest,
    };

    let mut wal_bytes = Vec::new();
    wire::put_u32(&mut wal_bytes, WAL_MAGIC);
    wire::put_u32(&mut wal_bytes, WAL_VERSION);
    let mut wal_frames = 0u64;
    // `start..=target` is empty when target == start - 1 (pure-checkpoint
    // restore): the WAL is just its header.
    for lsn in start..=target {
        let f = &frames[&lsn];
        wire::put_u32(&mut wal_bytes, f.payload.len() as u32);
        wire::put_u32(&mut wal_bytes, f.crc);
        wal_bytes.extend_from_slice(&f.payload);
        wal_frames += 1;
    }
    let mut f = vfs.create(&dest_dir.join(WAL_FILE))?;
    f.write_all(&wal_bytes)?;
    f.sync()?;
    bytes_written += wal_bytes.len() as u64;
    vfs.sync_dir(dest_dir)?;

    Ok(RestoreSummary {
        base_lsn,
        restored_lsn: target,
        segments: referenced.len() as u64,
        wal_frames,
        bytes: bytes_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> BackupMeta {
        BackupMeta {
            base_lsn: 7,
            backup_lsn: 12,
            epoch: 3,
            verified: true,
            base: Some("backups/full".into()),
            copied_segments: vec![4, 9],
            base_segments: vec![1, 2],
            bytes: 4096,
        }
    }

    #[test]
    fn meta_roundtrips() {
        let m = meta();
        assert_eq!(decode_backup_meta(&encode_backup_meta(&m)).unwrap(), m);
        let mut no_base = m;
        no_base.base = None;
        assert_eq!(
            decode_backup_meta(&encode_backup_meta(&no_base)).unwrap(),
            no_base
        );
    }

    #[test]
    fn meta_corruption_is_a_hard_error() {
        let bytes = encode_backup_meta(&meta());
        let mut bad = bytes.clone();
        bad[10] ^= 0x04;
        assert!(decode_backup_meta(&bad).is_err());
        assert!(decode_backup_meta(&bytes[..bytes.len() - 2]).is_err());
        assert!(decode_backup_meta(&[]).is_err());
        let mut trailing = bytes;
        trailing.insert(trailing.len() - 4, 0);
        assert!(decode_backup_meta(&trailing).is_err());
    }

    #[test]
    fn missing_meta_marks_an_incomplete_backup() {
        let fault = hylite_common::FaultVfs::new();
        let err = read_backup_meta(&fault, Path::new("backups/half")).unwrap_err();
        assert!(err.message().contains("not a completed backup"), "{err}");
    }
}
