//! Immutable compressed column segments with per-block zone maps.
//!
//! A sealed segment is one table segment's worth of rows (at most
//! [`crate::SEGMENT_ROWS`]) written to its own file, column by column, in
//! blocks of [`BLOCK_ROWS`] rows. Each block is independently encoded,
//! CRC-framed, and carries a zone map (min/max over non-NULL values plus
//! a NULL count), so a scan with a range predicate can skip whole blocks
//! without reading them — the Shark-style "cold data becomes skipped
//! I/O" property — and a buffer-pool read pulls exactly one block.
//!
//! ## File layout
//!
//! ```text
//! prelude (16 bytes):
//!     [u32 magic "HYSG"] [u32 version] [u32 header_len] [u32 header_crc]
//! header (header_len bytes, covered by header_crc):
//!     [u64 segment_id] [u64 rows] [u64 raw_bytes] [u32 ncols]
//!     [u8 dtype ...ncols]
//!     [u32 nblocks]
//!     directory, ncols * nblocks entries in column-major order:
//!         [u64 offset] [u32 len] [u32 rows] [u8 encoding]
//!         [u32 null_count] [zone min] [zone max]
//! blocks, at their directory offsets:
//!     [payload] [u32 crc32(payload)]
//! ```
//!
//! A zone value is a 1-byte tag (`0` absent, `1` i64, `2` f64, `3` bool,
//! `4` string) followed by the value. Zone maps are absent when a block
//! is all-NULL, contains NaN floats, or holds strings longer than
//! [`MAX_ZONE_STR`] bytes (a truncated string max would prune wrongly).
//!
//! ## Block encodings
//!
//! The encodings *are* the compression — no external codec:
//!
//! * `Plain` — raw values (8-byte ints/floats, bit-packed bools,
//!   length-prefixed strings).
//! * `RleInt` — (value, run-length) pairs for runny int columns.
//! * `ForInt` — frame-of-reference: a base plus bit-packed deltas at the
//!   minimal width for the block's value range.
//! * `DictStr` — sorted unique strings plus bit-packed indexes.
//!
//! Every payload opens with the block's NULL bitmap (if any), so
//! nullability round-trips exactly. The encoder picks whichever encoding
//! is smallest for each block.
//!
//! Decoding is hardened the same way the wire protocol is: lengths are
//! validated against the actual file size *before* any allocation,
//! dictionary indexes are range-checked, run counts must sum to the
//! declared row count, and every block CRC is verified.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, Weak};

use hylite_common::faultfs::Vfs;
use hylite_common::wire::{self, ByteReader};
use hylite_common::{crc32, Bitmap, Chunk, ColumnVector, DataType, HyError, Result, Value};

use crate::pool::BufferPool;

/// Magic number opening a segment file (`"HYSG"`).
pub const SEGMENT_MAGIC: u32 = 0x4859_5347;
/// Segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Rows per encoded block — the zone-map and buffer-pool granularity.
pub const BLOCK_ROWS: usize = 4096;
/// Subdirectory of the data directory holding segment files.
pub const SEGMENT_DIR: &str = "segments";
/// Longest string kept in a zone map; blocks with longer strings carry no
/// zone map (a truncated maximum would prune blocks that in fact match).
pub const MAX_ZONE_STR: usize = 64;
/// Upper bound accepted for `header_len` — rejects forged preludes before
/// the header allocation.
const MAX_HEADER_BYTES: u32 = 16 * 1024 * 1024;
/// Upper bound accepted for column count (matches the wire codec's u16).
const MAX_COLS: usize = u16::MAX as usize;

/// Block encodings (the `encoding` directory byte).
pub mod encoding {
    /// Raw values.
    pub const PLAIN: u8 = 0;
    /// Run-length encoded i64s.
    pub const RLE_INT: u8 = 1;
    /// Frame-of-reference bit-packed i64s.
    pub const FOR_INT: u8 = 2;
    /// Dictionary-encoded strings.
    pub const DICT_STR: u8 = 3;
}

/// File name of segment `id` inside [`SEGMENT_DIR`].
pub fn segment_file_name(id: u64) -> String {
    format!("seg_{id:016x}.hyseg")
}

/// Parse a [`segment_file_name`] back to its id (`None` for foreign files).
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg_")?.strip_suffix(".hyseg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

// ---------------------------------------------------------------------------
// Zone maps
// ---------------------------------------------------------------------------

/// A conjunct usable for zone-map pruning: `lower <= col <= upper` with
/// per-bound inclusivity. The executor extracts these from AND-trees of
/// comparison predicates; columns are indexed in *table* (snapshot)
/// space.
#[derive(Debug, Clone)]
pub struct ZoneRange {
    /// Table column the bounds constrain.
    pub col: usize,
    /// Lower bound and whether it is inclusive.
    pub lower: Option<(Value, bool)>,
    /// Upper bound and whether it is inclusive.
    pub upper: Option<(Value, bool)>,
}

/// Total-order-free comparison between zone values of possibly mixed
/// numeric types. `None` (incomparable, e.g. NaN or type mismatch) makes
/// pruning conservatively keep the block.
fn zone_cmp(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    use Value::*;
    match (a, b) {
        (Int(x), Int(y)) => Some(x.cmp(y)),
        (Float(x), Float(y)) => x.partial_cmp(y),
        (Int(x), Float(y)) => (*x as f64).partial_cmp(y),
        (Float(x), Int(y)) => x.partial_cmp(&(*y as f64)),
        (Bool(x), Bool(y)) => Some(x.cmp(y)),
        (Str(x), Str(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// Zone map + location of one encoded block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Byte offset of the block body from the start of the file.
    pub offset: u64,
    /// Body length in bytes (trailing CRC included).
    pub len: u32,
    /// Rows in this block (`BLOCK_ROWS` except possibly the last).
    pub rows: u32,
    /// One of the [`encoding`] constants.
    pub encoding: u8,
    /// NULL rows in this block.
    pub null_count: u32,
    /// Minimum non-NULL value, if a zone map was recorded.
    pub min: Option<Value>,
    /// Maximum non-NULL value, if a zone map was recorded.
    pub max: Option<Value>,
}

impl BlockMeta {
    /// Whether any row of this block *could* satisfy `range`. False means
    /// the block is provably free of matches and can be skipped. SQL
    /// comparisons with NULL are never true, so an all-NULL block never
    /// matches; a block without a zone map is conservatively kept.
    pub fn may_match(&self, range: &ZoneRange) -> bool {
        use std::cmp::Ordering::*;
        if self.null_count >= self.rows {
            return false;
        }
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            return true;
        };
        if let Some((lo, inclusive)) = &range.lower {
            match zone_cmp(max, lo) {
                Some(Less) => return false,
                Some(Equal) if !inclusive => return false,
                _ => {}
            }
        }
        if let Some((hi, inclusive)) = &range.upper {
            match zone_cmp(min, hi) {
                Some(Greater) => return false,
                Some(Equal) if !inclusive => return false,
                _ => {}
            }
        }
        true
    }
}

/// Decoded segment header: everything needed to prune and to locate
/// blocks, without touching any block data.
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// Segment id (also encoded in the file name).
    pub id: u64,
    /// Total rows in the segment.
    pub rows: usize,
    /// Approximate in-memory (uncompressed) bytes of the sealed chunk,
    /// recorded at encode time — the numerator of the compression ratio.
    pub raw_bytes: u64,
    /// Column types.
    pub dtypes: Vec<DataType>,
    /// Block directory, `blocks[col][block]`.
    pub blocks: Vec<Vec<BlockMeta>>,
    /// Total file size in bytes.
    pub file_len: u64,
}

impl SegmentMeta {
    /// Number of row-blocks (same for every column).
    pub fn nblocks(&self) -> usize {
        self.rows.div_ceil(BLOCK_ROWS)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Bool => 2,
        DataType::Varchar => 3,
        DataType::Null => 4,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Bool,
        3 => DataType::Varchar,
        other => {
            return Err(HyError::Storage(format!(
                "segment: unknown column type tag {other}"
            )))
        }
    })
}

/// Pack `width`-bit values LSB-first into a byte stream.
fn pack_bits(values: impl Iterator<Item = u64>, width: u32, out: &mut Vec<u8>) {
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for v in values {
        let v = if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        };
        acc |= v << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
        // `acc` can hold at most 7 leftover bits plus the next value only
        // if width <= 57; for wider values flush eagerly.
        if width > 57 {
            while nbits > 0 {
                out.push((acc & 0xFF) as u8);
                acc >>= 8;
                nbits = nbits.saturating_sub(8);
            }
            acc = 0;
        }
    }
    while nbits > 0 {
        out.push((acc & 0xFF) as u8);
        acc >>= 8;
        nbits = nbits.saturating_sub(8);
    }
}

/// Unpack `rows` `width`-bit values packed by [`pack_bits`] (width <= 57).
fn unpack_bits(bytes: &[u8], rows: usize, width: u32) -> Result<Vec<u64>> {
    let need = (rows as u64 * width as u64).div_ceil(8) as usize;
    if bytes.len() < need {
        return Err(HyError::Storage(format!(
            "segment block truncated: {need} packed bytes expected, {} present",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(rows);
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    let mut pos = 0usize;
    let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
    for _ in 0..rows {
        while nbits < width {
            acc |= (bytes[pos] as u64) << nbits;
            pos += 1;
            nbits += 8;
        }
        out.push(acc & mask);
        acc >>= width;
        nbits -= width;
    }
    Ok(out)
}

fn put_bitmap_bits(buf: &mut Vec<u8>, len: usize, get: impl Fn(usize) -> bool) {
    let mut byte = 0u8;
    for i in 0..len {
        if get(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !len.is_multiple_of(8) {
        buf.push(byte);
    }
}

fn read_bitmap_bits(r: &mut ByteReader<'_>, len: usize) -> Result<Vec<bool>> {
    let bytes = r.take(len.div_ceil(8))?;
    Ok((0..len)
        .map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1)
        .collect())
}

fn put_zone_value(buf: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => buf.push(0),
        Some(Value::Int(x)) => {
            buf.push(1);
            wire::put_u64(buf, *x as u64);
        }
        Some(Value::Float(x)) => {
            buf.push(2);
            wire::put_u64(buf, x.to_bits());
        }
        Some(Value::Bool(x)) => {
            buf.push(3);
            buf.push(u8::from(*x));
        }
        Some(Value::Str(s)) => {
            buf.push(4);
            wire::put_str(buf, s);
        }
        Some(Value::Null) => buf.push(0),
    }
}

fn read_zone_value(r: &mut ByteReader<'_>) -> Result<Option<Value>> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(Value::Int(r.u64()? as i64)),
        2 => Some(Value::Float(f64::from_bits(r.u64()?))),
        3 => Some(Value::Bool(r.u8()? != 0)),
        4 => Some(Value::Str(r.str()?)),
        other => {
            return Err(HyError::Storage(format!(
                "segment: unknown zone value tag {other}"
            )))
        }
    })
}

fn zone_value_len(v: &Option<Value>) -> usize {
    match v {
        None | Some(Value::Null) => 1,
        Some(Value::Int(_)) | Some(Value::Float(_)) => 9,
        Some(Value::Bool(_)) => 2,
        Some(Value::Str(s)) => 1 + 4 + s.len(),
    }
}

struct EncodedBlock {
    body: Vec<u8>,
    rows: u32,
    encoding: u8,
    null_count: u32,
    min: Option<Value>,
    max: Option<Value>,
}

/// Compute a zone map over the valid values of a block slice.
fn compute_zone(col: &ColumnVector) -> (Option<Value>, Option<Value>) {
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    for i in 0..col.len() {
        if !col.is_valid(i) {
            continue;
        }
        let v = col.value(i);
        match &v {
            Value::Float(f) if f.is_nan() => return (None, None),
            Value::Str(s) if s.len() > MAX_ZONE_STR => return (None, None),
            _ => {}
        }
        match &min {
            None => min = Some(v.clone()),
            Some(m) => {
                if zone_cmp(&v, m) == Some(std::cmp::Ordering::Less) {
                    min = Some(v.clone());
                }
            }
        }
        match &max {
            None => max = Some(v),
            Some(m) => {
                if zone_cmp(&v, m) == Some(std::cmp::Ordering::Greater) {
                    max = Some(v);
                }
            }
        }
    }
    (min, max)
}

fn encode_block(col: &ColumnVector) -> EncodedBlock {
    let rows = col.len();
    let null_count = col.null_count() as u32;
    let (min, max) = compute_zone(col);
    let mut payload = Vec::with_capacity(rows * 8 + rows / 8 + 16);
    match col.validity() {
        Some(bm) if !bm.all_set() => {
            payload.push(1);
            put_bitmap_bits(&mut payload, rows, |i| bm.get(i));
        }
        _ => payload.push(0),
    }
    let enc = match col {
        ColumnVector::Int64 { data, .. } => encode_int_data(data, &mut payload),
        ColumnVector::Float64 { data, .. } => {
            for v in data {
                payload.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            encoding::PLAIN
        }
        ColumnVector::Bool { data, .. } => {
            put_bitmap_bits(&mut payload, rows, |i| data[i]);
            encoding::PLAIN
        }
        ColumnVector::Varchar { data, .. } => encode_str_data(data, &mut payload),
    };
    let crc = crc32(&payload);
    wire::put_u32(&mut payload, crc);
    EncodedBlock {
        body: payload,
        rows: rows as u32,
        encoding: enc,
        null_count,
        min,
        max,
    }
}

/// Pick the smallest of plain / RLE / frame-of-reference for an i64 block
/// and append its encoding-specific bytes.
fn encode_int_data(data: &[i64], payload: &mut Vec<u8>) -> u8 {
    let rows = data.len();
    let plain_size = rows * 8;
    // Run census.
    let mut runs = 0usize;
    let mut prev: Option<i64> = None;
    for &v in data {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    let rle_size = 4 + runs * 12;
    // Frame-of-reference width over the physical values (NULL slots hold
    // the column default and must round-trip bit-exactly too).
    let (phys_min, phys_max) = data
        .iter()
        .fold((i64::MAX, i64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let (for_width, for_size) = if rows == 0 {
        (0u32, usize::MAX)
    } else {
        let range = (phys_max as i128 - phys_min as i128) as u128;
        let width = 128 - range.leading_zeros();
        if width > 57 {
            (0, usize::MAX) // wider than the packer supports: plain wins anyway
        } else {
            (width, 9 + (rows as u64 * width as u64).div_ceil(8) as usize)
        }
    };
    if rle_size < plain_size && rle_size <= for_size {
        wire::put_u32(payload, runs as u32);
        let mut iter = data.iter();
        if let Some(&first) = iter.next() {
            let mut value = first;
            let mut count: u32 = 1;
            for &v in iter {
                if v == value {
                    count += 1;
                } else {
                    wire::put_u64(payload, value as u64);
                    wire::put_u32(payload, count);
                    value = v;
                    count = 1;
                }
            }
            wire::put_u64(payload, value as u64);
            wire::put_u32(payload, count);
        }
        encoding::RLE_INT
    } else if for_size < plain_size {
        wire::put_u64(payload, phys_min as u64);
        payload.push(for_width as u8);
        pack_bits(
            data.iter().map(|&v| (v as i128 - phys_min as i128) as u64),
            for_width,
            payload,
        );
        encoding::FOR_INT
    } else {
        for &v in data {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        encoding::PLAIN
    }
}

/// Dictionary-encode a string block when the dictionary pays for itself.
fn encode_str_data(data: &[String], payload: &mut Vec<u8>) -> u8 {
    let rows = data.len();
    let plain_size: usize = data.iter().map(|s| 4 + s.len()).sum();
    let mut dict: BTreeMap<&str, u32> = BTreeMap::new();
    for s in data {
        let next = dict.len() as u32;
        dict.entry(s.as_str()).or_insert(next);
    }
    // BTreeMap iteration is sorted; re-number so indexes follow sort order
    // (deterministic files regardless of row order of first occurrence).
    for (i, (_, idx)) in dict.iter_mut().enumerate() {
        *idx = i as u32;
    }
    let dict_entries_size: usize = dict.keys().map(|s| 4 + s.len()).sum();
    let width = if dict.len() <= 1 {
        0u32
    } else {
        32 - (dict.len() as u32 - 1).leading_zeros()
    };
    let dict_size = 4 + dict_entries_size + 1 + (rows as u64 * width as u64).div_ceil(8) as usize;
    if dict_size < plain_size {
        wire::put_u32(payload, dict.len() as u32);
        for s in dict.keys() {
            wire::put_str(payload, s);
        }
        payload.push(width as u8);
        pack_bits(data.iter().map(|s| dict[s.as_str()] as u64), width, payload);
        encoding::DICT_STR
    } else {
        for s in data {
            wire::put_str(payload, s);
        }
        encoding::PLAIN
    }
}

/// Serialize a chunk as a complete segment file.
pub fn encode_segment(id: u64, chunk: &Chunk) -> Result<Vec<u8>> {
    let rows = chunk.len();
    let ncols = chunk.num_columns();
    if ncols == 0 || ncols > MAX_COLS {
        return Err(HyError::Storage(format!(
            "segment must have 1..={MAX_COLS} columns, got {ncols}"
        )));
    }
    let nblocks = rows.div_ceil(BLOCK_ROWS);
    let raw_bytes = chunk.heap_bytes() as u64;
    let mut blocks: Vec<EncodedBlock> = Vec::with_capacity(ncols * nblocks);
    for col in chunk.columns() {
        for blk in 0..nblocks {
            let start = blk * BLOCK_ROWS;
            let n = (rows - start).min(BLOCK_ROWS);
            blocks.push(encode_block(&col.slice(start, n)));
        }
    }
    // Directory entry sizes are offset-independent, so the header length
    // is known before offsets are assigned.
    let dir_len: usize = blocks
        .iter()
        .map(|b| 8 + 4 + 4 + 1 + 4 + zone_value_len(&b.min) + zone_value_len(&b.max))
        .sum();
    let header_len = 8 + 8 + 8 + 4 + ncols + 4 + dir_len;
    let mut header = Vec::with_capacity(header_len);
    wire::put_u64(&mut header, id);
    wire::put_u64(&mut header, rows as u64);
    wire::put_u64(&mut header, raw_bytes);
    wire::put_u32(&mut header, ncols as u32);
    for col in chunk.columns() {
        header.push(dtype_tag(col.data_type()));
    }
    wire::put_u32(&mut header, nblocks as u32);
    let mut offset = (16 + header_len) as u64;
    for b in &blocks {
        wire::put_u64(&mut header, offset);
        wire::put_u32(&mut header, b.body.len() as u32);
        wire::put_u32(&mut header, b.rows);
        header.push(b.encoding);
        wire::put_u32(&mut header, b.null_count);
        put_zone_value(&mut header, &b.min);
        put_zone_value(&mut header, &b.max);
        offset += b.body.len() as u64;
    }
    debug_assert_eq!(header.len(), header_len);
    let mut out =
        Vec::with_capacity(16 + header_len + blocks.iter().map(|b| b.body.len()).sum::<usize>());
    wire::put_u32(&mut out, SEGMENT_MAGIC);
    wire::put_u32(&mut out, SEGMENT_VERSION);
    wire::put_u32(&mut out, header_len as u32);
    wire::put_u32(&mut out, crc32(&header));
    out.extend_from_slice(&header);
    for b in &blocks {
        out.extend_from_slice(&b.body);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Parse and validate a segment header given the file's prelude + header
/// bytes and the total file length.
pub fn decode_segment_meta(prelude: &[u8], header: &[u8], file_len: u64) -> Result<SegmentMeta> {
    if prelude.len() != 16 {
        return Err(HyError::Storage(format!(
            "segment prelude is {} bytes, want 16",
            prelude.len()
        )));
    }
    let mut p = ByteReader::new(prelude);
    let magic = p.u32()?;
    if magic != SEGMENT_MAGIC {
        return Err(HyError::Storage(format!(
            "not a HyLite segment (magic {magic:#010x})"
        )));
    }
    let version = p.u32()?;
    if version != SEGMENT_VERSION {
        return Err(HyError::Storage(format!(
            "segment version {version} not supported (this build reads {SEGMENT_VERSION})"
        )));
    }
    let header_len = p.u32()?;
    let stored_crc = p.u32()?;
    if header.len() != header_len as usize {
        return Err(HyError::Storage(format!(
            "segment header is {} bytes, prelude declares {header_len}",
            header.len()
        )));
    }
    if crc32(header) != stored_crc {
        return Err(HyError::Storage(
            "segment header failed its CRC check (corrupted)".into(),
        ));
    }
    let mut r = ByteReader::new(header);
    let id = r.u64()?;
    let rows = r.u64()? as usize;
    let raw_bytes = r.u64()?;
    let ncols = r.u32()? as usize;
    if ncols == 0 || ncols > MAX_COLS {
        return Err(HyError::Storage(format!(
            "segment declares {ncols} columns (limit {MAX_COLS})"
        )));
    }
    let mut dtypes = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        dtypes.push(dtype_from_tag(r.u8()?)?);
    }
    let nblocks = r.u32()? as usize;
    if nblocks != rows.div_ceil(BLOCK_ROWS) {
        return Err(HyError::Storage(format!(
            "segment declares {nblocks} blocks for {rows} rows (want {})",
            rows.div_ceil(BLOCK_ROWS)
        )));
    }
    let mut blocks = Vec::with_capacity(ncols);
    for (c, dtype) in dtypes.iter().enumerate() {
        let mut col_blocks = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let offset = r.u64()?;
            let len = r.u32()?;
            let brows = r.u32()?;
            let enc = r.u8()?;
            let null_count = r.u32()?;
            let min = read_zone_value(&mut r)?;
            let max = read_zone_value(&mut r)?;
            let expect_rows = (rows - b * BLOCK_ROWS).min(BLOCK_ROWS);
            if brows as usize != expect_rows {
                return Err(HyError::Storage(format!(
                    "segment block ({c},{b}) declares {brows} rows, want {expect_rows}"
                )));
            }
            // Reject forged offsets/lengths against the real file size
            // before any block read allocates.
            if len < 5
                || offset
                    .checked_add(len as u64)
                    .map(|end| end > file_len)
                    .unwrap_or(true)
            {
                return Err(HyError::Storage(format!(
                    "segment block ({c},{b}) at [{offset}, +{len}) exceeds file of {file_len} bytes"
                )));
            }
            let enc_ok = match dtype {
                DataType::Int64 => {
                    matches!(enc, encoding::PLAIN | encoding::RLE_INT | encoding::FOR_INT)
                }
                DataType::Varchar => matches!(enc, encoding::PLAIN | encoding::DICT_STR),
                _ => enc == encoding::PLAIN,
            };
            if !enc_ok {
                return Err(HyError::Storage(format!(
                    "segment block ({c},{b}) has encoding {enc} invalid for {dtype}"
                )));
            }
            if null_count > brows {
                return Err(HyError::Storage(format!(
                    "segment block ({c},{b}) declares {null_count} NULLs in {brows} rows"
                )));
            }
            col_blocks.push(BlockMeta {
                offset,
                len,
                rows: brows,
                encoding: enc,
                null_count,
                min,
                max,
            });
        }
        blocks.push(col_blocks);
    }
    if !r.is_empty() {
        return Err(HyError::Storage("segment header has trailing bytes".into()));
    }
    Ok(SegmentMeta {
        id,
        rows,
        raw_bytes,
        dtypes,
        blocks,
        file_len,
    })
}

/// Validate a whole segment file held in memory (bootstrap install path)
/// and return its meta.
pub fn validate_segment_bytes(bytes: &[u8]) -> Result<SegmentMeta> {
    if bytes.len() < 16 {
        return Err(HyError::Storage(format!(
            "segment file is {} bytes — too short to be valid",
            bytes.len()
        )));
    }
    let header_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if header_len > MAX_HEADER_BYTES || 16 + header_len as usize > bytes.len() {
        return Err(HyError::Storage(format!(
            "segment declares a {header_len}-byte header in a {}-byte file",
            bytes.len()
        )));
    }
    decode_segment_meta(
        &bytes[..16],
        &bytes[16..16 + header_len as usize],
        bytes.len() as u64,
    )
}

/// Re-stamp an encoded segment file with a new id (bootstrap install
/// writes shipped segments under locally allocated ids so they can never
/// collide with the replica's own files). Validates the bytes first,
/// then patches the header's id field and recomputes the header CRC.
pub fn rebrand_segment_bytes(bytes: &mut [u8], new_id: u64) -> Result<u64> {
    let meta = validate_segment_bytes(bytes)?;
    let old_id = meta.id;
    let header_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    bytes[16..24].copy_from_slice(&new_id.to_le_bytes());
    let crc = crc32(&bytes[16..16 + header_len]);
    bytes[12..16].copy_from_slice(&crc.to_le_bytes());
    Ok(old_id)
}

/// Decode one block body (payload + trailing CRC) back to a column.
pub fn decode_block(dtype: DataType, meta: &BlockMeta, body: &[u8]) -> Result<ColumnVector> {
    if body.len() != meta.len as usize || body.len() < 5 {
        return Err(HyError::Storage(format!(
            "segment block body is {} bytes, directory declares {}",
            body.len(),
            meta.len
        )));
    }
    let (payload, crc_bytes) = body.split_at(body.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(payload) != stored {
        return Err(HyError::Storage(
            "segment block failed its CRC check (corrupted)".into(),
        ));
    }
    let rows = meta.rows as usize;
    let mut r = ByteReader::new(payload);
    let validity = match r.u8()? {
        0 => None,
        1 => Some(
            read_bitmap_bits(&mut r, rows)?
                .into_iter()
                .collect::<Bitmap>(),
        ),
        other => {
            return Err(HyError::Storage(format!(
                "segment block has invalid validity flag {other}"
            )))
        }
    };
    let col = match (dtype, meta.encoding) {
        (DataType::Int64, encoding::PLAIN) => {
            let n = rows
                .checked_mul(8)
                .ok_or_else(|| HyError::Storage("segment block row count overflows".into()))?;
            let raw = r.take(n)?;
            let data = raw
                .chunks_exact(8)
                .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
                .collect();
            ColumnVector::Int64 { data, validity }
        }
        (DataType::Int64, encoding::RLE_INT) => {
            let nruns = r.u32()? as usize;
            if nruns > r.remaining() / 12 + 1 {
                return Err(HyError::Storage(format!(
                    "segment RLE block declares {nruns} runs in {} bytes",
                    r.remaining()
                )));
            }
            let mut data = Vec::with_capacity(rows);
            for _ in 0..nruns {
                let value = r.u64()? as i64;
                let count = r.u32()? as usize;
                if data
                    .len()
                    .checked_add(count)
                    .map(|t| t > rows)
                    .unwrap_or(true)
                {
                    return Err(HyError::Storage(
                        "segment RLE block runs exceed the declared row count".into(),
                    ));
                }
                data.resize(data.len() + count, value);
            }
            if data.len() != rows {
                return Err(HyError::Storage(format!(
                    "segment RLE block decodes {} rows, directory declares {rows}",
                    data.len()
                )));
            }
            ColumnVector::Int64 { data, validity }
        }
        (DataType::Int64, encoding::FOR_INT) => {
            let base = r.u64()? as i64;
            let width = r.u8()? as u32;
            if width > 57 {
                return Err(HyError::Storage(format!(
                    "segment FOR block has invalid bit width {width}"
                )));
            }
            let packed = r.take(r.remaining())?;
            let deltas = unpack_bits(packed, rows, width)?;
            let data = deltas
                .into_iter()
                .map(|d| base.wrapping_add(d as i64))
                .collect();
            ColumnVector::Int64 { data, validity }
        }
        (DataType::Float64, encoding::PLAIN) => {
            let n = rows
                .checked_mul(8)
                .ok_or_else(|| HyError::Storage("segment block row count overflows".into()))?;
            let raw = r.take(n)?;
            let data = raw
                .chunks_exact(8)
                .map(|b| f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
                .collect();
            ColumnVector::Float64 { data, validity }
        }
        (DataType::Bool, encoding::PLAIN) => ColumnVector::Bool {
            data: read_bitmap_bits(&mut r, rows)?,
            validity,
        },
        (DataType::Varchar, encoding::PLAIN) => {
            let mut data = Vec::with_capacity(rows.min(r.remaining() / 4));
            for _ in 0..rows {
                data.push(r.str()?);
            }
            ColumnVector::Varchar { data, validity }
        }
        (DataType::Varchar, encoding::DICT_STR) => {
            let dict_len = r.u32()? as usize;
            if dict_len > rows || dict_len > r.remaining() / 4 + 1 {
                return Err(HyError::Storage(format!(
                    "segment dictionary block declares {dict_len} entries for {rows} rows"
                )));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(r.str()?);
            }
            let width = r.u8()? as u32;
            if width > 32 {
                return Err(HyError::Storage(format!(
                    "segment dictionary block has invalid index width {width}"
                )));
            }
            let packed = r.take(r.remaining())?;
            let indexes = unpack_bits(packed, rows, width)?;
            let mut data = Vec::with_capacity(rows);
            for idx in indexes {
                let idx = idx as usize;
                if idx >= dict_len.max(1) || (dict_len == 0 && rows > 0) {
                    return Err(HyError::Storage(format!(
                        "segment dictionary index {idx} out of range (dictionary has {dict_len} entries)"
                    )));
                }
                data.push(dict[idx].clone());
            }
            ColumnVector::Varchar { data, validity }
        }
        (dt, enc) => {
            return Err(HyError::Storage(format!(
                "segment block encoding {enc} invalid for {dt}"
            )))
        }
    };
    if let Some(bm) = col.validity() {
        if bm.len() != rows {
            return Err(HyError::Storage(
                "segment block validity bitmap length mismatch".into(),
            ));
        }
    }
    if col.len() != rows {
        return Err(HyError::Storage(format!(
            "segment block decodes {} rows, directory declares {rows}",
            col.len()
        )));
    }
    Ok(col)
}

// ---------------------------------------------------------------------------
// Disk-backed segments
// ---------------------------------------------------------------------------

/// An open disk-backed segment: header in memory, blocks read on demand
/// through the [`BufferPool`].
pub struct DiskSegment {
    meta: SegmentMeta,
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    pool: Arc<BufferPool>,
}

impl std::fmt::Debug for DiskSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskSegment")
            .field("id", &self.meta.id)
            .field("rows", &self.meta.rows)
            .field("file_len", &self.meta.file_len)
            .finish()
    }
}

impl DiskSegment {
    /// Segment id.
    pub fn id(&self) -> u64 {
        self.meta.id
    }

    /// Rows in the segment.
    pub fn rows(&self) -> usize {
        self.meta.rows
    }

    /// The decoded header.
    pub fn meta(&self) -> &SegmentMeta {
        &self.meta
    }

    /// Fetch one column block through the pool.
    pub fn block(&self, col: usize, blk: usize) -> Result<Arc<ColumnVector>> {
        let bm = &self.meta.blocks[col][blk];
        let key = (self.meta.id, col as u32, blk as u32);
        let meta = bm.clone();
        let dtype = self.meta.dtypes[col];
        self.pool.get_or_load(key, || {
            let body = self
                .vfs
                .read_range(&self.path, meta.offset, meta.len as u64)?;
            Ok(Arc::new(decode_block(dtype, &meta, &body)?))
        })
    }

    /// Materialize rows `[offset, offset+len)` of the given columns
    /// (`None` = all) as a chunk. Whole-block reads of a single block are
    /// zero-copy out of the pool.
    pub fn read_rows(&self, offset: usize, len: usize, cols: Option<&[usize]>) -> Result<Chunk> {
        if offset + len > self.meta.rows {
            return Err(HyError::Storage(format!(
                "segment {} read [{offset}, +{len}) out of range ({} rows)",
                self.meta.id, self.meta.rows
            )));
        }
        let all: Vec<usize>;
        let col_ids: &[usize] = match cols {
            Some(c) => c,
            None => {
                all = (0..self.meta.dtypes.len()).collect();
                &all
            }
        };
        if col_ids.is_empty() {
            return Ok(Chunk::zero_column(len));
        }
        let mut out: Vec<Arc<ColumnVector>> = Vec::with_capacity(col_ids.len());
        for &c in col_ids {
            if c >= self.meta.dtypes.len() {
                return Err(HyError::Storage(format!(
                    "segment {} has no column {c}",
                    self.meta.id
                )));
            }
            if len == 0 {
                out.push(Arc::new(ColumnVector::empty(self.meta.dtypes[c])));
                continue;
            }
            let first_blk = offset / BLOCK_ROWS;
            let last_blk = (offset + len - 1) / BLOCK_ROWS;
            if first_blk == last_blk {
                let block = self.block(c, first_blk)?;
                let in_blk = offset - first_blk * BLOCK_ROWS;
                if in_blk == 0 && len == block.len() {
                    out.push(block); // whole block, zero-copy
                } else {
                    out.push(Arc::new(block.slice(in_blk, len)));
                }
            } else {
                let first = self.block(c, first_blk)?;
                let in_blk = offset - first_blk * BLOCK_ROWS;
                let mut acc = first.slice(in_blk, first.len() - in_blk);
                for blk in first_blk + 1..=last_blk {
                    let block = self.block(c, blk)?;
                    let take = (offset + len - blk * BLOCK_ROWS).min(block.len());
                    if take == block.len() {
                        acc.append(&block)?;
                    } else {
                        acc.append(&block.slice(0, take))?;
                    }
                }
                out.push(Arc::new(acc));
            }
        }
        Ok(Chunk::from_arc_columns(out))
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Owns the `segments/` directory: id allocation, sealed-segment writes,
/// on-demand opens (with a live registry for GC safety), and orphan
/// collection.
pub struct SegmentStore {
    vfs: Arc<dyn Vfs>,
    seg_dir: PathBuf,
    pool: Arc<BufferPool>,
    next_id: AtomicU64,
    live: Mutex<HashMap<u64, Weak<DiskSegment>>>,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("seg_dir", &self.seg_dir)
            .field("next_id", &self.next_id.load(AtomicOrdering::Relaxed))
            .finish()
    }
}

impl SegmentStore {
    /// Open (creating if needed) the segment directory under `data_dir`.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        data_dir: &Path,
        pool: Arc<BufferPool>,
    ) -> Result<Arc<SegmentStore>> {
        let seg_dir = data_dir.join(SEGMENT_DIR);
        vfs.create_dir_all(&seg_dir)?;
        let store = Arc::new(SegmentStore {
            vfs,
            seg_dir,
            pool,
            next_id: AtomicU64::new(1),
            live: Mutex::new(HashMap::new()),
        });
        store.refresh_next_id()?;
        Ok(store)
    }

    /// Advance the id allocator past every file currently on disk.
    pub fn refresh_next_id(&self) -> Result<()> {
        let mut max = 0u64;
        for name in self.vfs.list_dir(&self.seg_dir)? {
            if let Some(id) = parse_segment_file_name(&name) {
                max = max.max(id);
            }
        }
        let next = max + 1;
        self.next_id.fetch_max(next, AtomicOrdering::SeqCst);
        Ok(())
    }

    /// Allocate a fresh, never-reused segment id.
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, AtomicOrdering::SeqCst)
    }

    /// Path of segment `id`'s file.
    pub fn path_for(&self, id: u64) -> PathBuf {
        self.seg_dir.join(segment_file_name(id))
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        &self.seg_dir
    }

    /// The shared block cache.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Encode and durably write a sealed chunk as segment `id`. Returns
    /// the encoded size in bytes. The caller syncs the directory once all
    /// of a checkpoint's segments are written.
    pub fn write_segment(&self, id: u64, chunk: &Chunk) -> Result<u64> {
        let bytes = encode_segment(id, chunk)?;
        self.write_raw(id, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Durably write pre-encoded segment bytes (bootstrap install).
    /// Validates the header before touching disk.
    pub fn write_validated(&self, id: u64, bytes: &[u8]) -> Result<()> {
        validate_segment_bytes(bytes)?;
        self.write_raw(id, bytes)
    }

    fn write_raw(&self, id: u64, bytes: &[u8]) -> Result<()> {
        let path = self.path_for(id);
        let mut f = self.vfs.create(&path)?;
        f.write_all(bytes)?;
        f.sync()?;
        Ok(())
    }

    /// Make the segment directory's entries durable (after a batch of
    /// [`SegmentStore::write_segment`] calls, before the manifest rename).
    pub fn sync_dir(&self) -> Result<()> {
        self.vfs.sync_dir(&self.seg_dir)
    }

    /// Read a segment file verbatim (bootstrap shipping).
    pub fn read_file(&self, id: u64) -> Result<Vec<u8>> {
        self.vfs.read(&self.path_for(id))
    }

    /// Open segment `id`, reading only its header. Re-opens share the
    /// same `Arc` through a live registry (which also protects open
    /// segments from GC).
    pub fn open_segment(self: &Arc<Self>, id: u64) -> Result<Arc<DiskSegment>> {
        if let Some(seg) = self.live.lock().unwrap().get(&id).and_then(Weak::upgrade) {
            return Ok(seg);
        }
        let path = self.path_for(id);
        let file_len = self.vfs.len(&path)?;
        if file_len < 16 {
            return Err(HyError::Storage(format!(
                "segment file {} is {file_len} bytes — too short to be valid",
                path.display()
            )));
        }
        let prelude = self.vfs.read_range(&path, 0, 16)?;
        let header_len = u32::from_le_bytes(prelude[8..12].try_into().unwrap());
        if header_len > MAX_HEADER_BYTES || 16 + header_len as u64 > file_len {
            return Err(HyError::Storage(format!(
                "segment file {} declares a {header_len}-byte header in {file_len} bytes",
                path.display()
            )));
        }
        let header = self.vfs.read_range(&path, 16, header_len as u64)?;
        let meta = decode_segment_meta(&prelude, &header, file_len)?;
        if meta.id != id {
            return Err(HyError::Storage(format!(
                "segment file {} carries id {} (file name says {id})",
                path.display(),
                meta.id
            )));
        }
        let seg = Arc::new(DiskSegment {
            meta,
            path,
            vfs: Arc::clone(&self.vfs),
            pool: Arc::clone(&self.pool),
        });
        self.live.lock().unwrap().insert(id, Arc::downgrade(&seg));
        Ok(seg)
    }

    /// Delete segment files that are neither in `referenced` nor held
    /// open by a live snapshot. Returns the removed ids.
    pub fn gc(&self, referenced: &HashSet<u64>) -> Result<Vec<u64>> {
        let mut removed = Vec::new();
        for name in self.vfs.list_dir(&self.seg_dir)? {
            let Some(id) = parse_segment_file_name(&name) else {
                continue;
            };
            if referenced.contains(&id) {
                continue;
            }
            {
                let mut live = self.live.lock().unwrap();
                match live.get(&id) {
                    Some(w) if w.upgrade().is_some() => continue,
                    Some(_) => {
                        live.remove(&id);
                    }
                    None => {}
                }
            }
            self.vfs.remove(&self.seg_dir.join(&name))?;
            self.pool.evict_segment(id);
            removed.push(id);
        }
        Ok(removed)
    }

    /// Total bytes of all segment files on disk (storage view).
    pub fn disk_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for name in self.vfs.list_dir(&self.seg_dir)? {
            if parse_segment_file_name(&name).is_some() {
                total += self.vfs.len(&self.seg_dir.join(&name))?;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::telemetry::MetricsRegistry;
    use hylite_common::FaultVfs;

    fn chunk_all_types(rows: usize) -> Chunk {
        let ints: Vec<i64> = (0..rows as i64).map(|i| i / 7).collect();
        let floats: Vec<f64> = (0..rows).map(|i| i as f64 * 0.5).collect();
        let bools: Vec<bool> = (0..rows).map(|i| i % 3 == 0).collect();
        let mut strs = ColumnVector::empty(DataType::Varchar);
        for i in 0..rows {
            if i % 11 == 0 {
                strs.push_null();
            } else {
                strs.push_value(&Value::from(format!("cat_{}", i % 5)))
                    .unwrap();
            }
        }
        Chunk::new(vec![
            ColumnVector::from_i64(ints),
            ColumnVector::from_f64(floats),
            ColumnVector::from_bool(bools),
            strs,
        ])
    }

    fn store() -> (FaultVfs, Arc<SegmentStore>) {
        let vfs = FaultVfs::new();
        let pool = Arc::new(BufferPool::new(1 << 24, &MetricsRegistry::new()));
        let store = SegmentStore::open(Arc::new(vfs.clone()), Path::new("data"), pool).unwrap();
        (vfs, store)
    }

    fn roundtrip(chunk: &Chunk) -> Chunk {
        let (_vfs, store) = store();
        let id = store.alloc_id();
        store.write_segment(id, chunk).unwrap();
        let seg = store.open_segment(id).unwrap();
        seg.read_rows(0, chunk.len(), None).unwrap()
    }

    fn assert_chunks_equal(a: &Chunk, b: &Chunk) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.num_columns(), b.num_columns());
        for c in 0..a.num_columns() {
            for i in 0..a.len() {
                assert_eq!(
                    a.column(c).value(i),
                    b.column(c).value(i),
                    "column {c} row {i}"
                );
                assert_eq!(a.column(c).is_valid(i), b.column(c).is_valid(i));
            }
        }
    }

    #[test]
    fn all_types_roundtrip_across_blocks() {
        let chunk = chunk_all_types(BLOCK_ROWS + 123);
        let back = roundtrip(&chunk);
        assert_chunks_equal(&chunk, &back);
    }

    #[test]
    fn small_segment_roundtrips() {
        let chunk = chunk_all_types(10);
        assert_chunks_equal(&chunk, &roundtrip(&chunk));
    }

    #[test]
    fn compression_kicks_in_for_runny_data() {
        // Two long plateaus of wide-range values (RLE beats FOR there)
        // and a low-cardinality string column should compress far below
        // raw size.
        let rows = BLOCK_ROWS;
        let chunk = Chunk::new(vec![
            ColumnVector::from_i64(
                (0..rows)
                    .map(|i| if i < rows / 2 { 42 } else { 1 << 40 })
                    .collect(),
            ),
            ColumnVector::from_str((0..rows).map(|i| format!("s{}", i % 4)).collect::<Vec<_>>()),
        ]);
        let bytes = encode_segment(7, &chunk).unwrap();
        let raw = chunk.heap_bytes();
        assert!(
            bytes.len() * 4 < raw,
            "encoded {} bytes vs raw {raw}",
            bytes.len()
        );
        let meta = validate_segment_bytes(&bytes).unwrap();
        assert_eq!(meta.blocks[0][0].encoding, encoding::RLE_INT);
        assert_eq!(meta.blocks[1][0].encoding, encoding::DICT_STR);
    }

    #[test]
    fn for_encoding_picked_for_dense_ranges() {
        let rows = BLOCK_ROWS;
        let chunk = Chunk::new(vec![ColumnVector::from_i64(
            (0..rows as i64).map(|i| 1_000_000 + i).collect(),
        )]);
        let bytes = encode_segment(1, &chunk).unwrap();
        let meta = validate_segment_bytes(&bytes).unwrap();
        assert_eq!(meta.blocks[0][0].encoding, encoding::FOR_INT);
        assert!(bytes.len() < rows * 8 / 2);
        // And it still round-trips exactly.
        let decoded = roundtrip(&chunk);
        assert_eq!(
            decoded.column(0).as_i64().unwrap(),
            chunk.column(0).as_i64().unwrap()
        );
    }

    #[test]
    fn extreme_ints_fall_back_to_plain_and_roundtrip() {
        let chunk = Chunk::new(vec![ColumnVector::from_i64(vec![
            i64::MIN,
            i64::MAX,
            0,
            -1,
            1,
        ])]);
        assert_chunks_equal(&chunk, &roundtrip(&chunk));
    }

    #[test]
    fn zone_maps_cover_min_max_and_nulls() {
        let mut col = ColumnVector::empty(DataType::Int64);
        for v in [Value::Int(5), Value::Null, Value::Int(-3), Value::Int(12)] {
            col.push_value(&v).unwrap();
        }
        let bytes = encode_segment(1, &Chunk::new(vec![col])).unwrap();
        let meta = validate_segment_bytes(&bytes).unwrap();
        let bm = &meta.blocks[0][0];
        assert_eq!(bm.null_count, 1);
        assert_eq!(bm.min, Some(Value::Int(-3)));
        assert_eq!(bm.max, Some(Value::Int(12)));
        // Pruning: a predicate outside [-3, 12] can skip the block.
        let out_of_range = ZoneRange {
            col: 0,
            lower: Some((Value::Int(100), true)),
            upper: None,
        };
        assert!(!bm.may_match(&out_of_range));
        let inside = ZoneRange {
            col: 0,
            lower: Some((Value::Int(0), true)),
            upper: Some((Value::Int(6), true)),
        };
        assert!(bm.may_match(&inside));
        // Exclusive boundary at the max prunes.
        let at_max_exclusive = ZoneRange {
            col: 0,
            lower: Some((Value::Int(12), false)),
            upper: None,
        };
        assert!(!bm.may_match(&at_max_exclusive));
    }

    #[test]
    fn all_null_blocks_prune_everything() {
        let mut col = ColumnVector::empty(DataType::Int64);
        col.push_null();
        col.push_null();
        let bytes = encode_segment(1, &Chunk::new(vec![col])).unwrap();
        let meta = validate_segment_bytes(&bytes).unwrap();
        let any = ZoneRange {
            col: 0,
            lower: None,
            upper: Some((Value::Int(1_000_000), true)),
        };
        assert!(!meta.blocks[0][0].may_match(&any));
    }

    #[test]
    fn nan_blocks_keep_no_zone_map() {
        let chunk = Chunk::new(vec![ColumnVector::from_f64(vec![1.0, f64::NAN, 3.0])]);
        let bytes = encode_segment(1, &chunk).unwrap();
        let meta = validate_segment_bytes(&bytes).unwrap();
        assert!(meta.blocks[0][0].min.is_none());
        let r = ZoneRange {
            col: 0,
            lower: Some((Value::Float(100.0), true)),
            upper: None,
        };
        assert!(meta.blocks[0][0].may_match(&r), "no zone map = keep");
        // NaN itself round-trips bit-exactly.
        let back = roundtrip(&chunk);
        assert!(back.column(0).as_f64().unwrap()[1].is_nan());
    }

    #[test]
    fn projected_and_partial_reads() {
        let chunk = chunk_all_types(BLOCK_ROWS * 2 + 100);
        let (_vfs, store) = store();
        let id = store.alloc_id();
        store.write_segment(id, &chunk).unwrap();
        let seg = store.open_segment(id).unwrap();
        // A range straddling a block boundary, one projected column.
        let part = seg.read_rows(BLOCK_ROWS - 50, 100, Some(&[0])).unwrap();
        assert_eq!(part.num_columns(), 1);
        assert_eq!(part.len(), 100);
        for i in 0..100 {
            assert_eq!(
                part.column(0).value(i),
                chunk.column(0).value(BLOCK_ROWS - 50 + i)
            );
        }
        // Empty projection still carries the row count.
        let none = seg.read_rows(0, 10, Some(&[])).unwrap();
        assert_eq!((none.len(), none.num_columns()), (10, 0));
        // Out-of-range read errors.
        assert!(seg.read_rows(chunk.len(), 1, None).is_err());
    }

    #[test]
    fn gc_spares_referenced_and_live_segments() {
        let (vfs, store) = store();
        let c = chunk_all_types(10);
        let (a, b, c_id) = (store.alloc_id(), store.alloc_id(), store.alloc_id());
        store.write_segment(a, &c).unwrap();
        store.write_segment(b, &c).unwrap();
        store.write_segment(c_id, &c).unwrap();
        let held = store.open_segment(b).unwrap(); // live reference
        let referenced: HashSet<u64> = [a].into_iter().collect();
        let removed = store.gc(&referenced).unwrap();
        assert_eq!(removed, vec![c_id]);
        assert!(vfs.exists(&store.path_for(a)));
        assert!(vfs.exists(&store.path_for(b)));
        assert!(!vfs.exists(&store.path_for(c_id)));
        drop(held);
        let removed = store.gc(&referenced).unwrap();
        assert_eq!(removed, vec![b]);
    }

    #[test]
    fn next_id_resumes_past_existing_files() {
        let (_vfs, store) = store();
        let id = store.alloc_id();
        store.write_segment(id, &chunk_all_types(5)).unwrap();
        store.refresh_next_id().unwrap();
        assert!(store.alloc_id() > id);
    }

    #[test]
    fn mismatched_file_name_id_is_rejected() {
        let (vfs, store) = store();
        let bytes = encode_segment(99, &chunk_all_types(5)).unwrap();
        let mut f = vfs.create(&store.path_for(3)).unwrap();
        f.write_all(&bytes).unwrap();
        f.sync().unwrap();
        assert!(store.open_segment(3).is_err());
    }
}
