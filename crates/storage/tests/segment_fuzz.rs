//! Adversarial segment-file decoding: every mutation of a valid segment
//! file — truncation, oversized length fields, bit flips, corrupted
//! dictionaries — must come back as a typed `HyError`, never a panic and
//! never an allocation sized by attacker-controlled fields.
//!
//! Same discipline as the wire-protocol fuzz harness: deterministic
//! mutation schedule, so any failure reproduces exactly.

use hylite_common::{crc32, Chunk, ColumnVector, DataType, Result, Value};
use hylite_storage::segment::{
    decode_block, encode_segment, encoding, validate_segment_bytes, SegmentMeta,
};
use hylite_storage::BLOCK_ROWS;

/// Decode the entire file: header validation plus every block of every
/// column — exactly what recovery and the scan path run, minus the VFS.
fn full_decode(bytes: &[u8]) -> Result<SegmentMeta> {
    let meta = validate_segment_bytes(bytes)?;
    for (c, col_blocks) in meta.blocks.iter().enumerate() {
        for bm in col_blocks {
            // The header validator bounds every block inside the file.
            let body = &bytes[bm.offset as usize..bm.offset as usize + bm.len as usize];
            decode_block(meta.dtypes[c], bm, body)?;
        }
    }
    Ok(meta)
}

fn must_not_panic(bytes: &[u8]) {
    let _ = full_decode(bytes);
}

/// Segments covering every encoding the format speaks: plain ints,
/// RLE runs, FOR bitpacking, dictionary strings, plain strings, floats,
/// bools, NULLs, and a multi-block column.
fn corpus() -> Vec<Vec<u8>> {
    let runny: Vec<i64> = (0..1000)
        .map(|i| if i < 500 { 42 } else { 1 << 40 })
        .collect();
    let chunks = [
        Chunk::new(vec![
            ColumnVector::from_i64((0..100).map(|i| i * 1_000_003).collect()),
            ColumnVector::from_f64((0..100).map(|i| i as f64 * 0.5).collect()),
        ]),
        Chunk::new(vec![ColumnVector::from_i64(runny)]),
        Chunk::new(vec![
            ColumnVector::from_values(
                DataType::Varchar,
                &(0..200)
                    .map(|i| Value::from(format!("tag_{}", i % 5).as_str()))
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            ColumnVector::from_values(
                DataType::Varchar,
                &(0..200)
                    .map(|i| {
                        if i % 7 == 0 {
                            Value::Null
                        } else {
                            Value::from(format!("unique-{i}").as_str())
                        }
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        ]),
        Chunk::new(vec![ColumnVector::from_values(
            DataType::Bool,
            &(0..64)
                .map(|i| {
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Bool(i % 2 == 0)
                    }
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()]),
        // Multi-block column: spans two zone-mapped blocks.
        Chunk::new(vec![ColumnVector::from_i64(
            (0..(BLOCK_ROWS as i64 + 17)).collect(),
        )]),
    ];
    chunks
        .iter()
        .enumerate()
        .map(|(i, c)| encode_segment(i as u64 + 1, c).unwrap())
        .collect()
}

#[test]
fn corpus_roundtrips_clean() {
    for bytes in corpus() {
        full_decode(&bytes).expect("pristine segment must decode");
    }
}

#[test]
fn every_truncation_errors_cleanly() {
    for bytes in corpus() {
        for cut in 0..bytes.len() {
            let truncated = &bytes[..cut];
            assert!(
                full_decode(truncated).is_err(),
                "a {}-byte prefix of a {}-byte segment decoded successfully",
                cut,
                bytes.len()
            );
        }
    }
}

#[test]
fn every_single_bit_flip_is_caught_or_harmless() {
    // Bit flips anywhere in the file must never panic. Flips in the
    // prelude or header are caught by the header CRC; flips in a block
    // body are caught by the block CRC (the header stays valid).
    for bytes in corpus() {
        let header_end = 16 + u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        for byte_idx in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte_idx] ^= 1 << bit;
                let result = full_decode(&mutated);
                if byte_idx >= header_end {
                    assert!(
                        result.is_err(),
                        "bit {bit} of body byte {byte_idx} flipped undetected"
                    );
                } else {
                    // Prelude/header flips: a flip in the stored CRC field
                    // itself or the length fields also errors; all that
                    // matters is that nothing panics and nothing bogus
                    // decodes.
                    assert!(result.is_err(), "header flip at {byte_idx} went unnoticed");
                }
            }
        }
    }
}

/// Re-CRC mutations defeat the checksum on purpose: corrupt the payload,
/// then recompute the trailing block CRC so decoding proceeds into the
/// semantic validators (run sums, bit widths, dictionary ranges).
fn recrc_block(bytes: &mut [u8], offset: usize, len: usize) {
    let crc = crc32(&bytes[offset..offset + len - 4]);
    bytes[offset + len - 4..offset + len].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn semantic_corruption_with_valid_crc_is_rejected() {
    for bytes in corpus() {
        let meta = validate_segment_bytes(&bytes).unwrap();
        for col_blocks in &meta.blocks {
            for bm in col_blocks {
                let (off, len) = (bm.offset as usize, bm.len as usize);
                // Saturate every payload byte in turn (skip the validity
                // flag at +0 — 0xFF there is an invalid flag, also fine).
                for target in off..off + len - 4 {
                    let mut mutated = bytes.clone();
                    mutated[target] = 0xFF;
                    recrc_block(&mut mutated, off, len);
                    // May decode to different values; must not panic and
                    // must not misreport the row count when it does.
                    if let Ok(m) = full_decode(&mutated) {
                        assert_eq!(m.rows, meta.rows);
                    }
                }
            }
        }
    }
}

#[test]
fn out_of_range_dictionary_index_is_rejected() {
    // A dictionary block with 5 entries; force the packed index area to
    // all-ones so indexes point far past the dictionary.
    let chunk = Chunk::new(vec![ColumnVector::from_values(
        DataType::Varchar,
        &(0..100)
            .map(|i| Value::from(format!("k{}", i % 5).as_str()))
            .collect::<Vec<_>>(),
    )
    .unwrap()]);
    let mut bytes = encode_segment(7, &chunk).unwrap();
    let meta = validate_segment_bytes(&bytes).unwrap();
    let bm = &meta.blocks[0][0];
    assert_eq!(
        bm.encoding,
        encoding::DICT_STR,
        "test premise: dict-encoded"
    );
    let (off, len) = (bm.offset as usize, bm.len as usize);
    // Packed indexes are the tail of the payload; blasting the last 8
    // pre-CRC bytes corrupts indexes without touching the dictionary.
    for b in &mut bytes[off + len - 12..off + len - 4] {
        *b = 0xFF;
    }
    recrc_block(&mut bytes, off, len);
    let err = full_decode(&bytes).unwrap_err().to_string();
    assert!(
        err.contains("out of range") || err.contains("dictionary"),
        "wrong error for corrupt dictionary indexes: {err}"
    );
}

#[test]
fn oversized_header_length_is_rejected_before_allocation() {
    // Claim a near-4GiB header in a tiny file: the validator must refuse
    // based on the declared length alone.
    let bytes = corpus().remove(0);
    let mut mutated = bytes.clone();
    mutated[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = validate_segment_bytes(&mutated).unwrap_err().to_string();
    assert!(err.contains("header"), "{err}");

    // Same with a header length that exceeds the file but not the cap.
    let mut mutated = bytes;
    let too_big = (mutated.len() as u32).saturating_add(1);
    mutated[8..12].copy_from_slice(&too_big.to_le_bytes());
    assert!(validate_segment_bytes(&mutated).is_err());
}

#[test]
fn oversized_block_length_is_rejected_before_allocation() {
    // Patch the first directory entry's block length to u32::MAX and fix
    // the header CRC: the block would extend past the file, so the header
    // validator must reject it without ever touching block data.
    let bytes = corpus().remove(0);
    let header_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let meta = validate_segment_bytes(&bytes).unwrap();
    let ncols = meta.dtypes.len();
    // Directory starts after [id:8][rows:8][raw:8][ncols:4][tags][nblocks:4].
    let dir_start = 16 + 8 + 8 + 8 + 4 + ncols + 4;
    let mut mutated = bytes.clone();
    // Entry layout: [offset:8][len:4]...
    mutated[dir_start + 8..dir_start + 12].copy_from_slice(&u32::MAX.to_le_bytes());
    let crc = crc32(&mutated[16..16 + header_len]);
    mutated[12..16].copy_from_slice(&crc.to_le_bytes());
    let err = validate_segment_bytes(&mutated).unwrap_err().to_string();
    assert!(
        err.contains("block") || err.contains("past"),
        "wrong error for oversized block length: {err}"
    );
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let bytes = corpus().remove(0);
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    let err = validate_segment_bytes(&wrong_magic)
        .unwrap_err()
        .to_string();
    assert!(err.contains("magic"), "{err}");

    let mut wrong_version = bytes;
    wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
    let err = validate_segment_bytes(&wrong_version)
        .unwrap_err()
        .to_string();
    assert!(err.contains("version") || err.contains("99"), "{err}");
}

#[test]
fn random_garbage_never_panics() {
    // SplitMix64-driven garbage of assorted sizes, including some that
    // start with the real magic so parsing gets past the first gate.
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut state = 0xC0FF_EE00_D15E_A5E5u64;
    for case in 0..256 {
        let len = (case * 7) % 512;
        let mut bytes = Vec::with_capacity(len);
        while bytes.len() < len {
            state = splitmix64(state);
            bytes.extend_from_slice(&state.to_le_bytes());
        }
        bytes.truncate(len);
        must_not_panic(&bytes);
        if bytes.len() >= 8 {
            bytes[0..4].copy_from_slice(&0x4859_5347u32.to_le_bytes());
            bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
            must_not_panic(&bytes);
        }
    }
}
