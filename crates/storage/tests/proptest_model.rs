//! Model-based testing of the storage engine: a random sequence of
//! inserts, deletes, updates, commits and rollbacks is applied both to a
//! [`Table`] and to a trivial in-memory reference model; the visible
//! states must agree after every operation.
//!
//! Operation sequences are generated from a seeded RNG so every run
//! replays the same cases (the offline stand-in for proptest).

use hylite_common::{DataType, Field, Schema, Value};
use hylite_storage::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum Op {
    /// Insert rows with the given payloads.
    Insert(Vec<i64>),
    /// Delete all live rows whose payload is ≡ k (mod 7).
    DeleteWhere(i64),
    /// Update all live rows ≡ k (mod 7) to payload + 1000.
    UpdateWhere(i64),
    /// Commit the working state.
    Commit,
    /// Roll back to the committed state.
    Rollback,
}

fn arb_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0u32..5) {
        0 => {
            let n = rng.gen_range(1usize..20);
            Op::Insert((0..n).map(|_| rng.gen_range(-100i64..100)).collect())
        }
        1 => Op::DeleteWhere(rng.gen_range(0i64..7)),
        2 => Op::UpdateWhere(rng.gen_range(0i64..7)),
        3 => Op::Commit,
        _ => Op::Rollback,
    }
}

/// The reference: committed rows and working rows as plain vectors.
#[derive(Default, Clone)]
struct Model {
    committed: Vec<i64>,
    working: Vec<i64>,
}

fn live_values(t: &Table) -> Vec<i64> {
    t.snapshot()
        .live_chunks()
        .unwrap()
        .iter()
        .flat_map(|c| c.column(0).as_i64().unwrap().to_vec())
        .collect()
}

fn committed_values(t: &Table) -> Vec<i64> {
    t.committed_snapshot()
        .live_chunks()
        .unwrap()
        .iter()
        .flat_map(|c| c.column(0).as_i64().unwrap().to_vec())
        .collect()
}

fn live_row_ids(t: &Table, pred: impl Fn(i64) -> bool) -> Vec<usize> {
    let snap = t.snapshot();
    let mut ids = Vec::new();
    for m in snap.morsels(1024) {
        let (chunk, rids) = snap.read_morsel(&m).unwrap();
        let vals = chunk.column(0).as_i64().unwrap();
        for (v, rid) in vals.iter().zip(rids) {
            if pred(*v) {
                ids.push(rid);
            }
        }
    }
    ids
}

#[test]
fn table_matches_reference_model() {
    let mut rng = StdRng::seed_from_u64(0x5708A6E);
    for case in 0..64 {
        let ops: Vec<Op> = (0..rng.gen_range(1usize..40))
            .map(|_| arb_op(&mut rng))
            .collect();
        let mut table = Table::new("t", Schema::new(vec![Field::new("v", DataType::Int64)]));
        let mut model = Model::default();
        for op in &ops {
            match op {
                Op::Insert(vals) => {
                    let rows: Vec<Vec<Value>> = vals.iter().map(|&v| vec![Value::Int(v)]).collect();
                    table.insert_rows(&rows).unwrap();
                    model.working.extend(vals);
                }
                Op::DeleteWhere(k) => {
                    let ids = live_row_ids(&table, |v| v.rem_euclid(7) == *k);
                    table.delete_rows(&ids).unwrap();
                    model.working.retain(|v| v.rem_euclid(7) != *k);
                }
                Op::UpdateWhere(k) => {
                    let ids = live_row_ids(&table, |v| v.rem_euclid(7) == *k);
                    let new_rows: Vec<Vec<Value>> = {
                        // Mirror the table's delete+append order: matching
                        // rows move to the end with payload + 1000.
                        let snap = table.snapshot();
                        let mut moved = Vec::new();
                        for chunk in snap.live_chunks().unwrap() {
                            for &v in chunk.column(0).as_i64().unwrap() {
                                if v.rem_euclid(7) == *k {
                                    moved.push(v + 1000);
                                }
                            }
                        }
                        moved.iter().map(|&v| vec![Value::Int(v)]).collect()
                    };
                    let moved: Vec<i64> = new_rows.iter().map(|r| r[0].as_int().unwrap()).collect();
                    table.update_rows(&ids, new_rows).unwrap();
                    model.working.retain(|v| v.rem_euclid(7) != *k);
                    model.working.extend(moved);
                }
                Op::Commit => {
                    table.commit();
                    model.committed = model.working.clone();
                }
                Op::Rollback => {
                    table.rollback();
                    model.working = model.committed.clone();
                }
            }
            // Multisets must match (storage preserves insertion order of
            // live rows, so direct comparison works).
            assert_eq!(
                live_values(&table),
                model.working,
                "case {case}: working state after {op:?}"
            );
            assert_eq!(
                committed_values(&table),
                model.committed,
                "case {case}: committed state after {op:?}"
            );
            assert_eq!(table.live_rows(), model.working.len());
        }
        // Compaction must preserve the live working state exactly.
        table.commit();
        model.committed = model.working.clone();
        table.compact().unwrap();
        assert_eq!(live_values(&table), model.working);
    }
}
