//! The HyLite network server: the engine behind a TCP serving boundary.
//!
//! The embedded API ([`hylite_core::Database`]) is one end of the
//! client-integration spectrum; this crate is the other — a standalone
//! server process many concurrent clients talk to over a small binary
//! frame protocol ([`hylite_common::wire`], documented in
//! `docs/PROTOCOL.md`). Design points:
//!
//! * **Thread per connection, no async runtime.** Each accepted socket
//!   gets an OS thread owning one engine [`Session`](hylite_core::Session)
//!   over a shared `Arc<Database>`; blocking reads/writes keep the code
//!   obvious and the dependency count at zero.
//! * **Streaming results.** Result chunks are encoded and written as they
//!   are sliced off the result
//!   ([`QueryResult::stream_chunks`](hylite_core::QueryResult::stream_chunks)),
//!   so server-side result memory stays bounded by one chunk.
//! * **Admission control.** A connection cap plus a bounded statement
//!   queue with backpressure ([`Admission`]); overload is shed with typed
//!   retryable error frames and counted under `server.*` metrics.
//! * **Out-of-band cancellation.** The handshake hands every session a
//!   `(session_id, secret)` pair; a *second* connection can present it in
//!   a Cancel frame to stop the running statement at its next governor
//!   check point, exactly like `kill -INT` for queries.
//! * **Governed by default.** Server-level `statement_timeout_ms` /
//!   `memory_budget_mb` defaults apply to every session until the client
//!   overrides them with `SET`.
//! * **Graceful shutdown.** A drain deadline lets in-flight statements
//!   finish, then cancels stragglers via their governor tokens, then
//!   closes sockets and joins every thread.
//! * **WAL-shipping replication.** A durable primary streams its redo
//!   WAL verbatim to read replicas over the same frame protocol; a
//!   replica ([`Replica::start`]) serves read-only sessions while
//!   catching up, survives `kill -9` on either side, and sheds rather
//!   than stalls when slow. See `docs/REPLICATION.md`.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use hylite_core::Database;
//! use hylite_server::{Server, ServerConfig};
//!
//! let db = Arc::new(Database::new());
//! db.execute("CREATE TABLE t (x BIGINT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
//! let handle = Server::start(ServerConfig::ephemeral(), db).unwrap();
//! let addr = handle.local_addr(); // connect a HyliteClient here
//! # let _ = addr;
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

mod admission;
mod config;
mod connection;
mod metrics_http;
mod replica;
mod replication;
mod server;

pub use admission::{Admission, Rejection, StatementPermit};
pub use config::ServerConfig;
pub use replica::{Replica, ReplicaConfig, ReplicaHandle, ReplicaStatus};
pub use server::{Server, ServerHandle};
