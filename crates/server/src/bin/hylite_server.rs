//! `hylite-server` — serve a HyLite database over TCP.
//!
//! ```text
//! hylite-server [--addr 127.0.0.1:5433] [--max-connections N]
//!               [--max-active-statements N] [--queue-depth N]
//!               [--queue-wait-ms MS] [--statement-timeout-ms MS]
//!               [--memory-budget-mb MB] [--drain-timeout-ms MS] [--demo]
//! ```
//!
//! `--demo` preloads a small demo schema (`t(x BIGINT)`, `edges(src,
//! dest)`) so a fresh server answers example queries immediately. The
//! process runs until a client sends a Shutdown frame (`hylite-cli
//! --shutdown`), then drains gracefully.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hylite_core::Database;
use hylite_server::{Server, ServerConfig};

fn parse_args(args: &[String]) -> Result<(ServerConfig, bool), String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:5433".into(),
        ..ServerConfig::default()
    };
    let mut demo = false;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--addr" => config.addr = value(&mut i, arg)?,
            "--max-connections" => {
                config.max_connections = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--max-active-statements" => {
                config.max_active_statements = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--queue-depth" => {
                config.statement_queue_depth = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--queue-wait-ms" => {
                config.queue_wait = Duration::from_millis(
                    value(&mut i, arg)?
                        .parse()
                        .map_err(|e| format!("{arg}: {e}"))?,
                )
            }
            "--statement-timeout-ms" => {
                config.statement_timeout_ms = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--memory-budget-mb" => {
                config.memory_budget_mb = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--drain-timeout-ms" => {
                config.drain_timeout = Duration::from_millis(
                    value(&mut i, arg)?
                        .parse()
                        .map_err(|e| format!("{arg}: {e}"))?,
                )
            }
            "--demo" => demo = true,
            "--help" | "-h" => {
                return Err(
                    "usage: hylite-server [--addr HOST:PORT] [--max-connections N] \
                            [--max-active-statements N] [--queue-depth N] [--queue-wait-ms MS] \
                            [--statement-timeout-ms MS] [--memory-budget-mb MB] \
                            [--drain-timeout-ms MS] [--demo]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
        i += 1;
    }
    Ok((config, demo))
}

fn load_demo(db: &Database) {
    for sql in [
        "CREATE TABLE t (x BIGINT)",
        "INSERT INTO t VALUES (1), (2), (3), (4), (5)",
        "CREATE TABLE edges (src BIGINT, dest BIGINT)",
        "INSERT INTO edges VALUES (1,2),(2,3),(3,4),(4,1),(1,3)",
    ] {
        if let Err(e) = db.execute(sql) {
            eprintln!("demo load failed on '{sql}': {e}");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, demo) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let db = Arc::new(Database::new());
    if demo {
        load_demo(&db);
    }
    let handle = match Server::start(config, db) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hylite-server listening on {}", handle.local_addr());
    handle.join();
    println!("hylite-server stopped");
    ExitCode::SUCCESS
}
