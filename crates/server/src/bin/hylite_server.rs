//! `hylite-server` — serve a HyLite database over TCP.
//!
//! ```text
//! hylite-server [--addr 127.0.0.1:5433] [--data-dir PATH]
//!               [--archive-dir PATH] [--restore-from PATH] [--to-lsn N]
//!               [--sync-mode commit|buffered] [--buffer-pool-mb MB]
//!               [--max-connections N]
//!               [--max-active-statements N] [--queue-depth N]
//!               [--queue-wait-ms MS] [--statement-timeout-ms MS]
//!               [--memory-budget-mb MB] [--drain-timeout-ms MS]
//!               [--slow-query-ms MS] [--metrics-addr HOST:PORT]
//!               [--replica-of HOST:PORT] [--promote] [--demo]
//! ```
//!
//! `--metrics-addr HOST:PORT` serves the engine's metrics in Prometheus
//! text format at `GET /metrics`; `--slow-query-ms MS` makes every
//! session log statements slower than MS to `hylite.slow_queries`. See
//! `docs/OBSERVABILITY.md`.
//!
//! `--data-dir PATH` makes the database durable: recovery (checkpoint +
//! WAL replay) runs before the listener binds, every commit is logged to
//! the WAL before acknowledgement, and graceful shutdown takes a final
//! checkpoint. Without it the database is purely in-memory.
//!
//! `--archive-dir PATH` (requires `--data-dir`) turns on continuous WAL
//! archiving: every checkpoint copies the WAL frames it is about to
//! truncate into CRC-verified span files under PATH before the WAL is
//! reset. Archiving failures are reported via metrics but never block
//! commits. `--restore-from PATH` restores an online backup (see
//! `BACKUP TO` and `hylite-cli --backup`) into `--data-dir` before
//! opening it — optionally replaying archived WAL up to `--to-lsn N`
//! for point-in-time recovery. The restored node starts under a fresh
//! replication epoch, so stale replicas of the old timeline refuse to
//! follow it. See `docs/BACKUP.md`.
//!
//! `--buffer-pool-mb MB` caps the block cache in front of checkpointed
//! column segments (default 64). Cold data past the cap is re-read from
//! disk on demand, so a durable database can serve tables larger than
//! the cap — see `docs/STORAGE.md`.
//!
//! `--replica-of HOST:PORT` (requires `--data-dir`) starts a **read
//! replica**: the data dir is opened in the replica role, the primary's
//! WAL is streamed into it, and every session is read-only (writes get a
//! retryable error naming the primary). `--promote` restarts a replica
//! data dir as a writable primary under a fresh epoch — planned failover
//! after the old primary is confirmed dead. See `docs/REPLICATION.md`.
//!
//! `--demo` preloads a small demo schema (`t(x BIGINT)`, `edges(src,
//! dest)`) so a fresh server answers example queries immediately. The
//! process runs until a client sends a Shutdown frame (`hylite-cli
//! --shutdown`), then drains gracefully.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hylite_core::{Database, DurabilityOptions, ReplRole, SyncMode};
use hylite_server::{Replica, ReplicaConfig, Server, ServerConfig};

struct Cli {
    config: ServerConfig,
    demo: bool,
    data_dir: Option<String>,
    archive_dir: Option<String>,
    restore_from: Option<String>,
    to_lsn: Option<u64>,
    sync_mode: SyncMode,
    buffer_pool_mb: usize,
    replica_of: Option<String>,
    promote: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:5433".into(),
        ..ServerConfig::default()
    };
    let mut demo = false;
    let mut data_dir = None;
    let mut archive_dir = None;
    let mut restore_from = None;
    let mut to_lsn = None;
    let mut sync_mode = SyncMode::Commit;
    let mut buffer_pool_mb = 64usize;
    let mut replica_of = None;
    let mut promote = false;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--addr" => config.addr = value(&mut i, arg)?,
            "--max-connections" => {
                config.max_connections = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--max-active-statements" => {
                config.max_active_statements = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--queue-depth" => {
                config.statement_queue_depth = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--queue-wait-ms" => {
                config.queue_wait = Duration::from_millis(
                    value(&mut i, arg)?
                        .parse()
                        .map_err(|e| format!("{arg}: {e}"))?,
                )
            }
            "--statement-timeout-ms" => {
                config.statement_timeout_ms = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--memory-budget-mb" => {
                config.memory_budget_mb = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--slow-query-ms" => {
                config.slow_query_ms = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--metrics-addr" => config.metrics_addr = Some(value(&mut i, arg)?),
            "--drain-timeout-ms" => {
                config.drain_timeout = Duration::from_millis(
                    value(&mut i, arg)?
                        .parse()
                        .map_err(|e| format!("{arg}: {e}"))?,
                )
            }
            "--data-dir" => data_dir = Some(value(&mut i, arg)?),
            "--archive-dir" => archive_dir = Some(value(&mut i, arg)?),
            "--restore-from" => restore_from = Some(value(&mut i, arg)?),
            "--to-lsn" => {
                to_lsn = Some(
                    value(&mut i, arg)?
                        .parse::<u64>()
                        .map_err(|e| format!("{arg}: {e}"))?,
                )
            }
            "--sync-mode" => {
                sync_mode = match value(&mut i, arg)?.as_str() {
                    "commit" => SyncMode::Commit,
                    "buffered" => SyncMode::Buffered,
                    other => return Err(format!("--sync-mode: '{other}' (commit|buffered)")),
                }
            }
            "--buffer-pool-mb" => {
                buffer_pool_mb = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?;
                if buffer_pool_mb == 0 {
                    return Err("--buffer-pool-mb must be at least 1".into());
                }
            }
            "--replica-of" => replica_of = Some(value(&mut i, arg)?),
            "--promote" => promote = true,
            "--demo" => demo = true,
            "--help" | "-h" => {
                return Err("usage: hylite-server [--addr HOST:PORT] [--data-dir PATH] \
                            [--archive-dir PATH] [--restore-from PATH] [--to-lsn N] \
                            [--sync-mode commit|buffered] [--buffer-pool-mb MB] \
                            [--max-connections N] \
                            [--max-active-statements N] [--queue-depth N] [--queue-wait-ms MS] \
                            [--statement-timeout-ms MS] [--memory-budget-mb MB] \
                            [--drain-timeout-ms MS] [--slow-query-ms MS] \
                            [--metrics-addr HOST:PORT] [--replica-of HOST:PORT] [--promote] \
                            [--demo]"
                    .into())
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
        i += 1;
    }
    if replica_of.is_some() && data_dir.is_none() {
        return Err("--replica-of requires --data-dir (the replica persists the stream)".into());
    }
    if archive_dir.is_some() && data_dir.is_none() {
        return Err("--archive-dir requires --data-dir (there is no WAL to archive)".into());
    }
    if restore_from.is_some() && data_dir.is_none() {
        return Err("--restore-from requires --data-dir (the restore target)".into());
    }
    if to_lsn.is_some() && restore_from.is_none() {
        return Err("--to-lsn requires --restore-from (it bounds the restore replay)".into());
    }
    if restore_from.is_some() && replica_of.is_some() {
        return Err(
            "--restore-from starts a fresh-epoch primary; a replica follows its own primary".into(),
        );
    }
    if replica_of.is_some() && promote {
        return Err(
            "--promote starts a *primary* from a replica data dir; drop --replica-of".into(),
        );
    }
    if replica_of.is_some() && demo {
        return Err("--demo writes; a replica is read-only".into());
    }
    Ok(Cli {
        config,
        demo,
        data_dir,
        archive_dir,
        restore_from,
        to_lsn,
        sync_mode,
        buffer_pool_mb,
        replica_of,
        promote,
    })
}

fn load_demo(db: &Database) {
    for sql in [
        "CREATE TABLE t (x BIGINT)",
        "INSERT INTO t VALUES (1), (2), (3), (4), (5)",
        "CREATE TABLE edges (src BIGINT, dest BIGINT)",
        "INSERT INTO edges VALUES (1,2),(2,3),(3,4),(4,1),(1,3)",
    ] {
        if let Err(e) = db.execute(sql) {
            eprintln!("demo load failed on '{sql}': {e}");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Recovery runs to completion before the listener binds: no client
    // can observe a partially recovered database.
    let db = match &cli.data_dir {
        Some(dir) => {
            let vfs = Arc::new(hylite_common::StdVfs) as Arc<dyn hylite_common::Vfs>;
            if let Some(backup) = &cli.restore_from {
                match hylite_core::restore_backup(
                    &vfs,
                    std::path::Path::new(backup),
                    cli.archive_dir.as_deref().map(std::path::Path::new),
                    std::path::Path::new(dir),
                    cli.to_lsn,
                ) {
                    Ok(summary) => println!("restored {dir} from {backup}: {}", summary.summary()),
                    Err(e) => {
                        eprintln!("failed to restore '{backup}' into '{dir}': {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let options = DurabilityOptions {
                sync_mode: cli.sync_mode,
                buffer_pool_bytes: cli.buffer_pool_mb * 1024 * 1024,
                role: if cli.replica_of.is_some() {
                    ReplRole::Replica
                } else {
                    ReplRole::Primary
                },
                promote: cli.promote,
                archive_dir: cli.archive_dir.as_ref().map(std::path::PathBuf::from),
                ..DurabilityOptions::default()
            };
            match Database::open_with(vfs, std::path::Path::new(dir), options) {
                Ok(db) => {
                    if let Some(report) = db.recovery_report() {
                        println!("recovered {dir}: {}", report.summary());
                    }
                    Arc::new(db)
                }
                Err(e) => {
                    eprintln!("failed to open data dir '{dir}': {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => Arc::new(Database::new()),
    };
    if cli.demo {
        load_demo(&db);
    }
    if let Some(primary) = cli.replica_of {
        let handle = match Replica::start(db, cli.config, ReplicaConfig::new(primary.clone())) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("failed to start replica: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "hylite-server (replica of {primary}) listening on {}",
            handle.local_addr()
        );
        if let Some(m) = handle.metrics_addr() {
            println!("metrics on http://{m}/metrics");
        }
        // The serving side stops on a Shutdown frame or when catch-up
        // fails permanently; either way, stop following and exit.
        handle.join();
        println!("hylite-server (replica) stopped");
        return ExitCode::SUCCESS;
    }
    let handle = match Server::start(cli.config, db) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hylite-server listening on {}", handle.local_addr());
    if let Some(m) = handle.metrics_addr() {
        println!("metrics on http://{m}/metrics");
    }
    handle.join();
    println!("hylite-server stopped");
    ExitCode::SUCCESS
}
