//! Admission control: a bounded statement queue with backpressure.
//!
//! Every `Query` frame must obtain a [`StatementPermit`] before touching
//! the engine. At most `max_active_statements` permits are out at once;
//! up to `statement_queue_depth` further statements block (providing
//! backpressure on their connections) for at most `queue_wait`. Anything
//! beyond that is shed immediately with a typed overload [`Rejection`],
//! so a flood of clients degrades into fast, explicit errors instead of
//! an unbounded pile-up inside the engine.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the queue critical sections
//! only update two counters, and statements hold the permit *outside*
//! the lock while executing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hylite_common::telemetry::MetricsRegistry;
use hylite_common::wire::ErrorCode;
use hylite_common::HyError;

/// Why admission control refused a statement or connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// No execution slot and no queue slot (or connection cap reached).
    Overloaded(String),
    /// Queued, but no slot freed up within the backpressure deadline.
    QueueTimeout(String),
    /// The server is draining for shutdown.
    ShuttingDown(String),
}

impl Rejection {
    /// The wire error code for this rejection.
    pub fn code(&self) -> ErrorCode {
        match self {
            Rejection::Overloaded(_) => ErrorCode::Overloaded,
            Rejection::QueueTimeout(_) => ErrorCode::QueueTimeout,
            Rejection::ShuttingDown(_) => ErrorCode::ShuttingDown,
        }
    }

    /// The human-readable reason.
    pub fn message(&self) -> &str {
        match self {
            Rejection::Overloaded(m) | Rejection::QueueTimeout(m) | Rejection::ShuttingDown(m) => m,
        }
    }

    /// The equivalent engine error (always [`HyError::Unavailable`]).
    pub fn to_error(&self) -> HyError {
        HyError::Unavailable(self.message().to_owned())
    }
}

#[derive(Debug, Default)]
struct Gate {
    active: usize,
    queued: usize,
}

/// The statement gate shared by all connections of one server.
#[derive(Debug)]
pub struct Admission {
    max_active: usize,
    queue_depth: usize,
    queue_wait: Duration,
    gate: Mutex<Gate>,
    freed: Condvar,
    metrics: Arc<MetricsRegistry>,
    /// Monotonic id source for permits (diagnostics only).
    next_id: AtomicU64,
}

impl Admission {
    /// A gate allowing `max_active` concurrent statements with a waiting
    /// queue of `queue_depth`, shedding waiters after `queue_wait`.
    pub fn new(
        max_active: usize,
        queue_depth: usize,
        queue_wait: Duration,
        metrics: Arc<MetricsRegistry>,
    ) -> Admission {
        Admission {
            max_active: max_active.max(1),
            queue_depth,
            queue_wait,
            gate: Mutex::new(Gate::default()),
            freed: Condvar::new(),
            metrics,
            next_id: AtomicU64::new(1),
        }
    }

    /// Statements currently executing.
    pub fn active(&self) -> usize {
        self.gate.lock().unwrap_or_else(|e| e.into_inner()).active
    }

    /// Statements currently queued for a slot.
    pub fn queued(&self) -> usize {
        self.gate.lock().unwrap_or_else(|e| e.into_inner()).queued
    }

    /// Block until an execution slot is free (within the backpressure
    /// budget) and return the permit, or a typed [`Rejection`].
    pub fn admit(&self) -> Result<StatementPermit<'_>, Rejection> {
        let wait_started = Instant::now();
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        if gate.active < self.max_active {
            gate.active += 1;
        } else {
            if gate.queued >= self.queue_depth {
                drop(gate);
                self.metrics
                    .counter("server.stmt_rejected_queue_full")
                    .inc();
                return Err(Rejection::Overloaded(format!(
                    "server overloaded: {} statements executing and {} queued (queue depth {})",
                    self.max_active, self.queue_depth, self.queue_depth
                )));
            }
            gate.queued += 1;
            self.metrics.counter("server.stmt_queued").inc();
            let deadline = wait_started + self.queue_wait;
            loop {
                let now = Instant::now();
                if gate.active < self.max_active {
                    gate.queued -= 1;
                    gate.active += 1;
                    break;
                }
                if now >= deadline {
                    gate.queued -= 1;
                    drop(gate);
                    self.metrics
                        .counter("server.stmt_rejected_queue_timeout")
                        .inc();
                    return Err(Rejection::QueueTimeout(format!(
                        "statement queued for {} ms without an execution slot \
                         (max_active_statements = {})",
                        self.queue_wait.as_millis(),
                        self.max_active
                    )));
                }
                let (g, _timeout) = self
                    .freed
                    .wait_timeout(gate, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                gate = g;
            }
        }
        drop(gate);
        self.metrics.counter("server.stmt_admitted").inc();
        self.metrics
            .histogram("server.queue_wait_us")
            .record(wait_started.elapsed().as_micros() as u64);
        self.metrics.gauge("server.active_statements").add(1);
        Ok(StatementPermit {
            admission: self,
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
        })
    }

    fn release(&self) {
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.active = gate.active.saturating_sub(1);
        drop(gate);
        self.metrics.gauge("server.active_statements").add(-1);
        self.freed.notify_one();
    }
}

/// RAII execution slot from [`Admission::admit`]; frees the slot (and
/// wakes one queued statement) on drop.
#[derive(Debug)]
pub struct StatementPermit<'a> {
    admission: &'a Admission,
    id: u64,
}

impl StatementPermit<'_> {
    /// Diagnostic permit id (monotonic per server).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for StatementPermit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn admission(max_active: usize, depth: usize, wait_ms: u64) -> Arc<Admission> {
        Arc::new(Admission::new(
            max_active,
            depth,
            Duration::from_millis(wait_ms),
            Arc::new(MetricsRegistry::new()),
        ))
    }

    #[test]
    fn serial_admission_is_free() {
        let a = admission(2, 4, 100);
        let p1 = a.admit().unwrap();
        let p2 = a.admit().unwrap();
        assert_eq!(a.active(), 2);
        drop(p1);
        drop(p2);
        assert_eq!(a.active(), 0);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let a = admission(1, 0, 10_000);
        let _p = a.admit().unwrap();
        let started = Instant::now();
        let err = a.admit().unwrap_err();
        assert!(matches!(err, Rejection::Overloaded(_)), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "zero-depth queue must not wait"
        );
    }

    #[test]
    fn queue_timeout_sheds_waiters() {
        let a = admission(1, 4, 50);
        let _p = a.admit().unwrap();
        let err = a.admit().unwrap_err();
        assert!(matches!(err, Rejection::QueueTimeout(_)), "{err:?}");
        assert_eq!(a.queued(), 0, "queue count restored after shed");
    }

    #[test]
    fn queued_statement_runs_when_slot_frees() {
        let a = admission(1, 4, 5_000);
        let p = a.admit().unwrap();
        let a2 = Arc::clone(&a);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let waiter = std::thread::spawn(move || {
            let _p = a2.admit().unwrap();
            ran2.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "still blocked");
        drop(p);
        waiter.join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(a.active(), 0);
    }

    #[test]
    fn hammering_the_gate_never_exceeds_max_active() {
        let a = admission(3, 64, 10_000);
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (a, peak, live) = (Arc::clone(&a), Arc::clone(&peak), Arc::clone(&live));
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let _p = a.admit().unwrap();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(200));
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "cap respected");
        assert_eq!(a.active(), 0);
    }

    #[test]
    fn rejection_maps_to_typed_wire_codes() {
        assert_eq!(
            Rejection::Overloaded("x".into()).code(),
            ErrorCode::Overloaded
        );
        assert_eq!(
            Rejection::QueueTimeout("x".into()).code(),
            ErrorCode::QueueTimeout
        );
        assert_eq!(
            Rejection::ShuttingDown("x".into()).code(),
            ErrorCode::ShuttingDown
        );
        assert!(matches!(
            Rejection::Overloaded("x".into()).to_error(),
            HyError::Unavailable(_)
        ));
    }
}
