//! Primary-side WAL shipping: stream the redo log to read replicas.
//!
//! A replica opens an ordinary TCP connection and sends a `Replicate`
//! frame instead of `Startup`. The primary answers with either
//!
//! * `ReplicateOk` — the replica's `(epoch, last_lsn)` resume point is
//!   still covered by the local WAL; frames follow from `last_lsn + 1`; or
//! * `SnapshotOffer` — the resume point is unusable (epoch mismatch after
//!   a primary restart, WAL truncated by a checkpoint, or the replica is
//!   *ahead* of this primary, i.e. a fork). The replica must discard its
//!   local state and install the shipped checkpoint image first.
//!
//! After the handshake the primary streams `WalFrame`s **verbatim** —
//! same payload bytes, same CRC as its own WAL — re-verifying each CRC as
//! it reads them back from disk, so a torn or bit-flipped local log can
//! never be forwarded as if it were intact.
//!
//! Flow control is a byte window over unacknowledged frames: a
//! per-connection reader thread consumes `ReplicaAck` frames and advances
//! the acked LSN; once `repl_max_unacked_bytes` of payload is in flight
//! the streamer stops sending, and if the window stays full for
//! `repl_ack_timeout` the replica is **shed** (typed `Overloaded` error,
//! connection closed, `server.replicas_shed` metric) — commits on the
//! primary never wait on a slow replica.

use std::collections::VecDeque;
use std::net::Shutdown;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hylite_common::faultnet::NP_REPL_STREAM;
use hylite_common::wire::{self, ErrorCode, Frame, PROTOCOL_VERSION};
use hylite_common::{NetStream, Result};
use hylite_core::{Durability, ReplTail};

use crate::server::{ReplStreamStats, Shared};

/// Frames fetched from the WAL per poll (bounds commit-lock hold time).
const TAIL_BATCH_FRAMES: usize = 64;

/// Sleep out the configured poll interval in small slices, waking early
/// when the server starts draining — shutdown must never wait out a
/// long `repl_poll_interval`.
fn poll_sleep(shared: &Shared) {
    let deadline = Instant::now() + shared.config.repl_poll_interval;
    while !shared.is_draining() {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(std::time::Duration::from_millis(20)));
    }
}

/// Entry point for a connection whose first frame was `Replicate`.
pub(crate) fn serve_replication(
    mut stream: NetStream,
    shared: Arc<Shared>,
    version: u32,
    replica_epoch: u64,
    last_lsn: u64,
) {
    // The Replicate handshake identified this accepted connection as a
    // replica's: report to the streamer's own fault point from here on.
    stream.rescope(NP_REPL_STREAM);
    if version != PROTOCOL_VERSION {
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(
                ErrorCode::Protocol,
                format!(
                    "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
                ),
            ),
        );
        return;
    }
    if shared.is_draining() {
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(ErrorCode::ShuttingDown, "server is shutting down"),
        );
        return;
    }
    let Some(durability) = shared.db.durability().cloned() else {
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(
                ErrorCode::Protocol,
                "replication requires a durable primary (start the server with --data-dir)",
            ),
        );
        return;
    };
    if shared.db.is_replica() {
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(
                ErrorCode::Protocol,
                "this server is itself a replica; replicate from the primary",
            ),
        );
        return;
    }

    // Replication connections count against the same connection cap as
    // query sessions: admission control decides who gets a slot, never
    // the commit path.
    let live = shared.conn_count.fetch_add(1, Ordering::AcqRel) + 1;
    if live > shared.config.max_connections {
        shared.conn_count.fetch_sub(1, Ordering::AcqRel);
        shared.metrics.counter("server.connections_rejected").inc();
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(
                ErrorCode::Overloaded,
                format!(
                    "connection cap of {} reached",
                    shared.config.max_connections
                ),
            ),
        );
        return;
    }
    shared.metrics.gauge("server.replicas_connected").add(1);
    // Streaming uses its own pacing; the handshake timeout set by the
    // dispatcher must not fire between polls.
    let _ = stream.set_read_timeout(None);

    // Publish this stream's progress for `hylite.replication` and the
    // repl.lag_* gauges; unregistered again on any exit path.
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    let (stream_id, stats) = shared.register_repl_stream(peer);

    if let Err(e) = stream_to_replica(
        &mut stream,
        &shared,
        &durability,
        replica_epoch,
        last_lsn,
        &stats,
    ) {
        let _ = wire::write_frame(&mut stream, &Frame::error(&e));
    }

    shared.unregister_repl_stream(stream_id);
    let _ = stream.shutdown(Shutdown::Both);
    shared.metrics.gauge("server.replicas_connected").add(-1);
    shared.conn_count.fetch_sub(1, Ordering::AcqRel);
}

/// Handshake + streaming loop. Returns `Ok` on orderly exit (peer gone,
/// drain, shed); `Err` only for faults worth reporting to the peer.
fn stream_to_replica(
    stream: &mut NetStream,
    shared: &Shared,
    durability: &Durability,
    replica_epoch: u64,
    last_lsn: u64,
    stats: &ReplStreamStats,
) -> Result<()> {
    let epoch = durability.epoch();
    stats.epoch.store(epoch, Ordering::Release);
    let resume = last_lsn + 1;

    // Decide the start point. A replica from a different incarnation
    // (or one whose resume LSN we cannot serve) is re-bootstrapped; one
    // we can resume gets ReplicateOk and the WAL tail.
    let resumable = replica_epoch == epoch
        && matches!(
            durability.read_replication_tail(resume, 1)?,
            ReplTail::Frames { .. }
        );
    let (mut cursor, mut acked) = if resumable {
        wire::write_frame(
            stream,
            &Frame::ReplicateOk {
                epoch,
                next_lsn: durability.next_lsn(),
            },
        )?;
        (resume, last_lsn)
    } else {
        let start = send_bootstrap(stream, shared, durability, epoch)?;
        stats.bootstraps.fetch_add(1, Ordering::AcqRel);
        start
    };
    stats
        .sent_lsn
        .store(cursor.saturating_sub(1), Ordering::Release);
    stats.acked_lsn.store(acked, Ordering::Release);

    // Ack reader: a second thread consuming ReplicaAck frames from the
    // same socket, publishing the high-water mark for the flow-control
    // window. The socket shutdown at the end of streaming unblocks it.
    let ack_lsn = Arc::new(AtomicU64::new(acked));
    let mut ack_stream = stream
        .try_clone()
        .map_err(|e| hylite_common::HyError::Internal(format!("socket clone failed: {e}")))?;
    let ack_thread = {
        let ack_lsn = Arc::clone(&ack_lsn);
        std::thread::Builder::new()
            .name("hylite-repl-ack".into())
            .spawn(move || {
                while let Ok(Frame::ReplicaAck { lsn }) = wire::read_frame(&mut ack_stream) {
                    ack_lsn.fetch_max(lsn, Ordering::AcqRel);
                }
            })
            .map_err(|e| hylite_common::HyError::Internal(format!("spawn failed: {e}")))?
    };

    // (lsn, payload bytes) of sent-but-unacked frames, oldest first.
    let mut in_flight: VecDeque<(u64, u64)> = VecDeque::new();
    let mut unacked_bytes = 0u64;
    let mut last_ack_progress = Instant::now();
    let result = loop {
        if shared.is_draining() {
            break Ok(());
        }
        // Retire everything the replica has durably applied.
        let a = ack_lsn.load(Ordering::Acquire);
        if a > acked {
            acked = a;
            last_ack_progress = Instant::now();
            while in_flight.front().is_some_and(|&(lsn, _)| lsn <= acked) {
                let (_, bytes) = in_flight.pop_front().expect("front checked");
                unacked_bytes = unacked_bytes.saturating_sub(bytes);
            }
            stats.acked_lsn.store(acked, Ordering::Release);
            stats.unacked_bytes.store(unacked_bytes, Ordering::Release);
        }
        if unacked_bytes >= shared.config.repl_max_unacked_bytes {
            if last_ack_progress.elapsed() >= shared.config.repl_ack_timeout {
                // Slow replica: shed it rather than buffering without
                // bound or stalling anything on the primary.
                shared.metrics.counter("server.replicas_shed").inc();
                break Err(hylite_common::HyError::Unavailable(format!(
                    "replication ack window ({} bytes) stalled for {:?}; shedding replica",
                    shared.config.repl_max_unacked_bytes, shared.config.repl_ack_timeout
                )));
            }
            poll_sleep(shared);
            continue;
        }
        match durability.read_replication_tail(cursor, TAIL_BATCH_FRAMES)? {
            ReplTail::Frames { frames, .. } => {
                if frames.is_empty() {
                    // Caught up; poll for new commits.
                    poll_sleep(shared);
                    continue;
                }
                let mut write_failed = false;
                for frame in frames {
                    let bytes = frame.payload.len() as u64;
                    let lsn = frame.lsn;
                    if wire::write_frame(
                        stream,
                        &Frame::WalFrame {
                            lsn,
                            crc: frame.crc,
                            payload: frame.payload,
                        },
                    )
                    .is_err()
                    {
                        write_failed = true;
                        break;
                    }
                    shared.metrics.counter("server.wal_frames_sent").inc();
                    shared.metrics.counter("server.wal_bytes_sent").add(bytes);
                    cursor = lsn + 1;
                    in_flight.push_back((lsn, bytes));
                    unacked_bytes += bytes;
                    stats.sent_lsn.store(lsn, Ordering::Release);
                    stats.unacked_bytes.store(unacked_bytes, Ordering::Release);
                }
                if write_failed {
                    break Ok(()); // peer went away
                }
            }
            ReplTail::NeedSnapshot => {
                // A local checkpoint truncated the frames the replica
                // still needs; re-bootstrap in place. The replica
                // handles SnapshotOffer at any point in the stream.
                match send_bootstrap(stream, shared, durability, epoch) {
                    Ok((c, a)) => {
                        cursor = c;
                        acked = a;
                        ack_lsn.store(a, Ordering::Release);
                        in_flight.clear();
                        unacked_bytes = 0;
                        last_ack_progress = Instant::now();
                        stats.bootstraps.fetch_add(1, Ordering::AcqRel);
                        stats.sent_lsn.store(c.saturating_sub(1), Ordering::Release);
                        stats.acked_lsn.store(a, Ordering::Release);
                        stats.unacked_bytes.store(0, Ordering::Release);
                    }
                    Err(_) => break Ok(()), // peer went away
                }
            }
            ReplTail::Diverged { next_lsn } => {
                // Same epoch but the replica claims commits this primary
                // never made — a fork. Never stream over it.
                break Err(hylite_common::HyError::Storage(format!(
                    "replica resume lsn {cursor} is ahead of the primary's log (next lsn \
                     {next_lsn}); diverged history, re-bootstrap required"
                )));
            }
        }
    };
    // Wake and join the ack reader before the caller reports any error:
    // its socket clone dies with this shutdown.
    let _ = stream.shutdown(Shutdown::Read);
    let _ = ack_thread.join();
    result
}

/// Snapshot the committed state and offer it to the replica. Returns the
/// `(cursor, acked)` pair streaming continues from.
fn send_bootstrap(
    stream: &mut NetStream,
    shared: &Shared,
    durability: &Durability,
    epoch: u64,
) -> Result<(u64, u64)> {
    let (base_lsn, data) = durability.bootstrap_snapshot(shared.db.catalog())?;
    wire::write_frame(
        stream,
        &Frame::SnapshotOffer {
            epoch,
            base_lsn,
            data,
        },
    )?;
    shared
        .metrics
        .counter("server.replica_bootstraps_sent")
        .inc();
    Ok((base_lsn, base_lsn.saturating_sub(1)))
}
