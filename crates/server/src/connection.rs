//! Per-connection protocol handling: handshake, query loop, result
//! streaming, out-of-band cancel.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hylite_common::wire::{self, ErrorCode, Frame, PROTOCOL_VERSION};
use hylite_common::{NetStream, Result, CHUNK_ROWS};
use hylite_core::{QueryResult, Session};

use crate::server::{SessionEntry, Shared};

/// Deadline for the first frame of a fresh connection, so half-open
/// sockets can't pin resources forever.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Entry point of a connection thread: dispatch on the first frame.
pub(crate) fn serve_connection(mut stream: NetStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let first = match wire::read_frame(&mut stream) {
        Ok(f) => f,
        Err(_) => return,
    };
    match first {
        Frame::Startup { version } => handle_startup(stream, shared, version),
        Frame::Cancel { session_id, secret } => handle_cancel(stream, &shared, session_id, secret),
        Frame::Replicate {
            version,
            epoch,
            last_lsn,
        } => crate::replication::serve_replication(stream, shared, version, epoch, last_lsn),
        Frame::Shutdown => {
            shared.request_shutdown();
            let _ = wire::write_frame(
                &mut stream,
                &Frame::CommandComplete {
                    rows_affected: 0,
                    total_rows: 0,
                    lsn: durable_lsn(&shared),
                },
            );
        }
        Frame::Promote => handle_promote(stream, &shared),
        Frame::Repoint { primary_addr } => handle_repoint(stream, &shared, &primary_addr),
        Frame::Backup { dir, base, verify } => handle_backup(stream, &shared, &dir, base, verify),
        _ => {
            let _ = wire::write_frame(
                &mut stream,
                &Frame::error_with_code(
                    ErrorCode::Protocol,
                    "expected Startup, Cancel, Replicate, Shutdown, Promote, Repoint, or \
                     Backup as the first frame",
                ),
            );
        }
    }
}

/// This node's highest durable LSN (`0` on a non-durable server).
fn durable_lsn(shared: &Shared) -> u64 {
    shared
        .db
        .durability()
        .map(|d| d.next_lsn().saturating_sub(1))
        .unwrap_or(0)
}

/// Admin frame: promote this replica to a writable primary in place.
/// Idempotent on a node that already serves writes.
fn handle_promote(mut stream: NetStream, shared: &Shared) {
    if !shared.db.is_replica() {
        let Some(durability) = shared.db.durability() else {
            let _ = wire::write_frame(
                &mut stream,
                &Frame::error_with_code(
                    ErrorCode::Protocol,
                    "promotion requires a durable server (start it with --data-dir)",
                ),
            );
            return;
        };
        let _ = wire::write_frame(
            &mut stream,
            &Frame::PromoteOk {
                epoch: durability.epoch(),
                lsn: durable_lsn(shared),
            },
        );
        return;
    }
    let Some(control) = shared.failover_control() else {
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(
                ErrorCode::Internal,
                "this replica has no failover control registered",
            ),
        );
        return;
    };
    match control.promote() {
        Ok(epoch) => {
            shared.metrics.counter("server.promotions").inc();
            let _ = wire::write_frame(
                &mut stream,
                &Frame::PromoteOk {
                    epoch,
                    lsn: durable_lsn(shared),
                },
            );
        }
        Err(e) => {
            let _ = wire::write_frame(&mut stream, &Frame::error(&e));
        }
    }
}

/// Admin frame: tell this replica to follow a different primary.
fn handle_repoint(mut stream: NetStream, shared: &Shared, primary_addr: &str) {
    let control = match shared.failover_control() {
        Some(c) if shared.db.is_replica() => c,
        _ => {
            let _ = wire::write_frame(
                &mut stream,
                &Frame::error_with_code(
                    ErrorCode::Protocol,
                    "Repoint targets a replica; this server is not one",
                ),
            );
            return;
        }
    };
    match control.repoint(primary_addr) {
        Ok(()) => {
            shared.metrics.counter("server.repoints").inc();
            let _ = wire::write_frame(
                &mut stream,
                &Frame::CommandComplete {
                    rows_affected: 0,
                    total_rows: 0,
                    lsn: durable_lsn(shared),
                },
            );
        }
        Err(e) => {
            let _ = wire::write_frame(&mut stream, &Frame::error(&e));
        }
    }
}

/// Admin frame: take an online backup into a server-side directory.
/// Works on primaries and replicas alike (a backup is a read); the copy
/// runs outside the commit lock, so writes proceed while it streams.
fn handle_backup(
    mut stream: NetStream,
    shared: &Shared,
    dir: &str,
    base: Option<String>,
    verify: bool,
) {
    let Some(durability) = shared.db.durability() else {
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(
                ErrorCode::Protocol,
                "backup requires a durable server (start it with --data-dir)",
            ),
        );
        return;
    };
    // A backup copies every sealed segment; don't let the handshake
    // timeout kill a long copy mid-stream.
    let _ = stream.set_read_timeout(None);
    match durability.backup(
        std::path::Path::new(dir),
        base.as_deref().map(std::path::Path::new),
        verify,
    ) {
        Ok(summary) => {
            shared.metrics.counter("server.backups").inc();
            let _ = wire::write_frame(
                &mut stream,
                &Frame::BackupOk {
                    lsn: summary.backup_lsn,
                    segments: summary.segments_copied,
                    bytes: summary.bytes,
                },
            );
        }
        Err(e) => {
            let _ = wire::write_frame(&mut stream, &Frame::error(&e));
        }
    }
}

fn handle_startup(mut stream: NetStream, shared: Arc<Shared>, version: u32) {
    if version != PROTOCOL_VERSION {
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(
                ErrorCode::Protocol,
                format!(
                    "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
                ),
            ),
        );
        return;
    }
    if shared.is_draining() {
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(ErrorCode::ShuttingDown, "server is shutting down"),
        );
        return;
    }

    // Connection cap: reserve a slot or reject with a typed error.
    let live = shared.conn_count.fetch_add(1, Ordering::AcqRel) + 1;
    if live > shared.config.max_connections {
        shared.conn_count.fetch_sub(1, Ordering::AcqRel);
        shared.metrics.counter("server.connections_rejected").inc();
        let _ = wire::write_frame(
            &mut stream,
            &Frame::error_with_code(
                ErrorCode::Overloaded,
                format!(
                    "connection cap of {} reached",
                    shared.config.max_connections
                ),
            ),
        );
        return;
    }
    shared.metrics.gauge("server.connections_active").add(1);

    let release = |shared: &Shared| {
        shared.conn_count.fetch_sub(1, Ordering::AcqRel);
        shared.metrics.gauge("server.connections_active").add(-1);
    };

    // Build the engine session with the server-level governor defaults;
    // a later client `SET` simply overwrites them.
    let mut session = shared.db.session();
    if shared.config.statement_timeout_ms > 0 {
        let _ = session.execute(&format!(
            "SET statement_timeout_ms = {}",
            shared.config.statement_timeout_ms
        ));
    }
    if shared.config.memory_budget_mb > 0 {
        let _ = session.execute(&format!(
            "SET memory_budget_mb = {}",
            shared.config.memory_budget_mb
        ));
    }
    if shared.config.slow_query_ms > 0 {
        let _ = session.execute(&format!(
            "SET slow_query_ms = {}",
            shared.config.slow_query_ms
        ));
    }
    // On a replica the session is already read-only; replace the generic
    // redirect message with the primary's actual address. Runtime state,
    // not config: a promotion clears it and a repoint rewrites it.
    if let Some(primary) = shared.read_only_primary() {
        session.set_read_only(primary);
    }

    // The wire session id IS the engine session id, so `hylite.sessions`,
    // `hylite.connections`, slow-log entries, and trace ids all line up
    // with what the client was told at startup.
    let session_id = session.id();
    let secret = shared.new_secret(session_id);
    let busy = Arc::new(AtomicBool::new(false));
    // The drain path only ever calls `shutdown` on this handle; a raw
    // clone bypasses fault injection so a scripted partition can never
    // block server shutdown.
    let entry_stream = match stream.raw_try_clone() {
        Ok(s) => s,
        Err(e) => {
            release(&shared);
            let _ = wire::write_frame(
                &mut stream,
                &Frame::error_with_code(ErrorCode::Internal, format!("socket clone failed: {e}")),
            );
            return;
        }
    };
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    // Register before StartupOk so a Cancel racing right behind the
    // handshake already finds the session.
    shared.sessions.lock().insert(
        session_id,
        SessionEntry {
            secret,
            cancel: session.cancel_handle(),
            stream: entry_stream,
            busy: Arc::clone(&busy),
            peer,
        },
    );
    let ok = wire::write_frame(
        &mut stream,
        &Frame::StartupOk {
            version: PROTOCOL_VERSION,
            session_id,
            secret,
        },
    );
    if ok.is_ok() {
        let _ = stream.set_read_timeout(None);
        query_loop(&mut stream, &mut session, &shared, &busy);
    }
    shared.sessions.lock().remove(&session_id);
    release(&shared);
    // `session` drops here, rolling back any open transaction.
}

/// Serve Query frames until the peer disconnects, terminates, or the
/// server drains.
fn query_loop(stream: &mut NetStream, session: &mut Session, shared: &Shared, busy: &AtomicBool) {
    // A read error means disconnect, malformed frame, or the drain closing
    // the socket — all of them end the session.
    while let Ok(frame) = wire::read_frame(stream) {
        match frame {
            Frame::Query { sql } => {
                if shared.is_draining() {
                    let _ = wire::write_frame(
                        stream,
                        &Frame::error_with_code(ErrorCode::ShuttingDown, "server is shutting down"),
                    );
                    break;
                }
                let permit = match shared.admission.admit() {
                    Ok(p) => p,
                    Err(rejection) => {
                        shared.metrics.counter("server.query_errors").inc();
                        let sent = wire::write_frame(
                            stream,
                            &Frame::error_with_code(rejection.code(), rejection.message()),
                        );
                        if sent.is_err() {
                            break;
                        }
                        continue;
                    }
                };
                busy.store(true, Ordering::Release);
                let started = Instant::now();
                // Panic isolation: the engine is designed panic-free, but
                // a panicking operator must cost exactly one connection,
                // not the server. AssertUnwindSafe is sound here because
                // a panicking session is never used again — the loop
                // breaks and the session drops (rolling back its open
                // transaction) right after.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if shared.config.panic_on_sql.as_deref() == Some(sql.as_str()) {
                        panic!("injected fault for statement {sql:?}");
                    }
                    session.execute(&sql)
                }));
                busy.store(false, Ordering::Release);
                // Execution is done (results are materialized); release the
                // slot *before* writing any frame so that by the time the
                // client sees completion the slot is observably free.
                drop(permit);
                let result = match result {
                    Ok(r) => r,
                    Err(panic) => {
                        shared.metrics.counter("server.panics").inc();
                        shared.metrics.counter("server.query_errors").inc();
                        let msg = panic_message(&panic);
                        let _ = wire::write_frame(
                            stream,
                            &Frame::error_with_code(
                                ErrorCode::Internal,
                                format!("statement panicked: {msg}"),
                            ),
                        );
                        break; // session state is unknown; end this connection only
                    }
                };
                let outcome = match result {
                    Ok(r) => stream_result(stream, &r, shared),
                    Err(e) => {
                        shared.metrics.counter("server.query_errors").inc();
                        wire::write_frame(stream, &Frame::error(&e)).map(|_| ())
                    }
                };
                shared.metrics.counter("server.queries").inc();
                shared
                    .metrics
                    .histogram("server.statement_us")
                    .record(started.elapsed().as_micros() as u64);
                if outcome.is_err() {
                    break; // peer went away mid-result
                }
                if shared.is_draining() {
                    break; // in-flight statement drained; now close
                }
            }
            Frame::Terminate => break,
            Frame::Shutdown => {
                shared.request_shutdown();
                break;
            }
            _ => {
                let _ = wire::write_frame(
                    stream,
                    &Frame::error_with_code(
                        ErrorCode::Protocol,
                        "expected Query, Terminate, or Shutdown",
                    ),
                );
                break;
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Stream one result: schema, then each chunk as soon as it is sliced
/// off (bounded server-side memory), then completion.
fn stream_result(stream: &mut NetStream, result: &QueryResult, shared: &Shared) -> Result<()> {
    let mut bytes = wire::write_frame(
        stream,
        &Frame::ResultSchema {
            schema: result.schema().as_ref().clone(),
        },
    )?;
    let mut rows = 0u64;
    let mut chunks = 0u64;
    for chunk in result.stream_chunks(CHUNK_ROWS) {
        rows += chunk.len() as u64;
        chunks += 1;
        bytes += wire::write_frame(stream, &Frame::DataChunk { chunk })?;
    }
    bytes += wire::write_frame(
        stream,
        &Frame::CommandComplete {
            rows_affected: result.rows_affected as u64,
            total_rows: rows,
            // The durable watermark travels with every completion so a
            // router can track each node's applied LSN for free.
            lsn: durable_lsn(shared),
        },
    )?;
    shared.metrics.counter("server.rows_sent").add(rows);
    shared.metrics.counter("server.chunks_sent").add(chunks);
    shared
        .metrics
        .counter("server.bytes_sent")
        .add(bytes as u64);
    Ok(())
}

/// Out-of-band cancel: deliver if the (session, secret) pair matches a
/// registered session, then answer and close.
fn handle_cancel(mut stream: NetStream, shared: &Shared, session_id: u64, secret: u64) {
    let delivered = {
        let sessions = shared.sessions.lock();
        match sessions.get(&session_id) {
            Some(entry) if entry.secret == secret => {
                entry.cancel.cancel();
                true
            }
            _ => false,
        }
    };
    shared.metrics.counter("server.cancel_requests").inc();
    if delivered {
        shared.metrics.counter("server.cancel_delivered").inc();
    }
    let _ = wire::write_frame(&mut stream, &Frame::CancelAck { delivered });
}
