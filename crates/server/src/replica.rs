//! The replica: follow a primary's WAL stream and serve read-only SQL.
//!
//! [`Replica::start`] wraps an ordinary [`Server`] (so replicas speak the
//! full query protocol — sessions, cancel, admission control, metrics)
//! around a database opened in the replica role, and runs an **apply
//! loop** on its own thread:
//!
//! 1. connect to the primary and send `Replicate { epoch, last_lsn }`,
//!    where `last_lsn` is the last commit the local WAL holds durably;
//! 2. install a `SnapshotOffer` if the primary sends one (discarding all
//!    local state — divergence is never streamed over), else resume from
//!    `ReplicateOk`;
//! 3. apply each `WalFrame` through the normal redo path — CRC
//!    re-verified, LSN required to be exactly contiguous, fsynced into
//!    the local WAL **before** the `ReplicaAck` goes back, so an acked
//!    LSN survives a replica `kill -9`;
//! 4. on any connection error, reconnect with the client crate's
//!    jittered exponential backoff and resume from the new `last_lsn`.
//!
//! Failure philosophy: network faults are routine and retried forever;
//! **local** faults (a poisoned WAL, a failed bootstrap install) mean the
//! replica can no longer promise convergence, so it stops serving
//! entirely (`ReplicaHandle::has_failed`) rather than answering queries
//! from a state it cannot vouch for.
//!
//! Writes sent to a replica session are rejected before binding with the
//! retryable [`ErrorCode::ReadOnlyReplica`](hylite_common::wire::ErrorCode)
//! error, whose message names the primary's address.

use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use hylite_client::RetryPolicy;
use hylite_common::faultnet::NP_REPL_APPLY;
use hylite_common::sysview::{SystemView, SystemViewProvider};
use hylite_common::wire::{self, ErrorCode, Frame, PROTOCOL_VERSION};
use hylite_common::{HyError, NetHandle, Result, Value};
use hylite_core::{Database, Durability};
use parking_lot::Mutex;

use crate::config::ServerConfig;
use crate::server::{FailoverControl, Server, ServerHandle, Shared};

/// Tunables of the replica's apply loop.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Address of the primary to replicate from, e.g. `127.0.0.1:5433`.
    pub primary_addr: String,
    /// Backoff schedule for reconnecting to the primary. Unlike a client
    /// statement retry the replica never gives up: `max_attempts` and
    /// `deadline` are ignored, only the backoff curve is used.
    pub retry: RetryPolicy,
    /// Seed for deterministic backoff jitter (tests fix this).
    pub backoff_seed: u64,
    /// Take a local checkpoint once the replica's WAL grows past this
    /// many durable bytes, so replica restarts recover from a recent
    /// image instead of replaying the whole stream. `0` disables.
    pub checkpoint_wal_bytes: u64,
    /// Transport for the apply loop's outbound connection to the primary
    /// (the `repl.apply` fault point). Defaults to the real network.
    pub net: NetHandle,
}

impl ReplicaConfig {
    /// Defaults for a replica following `primary_addr`.
    pub fn new(primary_addr: impl Into<String>) -> ReplicaConfig {
        ReplicaConfig {
            primary_addr: primary_addr.into(),
            retry: RetryPolicy::default(),
            backoff_seed: 0x005E_ED0F_5EED,
            checkpoint_wal_bytes: 8 * 1024 * 1024,
            net: NetHandle::default(),
        }
    }
}

/// Shared, lock-free view of the apply loop's progress.
#[derive(Debug, Default)]
pub struct ReplicaStatus {
    connected: AtomicBool,
    last_applied_lsn: AtomicU64,
    bootstraps: AtomicU64,
    failed: AtomicBool,
    /// Unix seconds of the last applied frame or installed snapshot
    /// (`0` = nothing applied this process lifetime).
    last_apply_unix: AtomicU64,
}

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl ReplicaStatus {
    /// Whether the apply loop currently holds a connection to the primary.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Acquire)
    }

    /// LSN of the last commit durably applied from the stream (`0` =
    /// nothing yet this process lifetime).
    pub fn last_applied_lsn(&self) -> u64 {
        self.last_applied_lsn.load(Ordering::Acquire)
    }

    /// How many times this replica discarded local state for a primary
    /// snapshot.
    pub fn bootstraps(&self) -> u64 {
        self.bootstraps.load(Ordering::Acquire)
    }

    /// True once the replica hit a local fault it cannot recover from
    /// (it has stopped serving).
    pub fn has_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Seconds since the stream last made durable progress, or `None` if
    /// nothing has been applied this process lifetime. A caught-up
    /// replica's staleness keeps growing while the primary is idle — it
    /// measures *stream silence*, not divergence.
    pub fn staleness_seconds(&self) -> Option<u64> {
        let last = self.last_apply_unix.load(Ordering::Acquire);
        (last > 0).then(|| unix_now().saturating_sub(last))
    }

    fn mark_applied(&self, lsn: u64) {
        self.last_applied_lsn.store(lsn, Ordering::Release);
        self.last_apply_unix.store(unix_now(), Ordering::Release);
    }
}

/// Control surface shared by the apply loop, the [`ReplicaHandle`], and
/// the failover hooks the embedded server's admin frames call into.
struct ApplyControl {
    /// Stop the apply loop (shutdown or in-place promotion).
    stop: AtomicBool,
    /// True while the apply loop is running; a promotion waits for it to
    /// clear before flipping the role, so no replicated frame can land
    /// after the flip.
    running: AtomicBool,
    /// The primary currently being followed. A `Repoint` rewrites it;
    /// the loop re-reads it on every (re)connect.
    primary_addr: Mutex<String>,
    /// Bumped on every repoint so a loop stuck in reconnect backoff
    /// abandons the sleep and tries the new address immediately.
    generation: AtomicU64,
    /// Reconnect attempt counter for the backoff curve; reset on any
    /// stream progress and on repoint.
    retry: AtomicU32,
    /// Socket of the current streaming session, for unblocking its
    /// blocking read from the outside.
    current: Mutex<Option<TcpStream>>,
}

impl ApplyControl {
    fn kick_current(&self) {
        if let Some(s) = self.current.lock().as_ref() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// The [`FailoverControl`] a replica registers on its embedded server:
/// translates the `Promote`/`Repoint` admin frames into apply-loop and
/// durability operations.
struct ReplicaFailover {
    db: Arc<Database>,
    control: Arc<ApplyControl>,
    status: Arc<ReplicaStatus>,
    shared: Arc<Shared>,
}

/// How long a promotion waits for the apply loop to wind down before
/// giving up (it only has to finish applying at most one frame).
const PROMOTE_STOP_DEADLINE: Duration = Duration::from_secs(10);

impl FailoverControl for ReplicaFailover {
    fn promote(&self) -> Result<u64> {
        if self.status.has_failed() {
            return Err(HyError::Storage(
                "this replica hit a local fault and cannot vouch for its state; \
                 promote a healthy node instead"
                    .into(),
            ));
        }
        // Stop following first: the apply loop must be fully out before
        // the role flips, so no replicated frame lands on a primary.
        self.control.stop.store(true, Ordering::Release);
        self.control.kick_current();
        let deadline = Instant::now() + PROMOTE_STOP_DEADLINE;
        while self.control.running.load(Ordering::Acquire) {
            if Instant::now() > deadline {
                return Err(HyError::Internal(
                    "the apply loop did not stop within the promotion deadline".into(),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let durability = self
            .db
            .durability()
            .expect("replica database is durable")
            .clone();
        let epoch = durability.promote_to_primary()?;
        // New sessions are writable from here on; existing read-only
        // sessions keep their redirect until the client reconnects.
        self.shared.set_writable();
        Ok(epoch)
    }

    fn repoint(&self, primary_addr: &str) -> Result<()> {
        if self.control.stop.load(Ordering::Acquire) {
            return Err(HyError::Unavailable(
                "this node is no longer following a primary (stopped or promoted)".into(),
            ));
        }
        *self.control.primary_addr.lock() = primary_addr.to_owned();
        self.control.retry.store(0, Ordering::Release);
        self.control.generation.fetch_add(1, Ordering::AcqRel);
        self.shared.set_read_only_primary(primary_addr);
        // Kill the current stream (if any) so the loop reconnects to the
        // new address; epoch fencing there decides resume vs re-bootstrap.
        self.control.kick_current();
        Ok(())
    }
}

/// The replica's [`SystemViewProvider`]: contributes this node's single
/// self-row to `hylite.replication` (the primary's provider contributes
/// the per-stream rows on the other side of the wire).
struct ReplicaViews {
    status: Arc<ReplicaStatus>,
    durability: Arc<Durability>,
    control: Arc<ApplyControl>,
    metrics: Arc<hylite_common::MetricsRegistry>,
}

impl SystemViewProvider for ReplicaViews {
    fn system_view_rows(&self, view: SystemView) -> Option<Vec<Vec<Value>>> {
        if view != SystemView::Replication {
            return None;
        }
        if self.durability.role() != hylite_core::ReplRole::Replica {
            // Promoted in place: the server's own provider reports the
            // primary-side rows now; no stale self-row.
            return Some(Vec::new());
        }
        let state = if self.status.has_failed() {
            "failed"
        } else if self.status.is_connected() {
            "streaming"
        } else {
            "disconnected"
        };
        let primary_addr = self.control.primary_addr.lock().clone();
        Some(vec![vec![
            Value::from("replica"),
            Value::from(primary_addr.as_str()),
            Value::from(state),
            Value::Int(self.durability.epoch() as i64),
            Value::Null, // sent_lsn is the primary's side of the ledger
            Value::Int(self.status.last_applied_lsn() as i64),
            Value::Null, // lag in frames/bytes is only known on the primary
            Value::Null,
            Value::Int(self.status.bootstraps() as i64),
            match self.status.staleness_seconds() {
                Some(s) => Value::Int(s as i64),
                None => Value::Null,
            },
            Value::from(self.durability.node_state()),
            Value::Int(self.metrics.counter("repl.reconnects").get() as i64),
            Value::Int(self.metrics.counter("repl.rebootstraps").get() as i64),
        ]])
    }
}

/// The replica entry point; see the module docs.
pub struct Replica;

impl Replica {
    /// Start serving `db` read-only while following the primary in
    /// `config`. `db` must have been opened in the replica role
    /// ([`DurabilityOptions::role`](hylite_core::DurabilityOptions)).
    pub fn start(
        db: Arc<Database>,
        mut server_config: ServerConfig,
        config: ReplicaConfig,
    ) -> Result<ReplicaHandle> {
        if !db.is_replica() {
            return Err(HyError::Storage(
                "Replica::start requires a database opened in the replica role \
                 (DurabilityOptions { role: ReplRole::Replica, .. })"
                    .into(),
            ));
        }
        server_config.read_only_primary = Some(config.primary_addr.clone());
        let server = Server::start(server_config, Arc::clone(&db))?;
        let local_addr = server.local_addr();
        let server_shared = server.shared();
        let status = Arc::new(ReplicaStatus::default());
        let control = Arc::new(ApplyControl {
            stop: AtomicBool::new(false),
            // Set before the thread spawns so a promotion arriving right
            // after startup still waits for the loop to exit.
            running: AtomicBool::new(true),
            primary_addr: Mutex::new(config.primary_addr.clone()),
            generation: AtomicU64::new(0),
            retry: AtomicU32::new(0),
            current: Mutex::new(None),
        });
        // This node's self-row in `hylite.replication`; the hub holds it
        // weakly, the handle keeps it alive for the replica's lifetime.
        // Touch the churn counters so they exist in a scrape (and in
        // `hylite.metrics`) from the first connect, not the first fault.
        db.metrics().counter("repl.reconnects").add(0);
        db.metrics().counter("repl.rebootstraps").add(0);
        let views = Arc::new(ReplicaViews {
            status: Arc::clone(&status),
            durability: Arc::clone(db.durability().expect("replica database is durable")),
            control: Arc::clone(&control),
            metrics: Arc::clone(db.metrics()),
        });
        db.system_views()
            .register(Arc::downgrade(&views) as std::sync::Weak<dyn SystemViewProvider>);
        // Wire the admin frames (Promote / Repoint) into this apply loop.
        server_shared.set_failover_control(Arc::new(ReplicaFailover {
            db: Arc::clone(&db),
            control: Arc::clone(&control),
            status: Arc::clone(&status),
            shared: Arc::clone(&server_shared),
        }));
        let apply_thread = {
            let db = Arc::clone(&db);
            let control = Arc::clone(&control);
            let status = Arc::clone(&status);
            std::thread::Builder::new()
                .name("hylite-repl-apply".into())
                .spawn(move || apply_loop(&db, &config, &control, &status, &server_shared))
                .map_err(|e| HyError::Internal(format!("spawning apply loop failed: {e}")))?
        };
        Ok(ReplicaHandle {
            server: Some(server),
            control,
            status,
            apply_thread: Some(apply_thread),
            local_addr,
            _views: views,
        })
    }
}

/// Handle to a running replica: the serving side plus the apply loop.
pub struct ReplicaHandle {
    server: Option<ServerHandle>,
    control: Arc<ApplyControl>,
    status: Arc<ReplicaStatus>,
    apply_thread: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
    /// Keeps this node's `hylite.replication` self-row registered.
    _views: Arc<ReplicaViews>,
}

impl ReplicaHandle {
    /// The address read-only clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The apply loop's progress view.
    pub fn status(&self) -> &Arc<ReplicaStatus> {
        &self.status
    }

    /// Address of the Prometheus exposition endpoint, when configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().and_then(|s| s.metrics_addr())
    }

    /// Stop following the primary and shut the serving side down
    /// gracefully (in-flight reads drain; a final local checkpoint is
    /// taken).
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    /// Block until the serving side stops on its own (a client sent a
    /// Shutdown frame, or catch-up failed permanently), then stop
    /// following the primary. The `--replica-of` binary's main loop.
    pub fn join(mut self) {
        if let Some(server) = self.server.take() {
            server.join();
        }
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.control.stop.store(true, Ordering::Release);
        // Unblock the apply loop's blocking read.
        self.control.kick_current();
        if let Some(t) = self.apply_thread.take() {
            let _ = t.join();
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Why one streaming session ended.
enum SessionEnd {
    /// Shutdown was requested; exit the loop.
    Stopped,
    /// Connection-level failure: reconnect with backoff.
    Disconnect,
    /// Local storage failure or a fork the protocol cannot repair:
    /// stop serving.
    Fatal(HyError),
}

/// Reconnect-forever loop around [`stream_session`].
fn apply_loop(
    db: &Arc<Database>,
    config: &ReplicaConfig,
    control: &ApplyControl,
    status: &ReplicaStatus,
    server_shared: &Arc<crate::server::Shared>,
) {
    let durability = Arc::clone(db.durability().expect("replica database is durable"));
    let metrics = Arc::clone(db.metrics());
    let mut ever_connected = false;
    while !control.stop.load(Ordering::Acquire) {
        let generation = control.generation.load(Ordering::Acquire);
        let end = stream_session(
            db,
            &durability,
            config,
            control,
            status,
            &mut ever_connected,
        );
        status.connected.store(false, Ordering::Release);
        control.current.lock().take();
        match end {
            SessionEnd::Stopped => break,
            SessionEnd::Disconnect => {
                if control.stop.load(Ordering::Acquire) {
                    break;
                }
                metrics.counter("repl.disconnects").inc();
                // Capped exponential backoff with deterministic jitter;
                // sliced so shutdown stays responsive and a repoint (new
                // generation) reconnects immediately.
                let retry = control.retry.fetch_add(1, Ordering::AcqRel);
                let backoff = config
                    .retry
                    .jittered_backoff(retry.min(16), config.backoff_seed);
                let deadline = std::time::Instant::now() + backoff;
                while std::time::Instant::now() < deadline
                    && !control.stop.load(Ordering::Acquire)
                    && control.generation.load(Ordering::Acquire) == generation
                {
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            SessionEnd::Fatal(e) => {
                // The local state can no longer be vouched for: refuse to
                // serve rather than answer from a possibly-forked past.
                metrics.counter("repl.fatal_errors").inc();
                status.failed.store(true, Ordering::Release);
                eprintln!("replica catch-up failed permanently, shutting down: {e}");
                server_shared.request_shutdown();
                break;
            }
        }
    }
    control.running.store(false, Ordering::Release);
}

/// One connected streaming session: handshake, then apply frames until
/// the connection drops or shutdown is requested.
fn stream_session(
    db: &Arc<Database>,
    durability: &Arc<Durability>,
    config: &ReplicaConfig,
    control: &ApplyControl,
    status: &ReplicaStatus,
    ever_connected: &mut bool,
) -> SessionEnd {
    let primary_addr = control.primary_addr.lock().clone();
    let mut stream = match config
        .net
        .connect(NP_REPL_APPLY, &primary_addr, Duration::from_secs(10))
    {
        Ok(s) => s,
        Err(_) => return SessionEnd::Disconnect,
    };
    let _ = stream.set_nodelay(true);
    // The kick path only ever calls `shutdown`: keep a raw clone so a
    // scripted partition can never block promotion or shutdown.
    match stream.raw_try_clone() {
        Ok(clone) => *control.current.lock() = Some(clone),
        Err(_) => return SessionEnd::Disconnect,
    }
    // Resume point: the local WAL's next LSN minus one is the last commit
    // that is durably ours. An un-bootstrapped replica sends epoch 0,
    // which no primary ever mints, forcing a SnapshotOffer.
    let handshake = Frame::Replicate {
        version: PROTOCOL_VERSION,
        epoch: durability.epoch(),
        last_lsn: durability.next_lsn().saturating_sub(1),
    };
    if wire::write_frame(&mut stream, &handshake).is_err() {
        return SessionEnd::Disconnect;
    }
    status.connected.store(true, Ordering::Release);
    db.metrics().counter("repl.connects").inc();
    if *ever_connected {
        // Re-established after a drop: the churn signal `\lag` watches.
        db.metrics().counter("repl.reconnects").inc();
    }
    *ever_connected = true;

    loop {
        if control.stop.load(Ordering::Acquire) {
            return SessionEnd::Stopped;
        }
        let frame = match wire::read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => {
                return if control.stop.load(Ordering::Acquire) {
                    SessionEnd::Stopped
                } else {
                    SessionEnd::Disconnect
                }
            }
        };
        match frame {
            Frame::ReplicateOk { .. } => {
                // Resume accepted; frames follow from our own last_lsn+1.
                control.retry.store(0, Ordering::Release);
            }
            Frame::SnapshotOffer {
                epoch,
                base_lsn,
                data,
            } => {
                // Replace all local state under the writer gate so no
                // read session observes the swap half-done.
                let install = {
                    let _gate = db.catalog().writer_gate().lock();
                    durability.install_bootstrap(db.catalog(), epoch, &data)
                };
                if let Err(e) = install {
                    return SessionEnd::Fatal(e);
                }
                control.retry.store(0, Ordering::Release);
                let prior = status.bootstraps.fetch_add(1, Ordering::AcqRel);
                if prior > 0 {
                    // Any bootstrap after the first means fencing or WAL
                    // truncation forced a full re-seed.
                    db.metrics().counter("repl.rebootstraps").inc();
                }
                status.mark_applied(base_lsn.saturating_sub(1));
                db.metrics()
                    .gauge("repl.applied_lsn")
                    .set(base_lsn.saturating_sub(1) as i64);
                if wire::write_frame(
                    &mut stream,
                    &Frame::ReplicaAck {
                        lsn: base_lsn.saturating_sub(1),
                    },
                )
                .is_err()
                {
                    return SessionEnd::Disconnect;
                }
            }
            Frame::WalFrame { lsn, crc, payload } => {
                let applied = {
                    let _gate = db.catalog().writer_gate().lock();
                    durability.apply_replicated_frame(db.catalog(), lsn, crc, &payload)
                };
                if let Err(e) = applied {
                    if matches!(e, HyError::DiskFull(_)) {
                        // A full local disk is transient, not a fork: the
                        // frame was never acked, so once space frees (the
                        // probe un-degrades the node) the stream resumes
                        // from the same LSN. Back off and reconnect.
                        return SessionEnd::Disconnect;
                    }
                    // A gap, CRC mismatch, or WAL write failure on *our*
                    // side: never ack, never skip. The stream cannot be
                    // trusted past this point.
                    return SessionEnd::Fatal(e);
                }
                control.retry.store(0, Ordering::Release);
                status.mark_applied(lsn);
                db.metrics().gauge("repl.applied_lsn").set(lsn as i64);
                // The frame is fsynced (append_raw_frame always flushes)
                // — only now may the ack promise durability.
                if wire::write_frame(&mut stream, &Frame::ReplicaAck { lsn }).is_err() {
                    return SessionEnd::Disconnect;
                }
                if config.checkpoint_wal_bytes > 0
                    && durability.wal_durable_len() >= config.checkpoint_wal_bytes
                {
                    // Compact the local WAL; failure is non-fatal (the
                    // WAL still covers everything).
                    let _ = durability.checkpoint(db.catalog());
                }
            }
            Frame::Error { code, message } => {
                let code = ErrorCode::from_u16(code);
                if code == ErrorCode::Protocol {
                    // Version mismatch, a non-durable primary, or a
                    // primary that is itself a replica: config errors no
                    // amount of retrying fixes.
                    return SessionEnd::Fatal(code.to_error(message));
                }
                // Everything else — shedding, draining, or a primary-side
                // storage failure (e.g. its WAL poisoned by a crash) — is
                // the *primary's* trouble, not a statement about our local
                // state. Back off and reconnect; if the primary restarts,
                // its fresh epoch fences us into a re-bootstrap anyway.
                return SessionEnd::Disconnect;
            }
            other => {
                return SessionEnd::Fatal(HyError::Protocol(format!(
                    "unexpected frame in the replication stream: {other:?}"
                )))
            }
        }
    }
}
