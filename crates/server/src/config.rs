//! Server configuration.

use std::time::Duration;

use hylite_common::NetHandle;

/// Tunables of a [`Server`](crate::Server).
///
/// The admission-control knobs bound three separate resources:
/// `max_connections` caps sessions, `max_active_statements` caps
/// statements executing at once (protecting the engine from a thundering
/// herd even when every connection fires simultaneously), and
/// `statement_queue_depth` bounds how many statements may *wait* for an
/// execution slot before the server starts shedding load with typed
/// `Overloaded` errors.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:5433`. Port `0` picks a free port
    /// (the bound address is reported by
    /// [`ServerHandle::local_addr`](crate::ServerHandle::local_addr)).
    pub addr: String,
    /// Maximum concurrent client connections; further connects are
    /// rejected with [`ErrorCode::Overloaded`](hylite_common::ErrorCode).
    pub max_connections: usize,
    /// Maximum statements executing concurrently across all sessions.
    pub max_active_statements: usize,
    /// Maximum statements waiting for an execution slot; a full queue
    /// rejects immediately with `Overloaded`.
    pub statement_queue_depth: usize,
    /// How long a statement may wait in the queue before being shed with
    /// [`ErrorCode::QueueTimeout`](hylite_common::ErrorCode).
    pub queue_wait: Duration,
    /// Default per-session `statement_timeout_ms`, applied at session
    /// startup unless/until the client overrides it via `SET`. `0`
    /// disables the default.
    pub statement_timeout_ms: u64,
    /// Default per-session `memory_budget_mb`, same override semantics.
    /// `0` disables the default.
    pub memory_budget_mb: u64,
    /// Default per-session `slow_query_ms`, same override semantics:
    /// statements at least this slow are captured into
    /// `hylite.slow_queries`. `0` disables the default.
    pub slow_query_ms: u64,
    /// When set, serve Prometheus text-format metrics over plain HTTP at
    /// this address (`GET /metrics`), e.g. `127.0.0.1:9187`. `None`
    /// disables the exposition endpoint.
    pub metrics_addr: Option<String>,
    /// Graceful-shutdown drain budget: in-flight statements get this long
    /// to finish before their cancel tokens fire.
    pub drain_timeout: Duration,
    /// Set on a replica server: the primary's address, reported inside
    /// the `ReadOnlyReplica` error every write statement receives so
    /// clients know where to go. `None` on a primary.
    pub read_only_primary: Option<String>,
    /// Replication flow control: how many bytes of WAL frames may be in
    /// flight to one replica before the primary stops sending and waits
    /// for acks.
    pub repl_max_unacked_bytes: u64,
    /// How long a replica's ack may stall (while the window is full)
    /// before the primary sheds the replica connection instead of
    /// buffering forever. Commits on the primary never wait on replicas.
    pub repl_ack_timeout: Duration,
    /// How often the primary's replication streamer polls the WAL for
    /// new frames when a replica is caught up.
    pub repl_poll_interval: Duration,
    /// Fault injection for tests: a statement whose SQL text equals this
    /// string panics inside the execution path instead of running,
    /// exercising per-statement panic isolation (the engine itself is
    /// deliberately panic-free). Always `None` in production configs.
    pub panic_on_sql: Option<String>,
    /// Transport wrapper applied to every accepted socket (the
    /// `server.accept` fault point, re-scoped to `repl.stream` for
    /// replication connections). Defaults to the real network; tests and
    /// the chaos harness install a `FaultNet` here.
    pub net: NetHandle,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            max_active_statements: 16,
            statement_queue_depth: 64,
            queue_wait: Duration::from_secs(5),
            statement_timeout_ms: 0,
            memory_budget_mb: 0,
            slow_query_ms: 0,
            metrics_addr: None,
            drain_timeout: Duration::from_secs(5),
            read_only_primary: None,
            repl_max_unacked_bytes: 8 * 1024 * 1024,
            repl_ack_timeout: Duration::from_secs(10),
            repl_poll_interval: Duration::from_millis(5),
            panic_on_sql: None,
            net: NetHandle::default(),
        }
    }
}

impl ServerConfig {
    /// A config listening on an OS-assigned localhost port (tests,
    /// benches, examples).
    pub fn ephemeral() -> ServerConfig {
        ServerConfig::default()
    }
}
