//! Dependency-free Prometheus exposition endpoint.
//!
//! When [`ServerConfig::metrics_addr`](crate::ServerConfig) is set, a tiny
//! single-threaded HTTP/1.0 listener answers `GET /metrics` with the
//! engine's full metrics snapshot rendered in Prometheus text format
//! 0.0.4 ([`MetricsSnapshot::render_prometheus`]). There is deliberately
//! no HTTP library: the protocol subset a scraper needs — one request
//! line, a blank line, one response — is a few dozen lines, matching the
//! repo's zero-dependency rule for everything below the server.
//!
//! The listener polls with a nonblocking accept so it can observe the
//! server's shutdown flag; replication lag gauges are refreshed on every
//! scrape so `hylite_repl_lag_bytes` is current without a background
//! refresher thread.
//!
//! [`MetricsSnapshot::render_prometheus`]:
//! hylite_common::telemetry::MetricsSnapshot::render_prometheus

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hylite_common::{HyError, Result};

use crate::server::Shared;

/// How long a scraper may take to send its request line.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Handle to the exposition listener: bound address + serving thread.
pub(crate) struct MetricsListener {
    /// The bound address (resolves port-0 requests).
    pub local_addr: SocketAddr,
    /// The serving thread; exits once the server requests shutdown.
    pub thread: JoinHandle<()>,
}

/// Bind `addr` and serve `GET /metrics` until the server shuts down.
pub(crate) fn serve(addr: &str, shared: Arc<Shared>) -> Result<MetricsListener> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| HyError::Unavailable(format!("bind metrics addr {addr} failed: {e}")))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| HyError::Internal(format!("metrics local_addr failed: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| HyError::Internal(format!("metrics set_nonblocking failed: {e}")))?;
    let thread = std::thread::Builder::new()
        .name("hylite-metrics".into())
        .spawn(move || listen_loop(listener, shared))
        .map_err(|e| HyError::Internal(format!("spawning metrics listener failed: {e}")))?;
    Ok(MetricsListener { local_addr, thread })
}

fn listen_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown_requested.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Scrapes are cheap and rare (seconds apart); serve them
                // inline rather than spawning per request.
                let _ = answer(stream, &shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Read one request head and answer it. Anything that is not
/// `GET /metrics` gets a 404; a malformed head gets a 400.
fn answer(mut stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nonblocking(false);
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    // Read until the end of the request head (CRLFCRLF) or the buffer
    // limit; scrapers send no body.
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            String::from("only GET is supported\n"),
        )
    } else if path == "/metrics" {
        // Lag gauges are computed, not event-driven: refresh them so the
        // scrape reflects the stream state right now.
        shared.refresh_repl_gauges();
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.db.metrics_snapshot().render_prometheus(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain",
            String::from("try /metrics\n"),
        )
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
