//! The TCP server: accept loop, session registry, graceful shutdown.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use hylite_common::governor::CancelToken;
use hylite_common::sysview::{SystemView, SystemViewProvider};
use hylite_common::telemetry::MetricsRegistry;
use hylite_common::{HyError, Result, Value};
use hylite_core::Database;
use parking_lot::Mutex;

use crate::admission::Admission;
use crate::config::ServerConfig;
use crate::connection;

/// One registered query session (a connection that completed Startup).
pub(crate) struct SessionEntry {
    /// Secret required by out-of-band Cancel frames.
    pub secret: u64,
    /// Cancels the statement currently running on this session.
    pub cancel: Arc<CancelToken>,
    /// Socket clone used to unblock idle readers during shutdown.
    pub stream: TcpStream,
    /// True while a statement is executing / streaming its result.
    pub busy: Arc<AtomicBool>,
    /// Remote peer address, surfaced by `hylite.connections`.
    pub peer: String,
}

/// Live progress of one primary→replica WAL stream, published by the
/// streamer thread and read by `hylite.replication` and the lag gauges.
#[derive(Debug, Default)]
pub(crate) struct ReplStreamStats {
    /// Remote peer address of the replica connection.
    pub peer: Mutex<String>,
    /// Primary epoch the stream is serving.
    pub epoch: AtomicU64,
    /// Highest LSN written to the socket.
    pub sent_lsn: AtomicU64,
    /// Highest LSN the replica has durably acknowledged.
    pub acked_lsn: AtomicU64,
    /// Payload bytes sent but not yet acknowledged (flow-control window).
    pub unacked_bytes: AtomicU64,
    /// Snapshot bootstraps shipped over this stream.
    pub bootstraps: AtomicU64,
}

/// Failover hooks a replica registers on its embedded server, so the
/// admin wire frames (`Promote`, `Repoint`) can drive the apply loop
/// without restarting the process.
pub(crate) trait FailoverControl: Send + Sync {
    /// Stop following the primary and flip this node to a writable
    /// primary in place; returns the fresh epoch.
    fn promote(&self) -> Result<u64>;
    /// Start following a different primary address.
    fn repoint(&self, primary_addr: &str) -> Result<()>;
}

/// State shared by the accept loop and every connection thread.
pub(crate) struct Shared {
    pub db: Arc<Database>,
    pub config: ServerConfig,
    pub admission: Admission,
    pub metrics: Arc<MetricsRegistry>,
    /// Set when a drain has started: no new connections or statements.
    pub draining: AtomicBool,
    /// Set by `ServerHandle::shutdown` or a Shutdown frame; observed by
    /// the accept loop, which then performs the drain.
    pub shutdown_requested: AtomicBool,
    /// Registered query sessions by session id.
    pub sessions: Mutex<HashMap<u64, SessionEntry>>,
    /// Live query connections (for the connection cap).
    pub conn_count: AtomicUsize,
    /// Connection thread handles, joined during shutdown.
    pub conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Live primary→replica streams by stream id.
    pub repl_streams: Mutex<HashMap<u64, Arc<ReplStreamStats>>>,
    next_repl_stream_id: AtomicU64,
    /// Runtime read-only redirect: `Some(primary_addr)` while this node
    /// follows a primary, cleared by an in-place promotion. Seeded from
    /// [`ServerConfig::read_only_primary`]; new sessions consult this,
    /// not the config, so a promotion takes effect without a restart.
    read_only_primary: Mutex<Option<String>>,
    /// Registered by [`crate::Replica`] so admin frames can promote /
    /// repoint the apply loop.
    failover: Mutex<Option<Arc<dyn FailoverControl>>>,
}

impl Shared {
    /// Derive a per-session cancel secret. Not cryptographic — it guards
    /// against accidental cross-session cancels, like PostgreSQL's
    /// `BackendKeyData`.
    pub fn new_secret(&self, session_id: u64) -> u64 {
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(nanos ^ session_id.rotate_left(32) ^ (self as *const Shared as usize as u64))
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    pub fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::Release);
    }

    /// The primary address new sessions should be redirected to for
    /// writes, `None` once this node serves writes itself.
    pub fn read_only_primary(&self) -> Option<String> {
        self.read_only_primary.lock().clone()
    }

    /// Redirect writes to a (new) primary address — a repointed replica.
    pub fn set_read_only_primary(&self, primary_addr: &str) {
        *self.read_only_primary.lock() = Some(primary_addr.to_owned());
    }

    /// Clear the read-only redirect — this node was promoted and now
    /// accepts writes. Sessions opened before the promotion stay
    /// read-only; clients reconnect (the router does this on failover).
    pub fn set_writable(&self) {
        self.read_only_primary.lock().take();
    }

    /// Install the failover hooks (called by `Replica::start`).
    pub fn set_failover_control(&self, control: Arc<dyn FailoverControl>) {
        *self.failover.lock() = Some(control);
    }

    /// The registered failover hooks, if this server fronts a replica.
    pub fn failover_control(&self) -> Option<Arc<dyn FailoverControl>> {
        self.failover.lock().clone()
    }

    /// Register a new primary→replica stream; returns its id and stats
    /// handle (the streamer thread updates the stats in place).
    pub fn register_repl_stream(&self, peer: String) -> (u64, Arc<ReplStreamStats>) {
        let id = self.next_repl_stream_id.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::new(ReplStreamStats::default());
        *stats.peer.lock() = peer;
        self.repl_streams.lock().insert(id, Arc::clone(&stats));
        (id, stats)
    }

    /// Remove a finished stream from the registry.
    pub fn unregister_repl_stream(&self, id: u64) {
        self.repl_streams.lock().remove(&id);
        self.refresh_repl_gauges();
    }

    /// Recompute the primary-side replication lag gauges from the live
    /// streams: `repl.lag_bytes` is the total unacknowledged payload,
    /// `repl.lag_frames` the worst per-replica LSN distance. Registered
    /// at zero on startup so the metric names exist even with no replica
    /// attached. Called on every scrape and stream-state change.
    pub fn refresh_repl_gauges(&self) {
        let next_lsn = self.db.durability().map(|d| d.next_lsn()).unwrap_or(1);
        let mut lag_bytes = 0u64;
        let mut lag_frames = 0u64;
        for stats in self.repl_streams.lock().values() {
            lag_bytes += stats.unacked_bytes.load(Ordering::Acquire);
            let acked = stats.acked_lsn.load(Ordering::Acquire);
            lag_frames = lag_frames.max(next_lsn.saturating_sub(1).saturating_sub(acked));
        }
        self.metrics.gauge("repl.lag_bytes").set(lag_bytes as i64);
        self.metrics.gauge("repl.lag_frames").set(lag_frames as i64);
    }
}

impl SystemViewProvider for Shared {
    fn system_view_rows(&self, view: SystemView) -> Option<Vec<Vec<Value>>> {
        match view {
            SystemView::Connections => Some(
                self.sessions
                    .lock()
                    .iter()
                    .map(|(id, entry)| {
                        vec![
                            Value::Int(*id as i64),
                            Value::from(entry.peer.as_str()),
                            Value::from(if entry.busy.load(Ordering::Acquire) {
                                "busy"
                            } else {
                                "idle"
                            }),
                        ]
                    })
                    .collect(),
            ),
            SystemView::Replication => {
                // Primary-side rows only; a replica's self-row comes from
                // the provider its `Replica` handle registers.
                self.refresh_repl_gauges();
                let next_lsn = self.db.durability().map(|d| d.next_lsn()).unwrap_or(1);
                let streams = self.repl_streams.lock();
                // A standalone node — not following a primary, no replica
                // attached — reports one explicit row instead of an empty
                // table, so `\lag` never renders silence as an answer.
                let node_state = self.db.durability().map(|d| d.node_state()).unwrap_or("ok");
                if streams.is_empty() && !self.db.is_replica() {
                    let epoch = self.db.durability().map(|d| d.epoch()).unwrap_or(0);
                    return Some(vec![vec![
                        Value::from("standalone"),
                        Value::Null,
                        Value::from("no replication configured"),
                        Value::Int(epoch as i64),
                        Value::Null,
                        Value::Null,
                        Value::Null,
                        Value::Null,
                        Value::Null,
                        Value::Null,
                        Value::from(node_state),
                        Value::Null,
                        Value::Null,
                    ]]);
                }
                Some(
                    streams
                        .values()
                        .map(|s| {
                            let acked = s.acked_lsn.load(Ordering::Acquire);
                            vec![
                                Value::from("primary"),
                                Value::from(s.peer.lock().as_str()),
                                Value::from("streaming"),
                                Value::Int(s.epoch.load(Ordering::Acquire) as i64),
                                Value::Int(s.sent_lsn.load(Ordering::Acquire) as i64),
                                Value::Int(acked as i64),
                                Value::Int(next_lsn.saturating_sub(1).saturating_sub(acked) as i64),
                                Value::Int(s.unacked_bytes.load(Ordering::Acquire) as i64),
                                Value::Int(s.bootstraps.load(Ordering::Acquire) as i64),
                                Value::Null,
                                Value::from(node_state),
                                Value::Null,
                                Value::Null,
                            ]
                        })
                        .collect(),
                )
            }
            _ => None,
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The HyLite network server. [`Server::start`] binds, spawns the accept
/// loop, and returns a [`ServerHandle`] for address discovery and
/// shutdown.
pub struct Server;

impl Server {
    /// Bind `config.addr` and start serving `db`. Every connection gets
    /// its own engine [`Session`](hylite_core::Session) over the shared
    /// database; all sessions report into `db`'s metrics registry under
    /// `server.*` names.
    pub fn start(config: ServerConfig, db: Arc<Database>) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| HyError::Unavailable(format!("bind {} failed: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| HyError::Internal(format!("local_addr failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| HyError::Internal(format!("set_nonblocking failed: {e}")))?;
        let metrics = Arc::clone(db.metrics());
        let admission = Admission::new(
            config.max_active_statements,
            config.statement_queue_depth,
            config.queue_wait,
            Arc::clone(&metrics),
        );
        let shared = Arc::new(Shared {
            db,
            config,
            admission,
            metrics,
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            sessions: Mutex::new(HashMap::new()),
            conn_count: AtomicUsize::new(0),
            conn_threads: Mutex::new(Vec::new()),
            repl_streams: Mutex::new(HashMap::new()),
            next_repl_stream_id: AtomicU64::new(1),
            read_only_primary: Mutex::new(None),
            failover: Mutex::new(None),
        });
        *shared.read_only_primary.lock() = shared.config.read_only_primary.clone();
        // Register the lag gauges at zero so `hylite_repl_lag_bytes` is
        // always present in a scrape, replica attached or not, and plug
        // the server into the database's system-view hub (connections,
        // primary-side replication rows).
        shared.metrics.gauge("repl.lag_bytes").set(0);
        shared.metrics.gauge("repl.lag_frames").set(0);
        shared
            .db
            .system_views()
            .register(Arc::downgrade(&shared) as std::sync::Weak<dyn SystemViewProvider>);
        let metrics_listener = match &shared.config.metrics_addr {
            Some(addr) => Some(crate::metrics_http::serve(addr, Arc::clone(&shared))?),
            None => None,
        };
        // Disk-pressure probe: on a durable database, periodically ask the
        // durability layer to leave read-only degraded mode once space
        // frees up, so an ENOSPC node resumes writes without a restart.
        let probe_thread = if shared.db.durability().is_some() {
            let probe_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("hylite-space-probe".into())
                    .spawn(move || disk_pressure_probe(probe_shared))
                    .map_err(|e| HyError::Internal(format!("spawning space probe failed: {e}")))?,
            )
        } else {
            None
        };
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("hylite-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| HyError::Internal(format!("spawning accept loop failed: {e}")))?;
        Ok(ServerHandle {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            probe_thread,
            metrics_listener,
        })
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    probe_thread: Option<JoinHandle<()>>,
    metrics_listener: Option<crate::metrics_http::MetricsListener>,
}

impl ServerHandle {
    /// The bound listen address (resolves port `0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound Prometheus exposition address, when
    /// [`ServerConfig::metrics_addr`](crate::ServerConfig) was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().map(|m| m.local_addr)
    }

    /// The metrics registry the server reports into (shared with the
    /// database engine).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// Number of registered query connections.
    pub fn connections(&self) -> usize {
        self.shared.conn_count.load(Ordering::Acquire)
    }

    /// Request graceful shutdown and wait for it to finish: stop
    /// accepting, let in-flight statements drain for
    /// `config.drain_timeout`, cancel stragglers, close every
    /// connection, and join all threads.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        self.join_accept();
    }

    /// Block until the server stops (e.g. a client sent a Shutdown
    /// frame). Equivalent to `shutdown()` without requesting it.
    pub fn join(mut self) {
        self.join_accept();
    }

    fn join_accept(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.probe_thread.take() {
            let _ = t.join();
        }
        // The exposition listener polls `shutdown_requested` and exits on
        // its own once it is set (which it is by the time we get here).
        if let Some(m) = self.metrics_listener.take() {
            let _ = m.thread.join();
        }
    }

    /// The shared server state (for the replica apply loop, which must be
    /// able to stop the serving side when catch-up becomes unsafe).
    pub(crate) fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Dropping the handle stops the server (tests and examples rely
        // on not leaking the accept thread).
        self.shared.request_shutdown();
        self.join_accept();
    }
}

/// Poll `Durability::try_resume_writes` until shutdown: the path out of
/// read-only degraded mode after a disk-full episode. Cheap when the node
/// is healthy (one atomic load per tick).
fn disk_pressure_probe(shared: Arc<Shared>) {
    while !shared.shutdown_requested.load(Ordering::Acquire) {
        if let Some(d) = shared.db.durability() {
            match d.try_resume_writes() {
                Ok(true) => {
                    shared.metrics.counter("server.degraded_recoveries").inc();
                    eprintln!("disk pressure cleared: writes re-enabled");
                }
                Ok(false) => {}
                Err(e) => eprintln!("space probe failed: {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Poll-accept until shutdown is requested, then drain.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown_requested.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.counter("server.connections_accepted").inc();
                // Every inbound socket passes the `server.accept` fault
                // point; replication connections re-scope themselves to
                // `repl.stream` after the handshake.
                let stream = shared
                    .config
                    .net
                    .wrap(hylite_common::faultnet::NP_SERVER_ACCEPT, stream);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("hylite-conn".into())
                    .spawn(move || connection::serve_connection(stream, conn_shared));
                match spawned {
                    Ok(handle) => shared.conn_threads.lock().push(handle),
                    Err(_) => {
                        shared.metrics.counter("server.connections_rejected").inc();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    drain(&shared);
}

/// Graceful shutdown: close idle connections, give busy ones until the
/// drain deadline, then fire their cancel tokens, and finally force-close
/// whatever is left before joining all connection threads.
fn drain(shared: &Shared) {
    shared.draining.store(true, Ordering::Release);
    shared.metrics.counter("server.shutdowns").inc();
    let deadline = Instant::now() + shared.config.drain_timeout;

    // Idle connections are parked in a blocking read; closing the socket
    // is the only way to wake them. Busy ones keep running for now.
    for entry in shared.sessions.lock().values() {
        if !entry.busy.load(Ordering::Acquire) {
            let _ = entry.stream.shutdown(Shutdown::Both);
        }
    }

    // Drain phase: wait for in-flight statements to finish on their own.
    while Instant::now() < deadline && !shared.sessions.lock().is_empty() {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Cancel stragglers; their statements abort at the next governor
    // check point, the connection sends the Cancelled error frame, sees
    // the draining flag, and exits.
    let mut cancelled = 0u64;
    for entry in shared.sessions.lock().values() {
        entry.cancel.cancel();
        cancelled += 1;
    }
    if cancelled > 0 {
        shared
            .metrics
            .counter("server.shutdown_cancelled_statements")
            .add(cancelled);
        let grace = Instant::now() + Duration::from_secs(2);
        while Instant::now() < grace && !shared.sessions.lock().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Force-close anything still attached.
    for entry in shared.sessions.lock().values() {
        let _ = entry.stream.shutdown(Shutdown::Both);
    }

    let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *shared.conn_threads.lock());
    for t in threads {
        let _ = t.join();
    }

    // Every connection is gone; on a durable database, take a final
    // checkpoint so the next start recovers instantly instead of
    // replaying the whole WAL. A failure here is non-fatal — the WAL
    // already covers every acknowledged commit.
    match shared.db.close() {
        Ok(Some(stats)) => {
            shared.metrics.counter("server.shutdown_checkpoints").inc();
            eprintln!(
                "final checkpoint: {} tables, {} bytes, base lsn {}",
                stats.tables, stats.bytes, stats.base_lsn
            );
        }
        Ok(None) => {}
        Err(e) => eprintln!("final checkpoint failed (WAL still authoritative): {e}"),
    }
}
