//! The physical k-Means operator (§6.1), lambda-parameterized (§7).
//!
//! Lloyd's algorithm with the paper's parallelization: "each thread
//! locally assigns data tuples to their nearest center and [...] sums up
//! the tuples' values. The data tuples themselves are consumed and
//! directly thrown away after processing. [...] Thread synchronization is
//! only needed for the very last steps, global aggregation of the local
//! intermediate results and the final update of the cluster centers."
//!
//! The distance is either the hand-tuned squared-L2 kernel (the paper's
//! default lambda) or an arbitrary user lambda evaluated *vectorized*:
//! the candidate center is substituted into the lambda body as constants
//! and the resulting expression runs over whole chunks.

use hylite_common::governor::Governor;
use hylite_common::{Chunk, HyError, Result, Value};
use hylite_expr::BoundLambda;
use rayon::prelude::*;

/// k-Means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            max_iterations: 100,
        }
    }
}

/// Result of a k-Means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final cluster centers (k × d).
    pub centers: Vec<Vec<f64>>,
    /// Rows assigned to each cluster in the final iteration.
    pub sizes: Vec<u64>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the solution stabilized before the iteration cap.
    pub converged: bool,
    /// Total L2 distance the centroids moved, per iteration. The last
    /// entry is 0 when the run converged.
    pub shift_history: Vec<f64>,
    /// Wall time of each iteration in microseconds.
    pub iter_micros: Vec<u64>,
}

/// Thread-local accumulator: per-cluster sums and counts.
struct Locals {
    sums: Vec<f64>,   // k × d, row-major
    counts: Vec<u64>, // k
}

impl Locals {
    fn new(k: usize, d: usize) -> Locals {
        Locals {
            sums: vec![0.0; k * d],
            counts: vec![0; k],
        }
    }

    fn merge(mut self, other: Locals) -> Locals {
        for (a, b) in self.sums.iter_mut().zip(other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
        self
    }
}

/// Validate chunks: all-DOUBLE columns of the expected width, no NULLs.
fn validate(chunks: &[Chunk], d: usize, what: &str) -> Result<()> {
    for c in chunks {
        if c.num_columns() != d {
            return Err(HyError::Analytics(format!(
                "{what}: expected {d} columns, found {}",
                c.num_columns()
            )));
        }
        for col in c.columns() {
            col.as_f64()?;
            if col.null_count() > 0 {
                return Err(HyError::Analytics(format!(
                    "{what}: NULL values are not allowed"
                )));
            }
        }
    }
    Ok(())
}

/// Compute nearest-center assignments for one chunk.
///
/// One reusable distance buffer is streamed per center and folded into a
/// running argmin — the distance matrix is never materialized, keeping
/// the working set at 3 vectors regardless of k.
fn nearest_centers(
    chunk: &Chunk,
    centers: &[Vec<f64>],
    lambda: Option<&BoundLambda>,
) -> Result<Vec<u32>> {
    let n = chunk.len();
    let mut best = vec![0u32; n];
    let mut best_d = vec![f64::INFINITY; n];
    if let Some(l) = lambda {
        // Generic lambda path: one vectorized evaluation per center.
        let mut buf = vec![0.0f64; n];
        for (c, center) in centers.iter().enumerate() {
            let vals: Vec<Value> = center.iter().map(|&v| Value::Float(v)).collect();
            let col = l.eval_broadcast(chunk, &vals)?;
            let col = col.cast_to(hylite_common::DataType::Float64)?;
            buf.copy_from_slice(col.as_f64()?);
            let c = c as u32;
            for ((b, bd), &dist) in best.iter_mut().zip(&mut best_d).zip(&buf) {
                if dist < *bd {
                    *bd = dist;
                    *b = c;
                }
            }
        }
        return Ok(best);
    }
    // Default lambda: squared Euclidean, cache-blocked so each row block
    // is streamed from memory once and reused for all k centers.
    const BLOCK: usize = 2048;
    let d = centers[0].len();
    let cols: Vec<&[f64]> = (0..d)
        .map(|dim| chunk.column(dim).as_f64())
        .collect::<Result<_>>()?;
    let mut buf = vec![0.0f64; BLOCK];
    let mut start = 0;
    while start < n {
        let len = BLOCK.min(n - start);
        for (c, center) in centers.iter().enumerate() {
            let acc = &mut buf[..len];
            acc.iter_mut().for_each(|v| *v = 0.0);
            for (dim, &cv) in center.iter().enumerate() {
                let col = &cols[dim][start..start + len];
                for (a, &x) in acc.iter_mut().zip(col) {
                    let diff = x - cv;
                    *a += diff * diff;
                }
            }
            let c = c as u32;
            let bests = &mut best[start..start + len];
            let best_ds = &mut best_d[start..start + len];
            for ((b, bd), &dist) in bests.iter_mut().zip(best_ds.iter_mut()).zip(&*acc) {
                if dist < *bd {
                    *bd = dist;
                    *b = c;
                }
            }
        }
        start += len;
    }
    Ok(best)
}

/// Assign every row of `chunk` to its nearest center; fold sums/counts
/// into `locals`; optionally record assignments.
fn assign_chunk(
    chunk: &Chunk,
    centers: &[Vec<f64>],
    lambda: Option<&BoundLambda>,
    locals: &mut Locals,
    record: Option<&mut Vec<u32>>,
) -> Result<()> {
    let n = chunk.len();
    let d = centers[0].len();
    if lambda.is_some() {
        // Generic lambda path: assignments first, then accumulate.
        let best = nearest_centers(chunk, centers, lambda)?;
        for dim in 0..d {
            let col = chunk.column(dim).as_f64()?;
            for i in 0..n {
                locals.sums[best[i] as usize * d + dim] += col[i];
            }
        }
        for &b in &best {
            locals.counts[b as usize] += 1;
        }
        if let Some(rec) = record {
            rec.extend_from_slice(&best);
        }
        return Ok(());
    }
    // Default path: fused per-row kernel over the column slices. For a
    // given row the k×d distance evaluations and the sum accumulation
    // touch the same cache lines, so each tuple is streamed from memory
    // exactly once — the data-centric "consume and throw away" loop the
    // paper describes for this operator.
    let cols: Vec<&[f64]> = (0..d)
        .map(|dim| chunk.column(dim).as_f64())
        .collect::<Result<_>>()?;
    // Small row-major staging buffer: columns are transposed block-wise
    // so the k-center scoring loop runs over a contiguous row exactly
    // like a hand-written row store kernel, while the data is still
    // streamed from the columnar chunk once.
    const BLOCK: usize = 512;
    let mut staged = vec![0.0f64; BLOCK * d];
    let mut record = record;
    let mut start = 0;
    while start < n {
        let len = BLOCK.min(n - start);
        for (dim, col) in cols.iter().enumerate() {
            for (r, &x) in col[start..start + len].iter().enumerate() {
                staged[r * d + dim] = x;
            }
        }
        for row in staged[..len * d].chunks_exact(d) {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let mut dist = 0.0;
                for (&x, &cv) in row.iter().zip(center) {
                    let diff = x - cv;
                    dist += diff * diff;
                }
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            locals.counts[best] += 1;
            let sums = &mut locals.sums[best * d..(best + 1) * d];
            for (s, &x) in sums.iter_mut().zip(row) {
                *s += x;
            }
            if let Some(rec) = record.as_deref_mut() {
                rec.push(best as u32);
            }
        }
        start += len;
    }
    Ok(())
}

/// Run k-Means over columnar data.
///
/// `chunks` hold the data points (each column one dimension, all DOUBLE);
/// `initial_centers` supplies k starting centers of the same width;
/// `lambda` overrides the distance (None = squared L2). Converges when no
/// center moves, or stops at `config.max_iterations`.
pub fn kmeans(
    chunks: &[Chunk],
    initial_centers: Vec<Vec<f64>>,
    lambda: Option<&BoundLambda>,
    config: &KMeansConfig,
) -> Result<KMeansResult> {
    kmeans_governed(
        chunks,
        initial_centers,
        lambda,
        config,
        &Governor::unlimited(),
    )
}

/// [`kmeans`] under a resource [`Governor`]: each Lloyd iteration starts
/// with a cooperative cancellation/deadline check, and the per-thread
/// accumulator arrays are charged against the statement's memory budget
/// for the duration of the run.
pub fn kmeans_governed(
    chunks: &[Chunk],
    initial_centers: Vec<Vec<f64>>,
    lambda: Option<&BoundLambda>,
    config: &KMeansConfig,
    governor: &Governor,
) -> Result<KMeansResult> {
    let k = initial_centers.len();
    if k == 0 {
        return Err(HyError::Analytics(
            "k-Means requires at least one center".into(),
        ));
    }
    let d = initial_centers[0].len();
    if d == 0 {
        return Err(HyError::Analytics(
            "k-Means requires at least one dimension".into(),
        ));
    }
    if initial_centers.iter().any(|c| c.len() != d) {
        return Err(HyError::Analytics(
            "k-Means centers have inconsistent dimensionality".into(),
        ));
    }
    validate(chunks, d, "k-Means data")?;
    if let Some(l) = lambda {
        if l.left_width() != d || l.right_width() != d {
            return Err(HyError::Analytics(format!(
                "distance lambda expects {}×{} attributes but data has {d} dimensions",
                l.left_width(),
                l.right_width()
            )));
        }
    }

    // Per-thread accumulators: one Locals (k×d sums + k counts) per chunk.
    let locals_bytes = chunks.len() as u64 * (k as u64 * d as u64 * 8 + k as u64 * 8);
    let _scratch = governor.reserve_scoped(locals_bytes)?;

    let mut centers = initial_centers;
    let mut sizes = vec![0u64; k];
    let mut iterations = 0usize;
    let mut converged = false;
    let mut shift_history = Vec::new();
    let mut iter_micros = Vec::new();

    while iterations < config.max_iterations {
        governor.check()?;
        iterations += 1;
        let iter_start = std::time::Instant::now();
        // Parallel local assignment + accumulation; locals are merged in
        // deterministic chunk order so results are reproducible.
        let locals: Vec<Result<Locals>> = chunks
            .par_iter()
            .map(|chunk| {
                let mut l = Locals::new(k, d);
                assign_chunk(chunk, &centers, lambda, &mut l, None)?;
                Ok(l)
            })
            .collect();
        let mut merged = Locals::new(k, d);
        for l in locals {
            merged = merged.merge(l?);
        }
        // Final update of the cluster centers (the only sync point).
        let mut moved = false;
        let mut shift = 0.0f64;
        #[allow(clippy::needless_range_loop)]
        for c in 0..k {
            if merged.counts[c] == 0 {
                // Empty cluster: keep its previous center.
                continue;
            }
            let inv = 1.0 / merged.counts[c] as f64;
            let mut dist_sq = 0.0;
            for dim in 0..d {
                let new = merged.sums[c * d + dim] * inv;
                let delta = new - centers[c][dim];
                dist_sq += delta * delta;
                if new != centers[c][dim] {
                    moved = true;
                    centers[c][dim] = new;
                }
            }
            shift += dist_sq.sqrt();
        }
        sizes = merged.counts;
        shift_history.push(shift);
        iter_micros.push(iter_start.elapsed().as_micros() as u64);
        if !moved {
            converged = true;
            break;
        }
    }
    Ok(KMeansResult {
        centers,
        sizes,
        iterations,
        converged,
        shift_history,
        iter_micros,
    })
}

/// The model-application step: assign each row of each chunk to its
/// nearest center. Returns one assignment vector per input chunk.
pub fn kmeans_assign(
    chunks: &[Chunk],
    centers: &[Vec<f64>],
    lambda: Option<&BoundLambda>,
) -> Result<Vec<Vec<u32>>> {
    if centers.is_empty() {
        return Err(HyError::Analytics(
            "assignment requires at least one center".into(),
        ));
    }
    let d = centers[0].len();
    validate(chunks, d, "k-Means assignment data")?;
    chunks
        .par_iter()
        .map(|chunk| {
            let mut locals = Locals::new(centers.len(), d);
            let mut rec = Vec::with_capacity(chunk.len());
            assign_chunk(chunk, centers, lambda, &mut locals, Some(&mut rec))?;
            Ok(rec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector;

    /// Two tight blobs around (0,0) and (10,10).
    fn blobs() -> Vec<Chunk> {
        let xs = vec![0.0, 0.1, -0.1, 10.0, 10.1, 9.9];
        let ys = vec![0.0, -0.1, 0.1, 10.0, 9.9, 10.1];
        vec![Chunk::new(vec![
            ColumnVector::from_f64(xs),
            ColumnVector::from_f64(ys),
        ])]
    }

    #[test]
    fn separates_two_blobs() {
        let r = kmeans(
            &blobs(),
            vec![vec![1.0, 1.0], vec![8.0, 8.0]],
            None,
            &KMeansConfig::default(),
        )
        .unwrap();
        assert!(r.converged);
        assert_eq!(r.sizes, vec![3, 3]);
        let c0 = &r.centers[0];
        let c1 = &r.centers[1];
        assert!((c0[0] - 0.0).abs() < 0.2 && (c0[1] - 0.0).abs() < 0.2);
        assert!((c1[0] - 10.0).abs() < 0.2 && (c1[1] - 10.0).abs() < 0.2);
    }

    #[test]
    fn respects_iteration_cap() {
        let r = kmeans(
            &blobs(),
            vec![vec![1.0, 1.0], vec![8.0, 8.0]],
            None,
            &KMeansConfig { max_iterations: 1 },
        )
        .unwrap();
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn centers_are_means_of_members() {
        let r = kmeans(
            &blobs(),
            vec![vec![1.0, 1.0], vec![8.0, 8.0]],
            None,
            &KMeansConfig::default(),
        )
        .unwrap();
        // Cluster 0 holds the first three points; its center is their mean.
        let mean_x = (0.0 + 0.1 - 0.1) / 3.0;
        assert!((r.centers[0][0] - mean_x).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_keeps_center() {
        // A far-away center attracts nothing and must stay put.
        let r = kmeans(
            &blobs(),
            vec![vec![5.0, 5.0], vec![1000.0, 1000.0]],
            None,
            &KMeansConfig::default(),
        )
        .unwrap();
        assert_eq!(r.centers[1], vec![1000.0, 1000.0]);
        assert_eq!(r.sizes[1], 0);
    }

    #[test]
    fn lambda_l2_matches_default() {
        let l = BoundLambda::default_squared_l2(2).unwrap();
        let init = vec![vec![1.0, 1.0], vec![8.0, 8.0]];
        let fast = kmeans(&blobs(), init.clone(), None, &KMeansConfig::default()).unwrap();
        let generic = kmeans(&blobs(), init, Some(&l), &KMeansConfig::default()).unwrap();
        assert_eq!(fast.centers, generic.centers);
        assert_eq!(fast.sizes, generic.sizes);
    }

    #[test]
    fn manhattan_lambda_changes_assignment() {
        // Point (3, 4): L2² to A(0,0)=25, to B(5,0)=20 → B.
        //              L1 to A = 7, to B = 6 → B. Pick a point where they
        // disagree: (4, 6): L2² A=52, B=37 → B; L1 A=10, B=7 → B. Use
        // (2, 5): L2² A=29, B=34 → A; L1 A=7, B=8 → A. Need disagreement:
        // (3, 5): L2² A=34, B=29 → B; L1 A=8, B=7 → B. Try (1, 6):
        // L2² A=37, B=52 → A; L1 A=7, B=10 → A. Hmm — with two centers on
        // the x-axis, L1 and L2 argmin agree by symmetry. Use three
        // centers where the metrics genuinely disagree.
        let data = Chunk::new(vec![
            ColumnVector::from_f64(vec![0.0, 6.0]),
            ColumnVector::from_f64(vec![0.0, 6.0]),
        ]);
        let centers = vec![vec![5.0, 5.0], vec![0.0, 9.0]];
        // Point (6,6): L2² to (5,5)=2, to (0,9)=45 → center 0.
        //              L1 to (5,5)=2, to (0,9)=9 → center 0. Still agree.
        // Rather than hunt for a disagreement, verify the *distances* the
        // lambda produces differ from L2, via assignment of (0,0):
        // L1 to (5,5)=10, to (0,9)=9 → center 1;
        // L2² to (5,5)=50, to (0,9)=81 → center 0.
        let l1 = BoundLambda::manhattan_l1(2).unwrap();
        let a_l2 = kmeans_assign(std::slice::from_ref(&data), &centers, None).unwrap();
        let a_l1 = kmeans_assign(&[data], &centers, Some(&l1)).unwrap();
        assert_eq!(a_l2[0][0], 0, "L2 assigns (0,0) to (5,5)");
        assert_eq!(a_l1[0][0], 1, "L1 assigns (0,0) to (0,9)");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(kmeans(&blobs(), vec![], None, &KMeansConfig::default()).is_err());
        assert!(kmeans(
            &blobs(),
            vec![vec![0.0], vec![1.0, 1.0]],
            None,
            &KMeansConfig::default()
        )
        .is_err());
        // NULLs rejected.
        let mut col = ColumnVector::from_f64(vec![1.0]);
        col.push_null();
        let chunk = Chunk::new(vec![col.clone(), col]);
        assert!(kmeans(
            &[chunk],
            vec![vec![0.0, 0.0]],
            None,
            &KMeansConfig::default()
        )
        .is_err());
    }

    #[test]
    fn multi_chunk_matches_single_chunk() {
        let all = blobs();
        let split: Vec<Chunk> = vec![all[0].slice(0, 3), all[0].slice(3, 3)];
        let init = vec![vec![1.0, 1.0], vec![8.0, 8.0]];
        let a = kmeans(&all, init.clone(), None, &KMeansConfig::default()).unwrap();
        let b = kmeans(&split, init, None, &KMeansConfig::default()).unwrap();
        assert_eq!(a.sizes, b.sizes);
        for (ca, cb) in a.centers.iter().zip(&b.centers) {
            for (x, y) in ca.iter().zip(cb) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn assign_returns_per_chunk() {
        let data = blobs();
        let centers = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        let assigned = kmeans_assign(&data, &centers, None).unwrap();
        assert_eq!(assigned[0], vec![0, 0, 0, 1, 1, 1]);
    }
}
