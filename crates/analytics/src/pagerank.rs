//! The physical PageRank operator (§6.3).
//!
//! Pull-based iteration over a query-local CSR index: "Because we have
//! dense internal vertex ids we are able to store the current and last
//! iteration's rank in arrays that can be directly indexed. Thus, every
//! neighbor rank access only involves a single read. At the end of each
//! iteration we aggregate each worker's data to determine how much the
//! new ranks differ from the previous iteration's."

use hylite_common::governor::Governor;
use hylite_common::Result;
use hylite_graph::CsrGraph;
use rayon::prelude::*;

/// PageRank configuration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor d (the paper uses 0.85).
    pub damping: f64,
    /// Stop when the summed absolute rank change ≤ ε (0 disables).
    pub epsilon: f64,
    /// Maximum iterations (the paper's experiments run 45).
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            epsilon: 0.0001,
            max_iterations: 100,
        }
    }
}

/// Result of a PageRank run over dense vertex ids.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Rank per dense vertex id (sums to ≈ 1).
    pub ranks: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether ε-convergence was reached before the cap.
    pub converged: bool,
    /// Summed absolute rank change per iteration ("how much the new
    /// ranks differ from the previous iteration's").
    pub residual_history: Vec<f64>,
    /// Wall time of each iteration in microseconds.
    pub iter_micros: Vec<u64>,
}

/// Minimum rows per rayon work item so tiny graphs don't over-parallelize.
const MIN_PAR_LEN: usize = 4096;

/// Run PageRank over a CSR graph (dense ids; callers translate back with
/// the graph's [`VertexMapping`](hylite_graph::VertexMapping)).
pub fn pagerank(graph: &CsrGraph, config: &PageRankConfig) -> PageRankResult {
    pagerank_governed(graph, config, &Governor::unlimited())
        .expect("unlimited governor cannot abort")
}

/// [`pagerank`] under a resource [`Governor`]: each power iteration starts
/// with a cooperative cancellation/deadline check, and the rank/share
/// arrays plus the transposed adjacency are charged against the
/// statement's memory budget for the duration of the run.
pub fn pagerank_governed(
    graph: &CsrGraph,
    config: &PageRankConfig,
    governor: &Governor,
) -> Result<PageRankResult> {
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(PageRankResult {
            ranks: vec![],
            iterations: 0,
            converged: true,
            residual_history: vec![],
            iter_micros: vec![],
        });
    }
    // Scratch working set: ranks + next + share (f64 each) plus the
    // transposed CSR (offsets + edge targets).
    let scratch_bytes = 3 * n as u64 * 8 + (n as u64 + 1) * 8 + graph.num_edges() as u64 * 4;
    let _scratch = governor.reserve_scoped(scratch_bytes)?;
    // Pull-based: iterate over each vertex's in-neighbors.
    let incoming = graph.transpose();
    let out_degree = graph.out_degrees();
    let inv_n = 1.0 / n as f64;
    let d = config.damping;

    let mut ranks = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0usize;
    let mut converged = false;
    let mut residual_history = Vec::new();
    let mut iter_micros = Vec::new();

    while iterations < config.max_iterations {
        governor.check()?;
        iterations += 1;
        let iter_start = std::time::Instant::now();
        // Dangling mass: vertices with no out-edges spread uniformly.
        let dangling: f64 = ranks
            .iter()
            .zip(&out_degree)
            .filter(|(_, &deg)| deg == 0)
            .map(|(r, _)| *r)
            .sum();
        let base = (1.0 - d) * inv_n + d * dangling * inv_n;
        // Contribution each vertex sends along each out-edge.
        let share: Vec<f64> = ranks
            .iter()
            .zip(&out_degree)
            .map(|(r, &deg)| if deg == 0 { 0.0 } else { r / deg as f64 })
            .collect();
        // New ranks in parallel — no synchronization inside the loop.
        let diff: f64 = next
            .par_iter_mut()
            .enumerate()
            .with_min_len(MIN_PAR_LEN)
            .map(|(v, slot)| {
                let mut acc = 0.0;
                for &u in incoming.neighbors(v as u32) {
                    acc += share[u as usize];
                }
                let new = base + d * acc;
                let delta = (new - ranks[v]).abs();
                *slot = new;
                delta
            })
            .sum();
        std::mem::swap(&mut ranks, &mut next);
        residual_history.push(diff);
        iter_micros.push(iter_start.elapsed().as_micros() as u64);
        if config.epsilon > 0.0 && diff <= config.epsilon {
            converged = true;
            break;
        }
    }
    Ok(PageRankResult {
        ranks,
        iterations,
        converged,
        residual_history,
        iter_micros,
    })
}

/// Weighted PageRank: a vertex's rank flows to its neighbors
/// proportionally to edge weights instead of uniformly — the paper's §4.3
/// example of lambda-style operator parameterization ("define edge
/// weights in PageRank"). `weights` must align with the graph's CSR edge
/// order (see `CsrGraph::from_weighted_edges`).
pub fn pagerank_weighted(
    graph: &CsrGraph,
    weights: &[f64],
    config: &PageRankConfig,
) -> PageRankResult {
    pagerank_weighted_governed(graph, weights, config, &Governor::unlimited())
        .expect("unlimited governor cannot abort")
}

/// [`pagerank_weighted`] under a resource [`Governor`] — see
/// [`pagerank_governed`] for the check/charge policy.
pub fn pagerank_weighted_governed(
    graph: &CsrGraph,
    weights: &[f64],
    config: &PageRankConfig,
    governor: &Governor,
) -> Result<PageRankResult> {
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(PageRankResult {
            ranks: vec![],
            iterations: 0,
            converged: true,
            residual_history: vec![],
            iter_micros: vec![],
        });
    }
    assert_eq!(weights.len(), graph.num_edges(), "weight per edge");
    // Scratch working set: ranks + next + total_weight (f64 each).
    let _scratch = governor.reserve_scoped(3 * n as u64 * 8)?;
    // Total outgoing weight per vertex.
    let total_weight: Vec<f64> = (0..n as u32)
        .map(|v| graph.edge_range(v).map(|e| weights[e]).sum())
        .collect();
    let inv_n = 1.0 / n as f64;
    let d = config.damping;
    let mut ranks = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0usize;
    let mut converged = false;
    let mut residual_history = Vec::new();
    let mut iter_micros = Vec::new();
    while iterations < config.max_iterations {
        governor.check()?;
        iterations += 1;
        let iter_start = std::time::Instant::now();
        let dangling: f64 = ranks
            .iter()
            .zip(&total_weight)
            .filter(|(_, &w)| w <= 0.0)
            .map(|(r, _)| *r)
            .sum();
        let base = (1.0 - d) * inv_n + d * dangling * inv_n;
        next.iter_mut().for_each(|v| *v = base);
        // Push-based: scatter each vertex's weighted shares.
        for v in 0..n as u32 {
            let w_total = total_weight[v as usize];
            if w_total <= 0.0 {
                continue;
            }
            let scale = d * ranks[v as usize] / w_total;
            for (e, &t) in graph.edge_range(v).zip(graph.neighbors(v)) {
                next[t as usize] += scale * weights[e];
            }
        }
        let diff: f64 = ranks.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut ranks, &mut next);
        residual_history.push(diff);
        iter_micros.push(iter_start.elapsed().as_micros() as u64);
        if config.epsilon > 0.0 && diff <= config.epsilon {
            converged = true;
            break;
        }
    }
    Ok(PageRankResult {
        ranks,
        iterations,
        converged,
        residual_history,
        iter_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_graph::generators;

    fn run(src: &[i64], dest: &[i64], config: &PageRankConfig) -> (CsrGraph, PageRankResult) {
        let g = CsrGraph::from_edges(src, dest).unwrap();
        let r = pagerank(&g, config);
        (g, r)
    }

    #[test]
    fn ranks_sum_to_one() {
        let (s, d) = generators::cycle(10);
        let (_, r) = run(&s, &d, &PageRankConfig::default());
        let total: f64 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn cycle_is_uniform() {
        let (s, d) = generators::cycle(8);
        let (_, r) = run(&s, &d, &PageRankConfig::default());
        for &x in &r.ranks {
            assert!((x - 1.0 / 8.0).abs() < 1e-9);
        }
        assert!(r.converged);
    }

    #[test]
    fn hub_outranks_leaves() {
        let (s, d) = generators::star_into_hub(10);
        let (g, r) = run(
            &s,
            &d,
            &PageRankConfig {
                epsilon: 1e-12,
                max_iterations: 200,
                ..Default::default()
            },
        );
        let hub = g.mapping().to_dense(0).unwrap() as usize;
        let leaf = g.mapping().to_dense(1).unwrap() as usize;
        assert!(r.ranks[hub] > 5.0 * r.ranks[leaf]);
    }

    #[test]
    fn matches_reference_on_known_graph() {
        // Classic 4-page example: A→B, A→C, B→C, C→A, D→C.
        let src = [0, 0, 1, 2, 3];
        let dest = [1, 2, 2, 0, 2];
        let (g, r) = run(
            &src,
            &dest,
            &PageRankConfig {
                damping: 0.85,
                epsilon: 1e-12,
                max_iterations: 500,
            },
        );
        // Reference values from an independent power-iteration (dangling
        // mass redistributed uniformly).
        let a = r.ranks[g.mapping().to_dense(0).unwrap() as usize];
        let c = r.ranks[g.mapping().to_dense(2).unwrap() as usize];
        let b = r.ranks[g.mapping().to_dense(1).unwrap() as usize];
        let d_ = r.ranks[g.mapping().to_dense(3).unwrap() as usize];
        assert!(c > a && a > b && b > d_, "ordering C > A > B > D");
        let total: f64 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Fixpoint check: r = (1-d)/n + d·Σ in-shares (no vertex in this
        // graph is dangling — every page has an out-edge).
        for (v, &rv) in r.ranks.iter().enumerate() {
            let mut acc = 0.0;
            for u in 0..4u32 {
                if g.neighbors(u).contains(&(v as u32)) {
                    acc += r.ranks[u as usize] / g.out_degree(u) as f64;
                }
            }
            let expect = 0.15 / 4.0 + 0.85 * acc;
            assert!((rv - expect).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn epsilon_zero_runs_all_iterations() {
        let (s, d) = generators::cycle(5);
        let (_, r) = run(
            &s,
            &d,
            &PageRankConfig {
                epsilon: 0.0,
                max_iterations: 45,
                ..Default::default()
            },
        );
        assert_eq!(r.iterations, 45);
        assert!(!r.converged);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(&[], &[]).unwrap();
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r.ranks.is_empty());
    }

    #[test]
    fn weighted_uniform_matches_unweighted() {
        let (s, d) = generators::cycle(6);
        let (graph, weights) = CsrGraph::from_weighted_edges(&s, &d, &vec![2.5; s.len()]).unwrap();
        let config = PageRankConfig {
            epsilon: 1e-12,
            max_iterations: 300,
            ..Default::default()
        };
        let plain = pagerank(&graph, &config);
        let weighted = pagerank_weighted(&graph, &weights, &config);
        for (a, b) in plain.ranks.iter().zip(&weighted.ranks) {
            assert!((a - b).abs() < 1e-9, "uniform weights must be a no-op");
        }
    }

    #[test]
    fn weighted_skews_flow() {
        // 0 → 1 (weight 9), 0 → 2 (weight 1); back edges keep it strongly
        // connected. Vertex 1 must outrank vertex 2.
        let src = [0i64, 0, 1, 2];
        let dest = [1i64, 2, 0, 0];
        let weights = [9.0, 1.0, 1.0, 1.0];
        let (graph, w) = CsrGraph::from_weighted_edges(&src, &dest, &weights).unwrap();
        let r = pagerank_weighted(
            &graph,
            &w,
            &PageRankConfig {
                epsilon: 1e-12,
                max_iterations: 500,
                ..Default::default()
            },
        );
        let d1 = graph.mapping().to_dense(1).unwrap() as usize;
        let d2 = graph.mapping().to_dense(2).unwrap() as usize;
        assert!(
            r.ranks[d1] > 2.0 * r.ranks[d2],
            "heavy edge must carry more rank: {} vs {}",
            r.ranks[d1],
            r.ranks[d2]
        );
        let total: f64 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_zero_out_weight_is_dangling() {
        let src = [0i64, 1];
        let dest = [1i64, 0];
        let weights = [1.0, 0.0]; // vertex 1's only edge has zero weight
        let (graph, w) = CsrGraph::from_weighted_edges(&src, &dest, &weights).unwrap();
        let r = pagerank_weighted(&graph, &w, &PageRankConfig::default());
        let total: f64 = r.ranks.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "mass conserved via dangling path"
        );
    }

    #[test]
    fn dangling_mass_conserved() {
        // Path graph: the last vertex is dangling.
        let (s, d) = generators::path(5);
        let (_, r) = run(&s, &d, &PageRankConfig::default());
        let total: f64 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
