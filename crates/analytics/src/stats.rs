//! Per-class statistics — the reusable building-block operator of §6.2
//! ("the generation of additional statistical measures is handled by two
//! additional operators that are not limited to Naive Bayes but can be
//! used as a building block for multiple algorithms").

use hylite_common::{Chunk, Result, Value};

use crate::naive_bayes::{collect_moments, LabelValue};

/// One output row of the CLASS_STATS operator.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStatsRow {
    /// The class label.
    pub class: LabelValue,
    /// Attribute name.
    pub attribute: String,
    /// Tuples in the class.
    pub count: u64,
    /// Attribute mean within the class.
    pub mean: f64,
    /// Sample standard deviation within the class.
    pub stddev: f64,
    /// Minimum within the class.
    pub min: f64,
    /// Maximum within the class.
    pub max: f64,
}

impl ClassStatsRow {
    /// To a relation row `(class, attribute, count, mean, stddev, min, max)`.
    pub fn to_values(&self) -> Vec<Value> {
        vec![
            self.class.to_value(),
            Value::Str(self.attribute.clone()),
            Value::Int(self.count as i64),
            Value::Float(self.mean),
            Value::Float(self.stddev),
            Value::Float(self.min),
            Value::Float(self.max),
        ]
    }
}

/// Compute per-class, per-attribute statistics. Input chunks hold DOUBLE
/// feature columns with the label last (same contract as Naive Bayes
/// training — both share the moment-collection pass).
pub fn class_stats(chunks: &[Chunk], feature_names: &[String]) -> Result<Vec<ClassStatsRow>> {
    let moments = collect_moments(chunks)?;
    let mut labels: Vec<&LabelValue> = moments.keys().collect();
    labels.sort();
    let mut out = Vec::with_capacity(labels.len() * feature_names.len());
    for label in labels {
        let m = &moments[label];
        for (a, name) in feature_names.iter().enumerate() {
            out.push(ClassStatsRow {
                class: label.clone(),
                attribute: name.clone(),
                count: m.n,
                mean: m.mean(a),
                stddev: m.stddev(a),
                min: m.mins[a],
                max: m.maxs[a],
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector as CV;

    #[test]
    fn stats_per_class() {
        let data = Chunk::new(vec![
            CV::from_f64(vec![1.0, 3.0, 10.0, 20.0]),
            CV::from_i64(vec![0, 0, 1, 1]),
        ]);
        let rows = class_stats(&[data], &["x".to_string()]).unwrap();
        assert_eq!(rows.len(), 2);
        let c0 = &rows[0];
        assert_eq!(c0.class, LabelValue::Int(0));
        assert_eq!(c0.count, 2);
        assert!((c0.mean - 2.0).abs() < 1e-12);
        assert!((c0.min - 1.0).abs() < 1e-12);
        assert!((c0.max - 3.0).abs() < 1e-12);
        // stddev of {1,3} (sample) = sqrt(2)
        assert!((c0.stddev - 2.0f64.sqrt()).abs() < 1e-12);
        let c1 = &rows[1];
        assert!((c1.mean - 15.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_attributes() {
        let data = Chunk::new(vec![
            CV::from_f64(vec![1.0, 2.0]),
            CV::from_f64(vec![10.0, 20.0]),
            CV::from_str(vec!["a", "a"]),
        ]);
        let rows = class_stats(&[data], &["x".to_string(), "y".to_string()]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].attribute, "x");
        assert_eq!(rows[1].attribute, "y");
        assert!((rows[1].mean - 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_no_rows() {
        let rows = class_stats(&[], &["x".to_string()]).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn row_serialization() {
        let data = Chunk::new(vec![CV::from_f64(vec![1.0]), CV::from_i64(vec![7])]);
        let rows = class_stats(&[data], &["x".to_string()]).unwrap();
        let vals = rows[0].to_values();
        assert_eq!(vals[0], Value::Int(7));
        assert_eq!(vals[1], Value::from("x"));
        assert_eq!(vals[2], Value::Int(1));
    }
}
