//! The physical Naive Bayes operators (§6.2): Gaussian training and
//! prediction.
//!
//! Training follows the paper exactly: "Each thread holds a hash table
//! [keyed by] the class [...] the number of tuples N is stored for each
//! class, as well as the sum of the attribute values Σ n.a and the sum of
//! the square of each attribute value Σ n.a² for each class and
//! attribute." The a-priori probability uses the paper's Laplace-smoothed
//! formula `PR(c) = (|c| + 1) / (|D| + |C|)`.

use std::collections::HashMap;

use hylite_common::governor::Governor;
use hylite_common::{Chunk, ColumnVector, DataType, HyError, Result, Value};
use rayon::prelude::*;

/// A class label: the discrete types the binder admits for labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LabelValue {
    /// Integer label.
    Int(i64),
    /// String label.
    Str(String),
    /// Boolean label.
    Bool(bool),
}

impl LabelValue {
    /// From a scalar [`Value`]; NULL and floats are rejected.
    pub fn from_value(v: &Value) -> Result<LabelValue> {
        match v {
            Value::Int(x) => Ok(LabelValue::Int(*x)),
            Value::Str(s) => Ok(LabelValue::Str(s.clone())),
            Value::Bool(b) => Ok(LabelValue::Bool(*b)),
            other => Err(HyError::Analytics(format!(
                "invalid class label {other} (must be BIGINT, VARCHAR or BOOLEAN)"
            ))),
        }
    }

    /// Back to a scalar [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            LabelValue::Int(x) => Value::Int(*x),
            LabelValue::Str(s) => Value::Str(s.clone()),
            LabelValue::Bool(b) => Value::Bool(*b),
        }
    }
}

/// Per-class running moments: N, Σa and Σa² per attribute.
#[derive(Debug, Clone, Default)]
pub struct ClassMoments {
    /// Tuples seen for this class.
    pub n: u64,
    /// Σ of each attribute.
    pub sums: Vec<f64>,
    /// Σ of squares of each attribute.
    pub sum_sqs: Vec<f64>,
    /// Minimum of each attribute (for CLASS_STATS).
    pub mins: Vec<f64>,
    /// Maximum of each attribute (for CLASS_STATS).
    pub maxs: Vec<f64>,
}

impl ClassMoments {
    fn new(d: usize) -> ClassMoments {
        ClassMoments {
            n: 0,
            sums: vec![0.0; d],
            sum_sqs: vec![0.0; d],
            mins: vec![f64::INFINITY; d],
            maxs: vec![f64::NEG_INFINITY; d],
        }
    }

    fn merge(&mut self, other: &ClassMoments) {
        self.n += other.n;
        for i in 0..self.sums.len() {
            self.sums[i] += other.sums[i];
            self.sum_sqs[i] += other.sum_sqs[i];
            self.mins[i] = self.mins[i].min(other.mins[i]);
            self.maxs[i] = self.maxs[i].max(other.maxs[i]);
        }
    }

    /// Mean of attribute `i`.
    pub fn mean(&self, i: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sums[i] / self.n as f64
        }
    }

    /// Sample standard deviation of attribute `i` (0 when n < 2).
    pub fn stddev(&self, i: usize) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let nf = self.n as f64;
        (((self.sum_sqs[i] - self.sums[i] * self.sums[i] / nf) / (nf - 1.0)).max(0.0)).sqrt()
    }
}

/// Fold chunks into per-class moments (min/max tracked — CLASS_STATS
/// needs them). The label is the LAST column; earlier columns are DOUBLE
/// features.
pub fn collect_moments(chunks: &[Chunk]) -> Result<HashMap<LabelValue, ClassMoments>> {
    collect_moments_opts(chunks, true)
}

/// Like [`collect_moments`], optionally skipping min/max maintenance
/// (Naive Bayes training only needs N, Σa, Σa² — §6.2).
pub fn collect_moments_opts(
    chunks: &[Chunk],
    track_minmax: bool,
) -> Result<HashMap<LabelValue, ClassMoments>> {
    collect_moments_governed(chunks, track_minmax, &Governor::unlimited())
}

/// [`collect_moments_opts`] under a resource [`Governor`]: every parallel
/// per-chunk fold starts with a cooperative cancellation/deadline check.
pub fn collect_moments_governed(
    chunks: &[Chunk],
    track_minmax: bool,
    governor: &Governor,
) -> Result<HashMap<LabelValue, ClassMoments>> {
    let Some(first) = chunks.first() else {
        return Ok(HashMap::new());
    };
    let d = first.num_columns().saturating_sub(1);
    if d == 0 {
        return Err(HyError::Analytics(
            "Naive Bayes needs at least one feature column plus the label".into(),
        ));
    }
    // Per-thread hash tables, merged once at the end (paper §6.2).
    let locals: Vec<Result<HashMap<LabelValue, ClassMoments>>> = chunks
        .par_iter()
        .map(|chunk| {
            governor.check()?;
            let mut table: HashMap<LabelValue, ClassMoments> = HashMap::new();
            let label_col = chunk.column(d);
            let feature_cols: Vec<&[f64]> = (0..d)
                .map(|i| chunk.column(i).as_f64())
                .collect::<Result<_>>()?;
            // Fast path: non-NULL BIGINT labels fold without per-row
            // Value materialization (the common benchmark shape).
            if label_col.null_count() == 0 {
                if let Ok(labels) = label_col.as_i64() {
                    let mut int_table: HashMap<i64, ClassMoments> = HashMap::new();
                    if track_minmax {
                        for (i, &label) in labels.iter().enumerate() {
                            let m = int_table
                                .entry(label)
                                .or_insert_with(|| ClassMoments::new(d));
                            m.n += 1;
                            for (a, col) in feature_cols.iter().enumerate() {
                                let x = col[i];
                                m.sums[a] += x;
                                m.sum_sqs[a] += x * x;
                                m.mins[a] = m.mins[a].min(x);
                                m.maxs[a] = m.maxs[a].max(x);
                            }
                        }
                    } else {
                        for (i, &label) in labels.iter().enumerate() {
                            let m = int_table
                                .entry(label)
                                .or_insert_with(|| ClassMoments::new(d));
                            m.n += 1;
                            for (a, col) in feature_cols.iter().enumerate() {
                                let x = col[i];
                                m.sums[a] += x;
                                m.sum_sqs[a] += x * x;
                            }
                        }
                    }
                    for (k, v) in int_table {
                        table.insert(LabelValue::Int(k), v);
                    }
                    return Ok(table);
                }
            }
            for i in 0..chunk.len() {
                let label = LabelValue::from_value(&label_col.value(i))?;
                let m = table.entry(label).or_insert_with(|| ClassMoments::new(d));
                m.n += 1;
                for (a, col) in feature_cols.iter().enumerate() {
                    let x = col[i];
                    m.sums[a] += x;
                    m.sum_sqs[a] += x * x;
                    m.mins[a] = m.mins[a].min(x);
                    m.maxs[a] = m.maxs[a].max(x);
                }
            }
            Ok(table)
        })
        .collect();
    let mut merged: HashMap<LabelValue, ClassMoments> = HashMap::new();
    for local in locals {
        for (k, v) in local? {
            merged.entry(k).and_modify(|m| m.merge(&v)).or_insert(v);
        }
    }
    Ok(merged)
}

/// One class of a trained Gaussian model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassModel {
    /// The class label.
    pub label: LabelValue,
    /// Laplace-smoothed prior `(|c|+1)/(|D|+|C|)`.
    pub prior: f64,
    /// Per-attribute (mean, stddev).
    pub gaussians: Vec<(f64, f64)>,
}

/// A trained Gaussian Naive Bayes model.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesModel {
    /// Feature names, aligned with the gaussians.
    pub feature_names: Vec<String>,
    /// Classes, sorted by label for deterministic output.
    pub classes: Vec<ClassModel>,
}

/// Floor for stddev so degenerate attributes don't produce infinities.
const MIN_STDDEV: f64 = 1e-9;

impl NaiveBayesModel {
    /// Train from labeled chunks (features..., label).
    pub fn train(chunks: &[Chunk], feature_names: &[String]) -> Result<NaiveBayesModel> {
        NaiveBayesModel::train_governed(chunks, feature_names, &Governor::unlimited())
    }

    /// [`train`](NaiveBayesModel::train) under a resource [`Governor`]:
    /// the parallel moment collection checks for cancellation/timeout once
    /// per input chunk.
    pub fn train_governed(
        chunks: &[Chunk],
        feature_names: &[String],
        governor: &Governor,
    ) -> Result<NaiveBayesModel> {
        let moments = collect_moments_governed(chunks, false, governor)?;
        if moments.is_empty() {
            return Err(HyError::Analytics(
                "Naive Bayes training input is empty".into(),
            ));
        }
        let total: u64 = moments.values().map(|m| m.n).sum();
        let num_classes = moments.len() as f64;
        let mut labels: Vec<&LabelValue> = moments.keys().collect();
        labels.sort();
        let classes = labels
            .into_iter()
            .map(|label| {
                let m = &moments[label];
                // The paper's smoothed prior: (|c|+1) / (|D|+|C|).
                let prior = (m.n as f64 + 1.0) / (total as f64 + num_classes);
                let gaussians = (0..feature_names.len())
                    .map(|a| (m.mean(a), m.stddev(a).max(MIN_STDDEV)))
                    .collect();
                ClassModel {
                    label: label.clone(),
                    prior,
                    gaussians,
                }
            })
            .collect();
        Ok(NaiveBayesModel {
            feature_names: feature_names.to_vec(),
            classes,
        })
    }

    /// Serialize to the model relation rows:
    /// `(class, attribute, prior, mean, stddev)`.
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for class in &self.classes {
            for (a, name) in self.feature_names.iter().enumerate() {
                rows.push(vec![
                    class.label.to_value(),
                    Value::Str(name.clone()),
                    Value::Float(class.prior),
                    Value::Float(class.gaussians[a].0),
                    Value::Float(class.gaussians[a].1),
                ]);
            }
        }
        rows
    }

    /// Reconstruct a model from a model relation
    /// `(class, attribute, prior, mean, stddev)`, aligning attributes to
    /// `feature_names` (the prediction data's columns).
    pub fn from_relation(chunks: &[Chunk], feature_names: &[String]) -> Result<NaiveBayesModel> {
        // prior + one optional (mean, stddev) slot per expected attribute.
        type ClassSlots = (f64, Vec<Option<(f64, f64)>>);
        let mut by_class: HashMap<LabelValue, ClassSlots> = HashMap::new();
        let attr_index: HashMap<&str, usize> = feature_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        for chunk in chunks {
            if chunk.num_columns() != 5 {
                return Err(HyError::Analytics(format!(
                    "model relation must have 5 columns, found {}",
                    chunk.num_columns()
                )));
            }
            for i in 0..chunk.len() {
                let label = LabelValue::from_value(&chunk.column(0).value(i))?;
                let attr = chunk.column(1).value(i);
                let attr = attr.as_str().map_err(|_| {
                    HyError::Analytics("model attribute column must be VARCHAR".into())
                })?;
                let prior = chunk.column(2).value(i).as_float()?;
                let mean = chunk.column(3).value(i).as_float()?;
                let stddev = chunk.column(4).value(i).as_float()?;
                let Some(&a) = attr_index.get(attr) else {
                    return Err(HyError::Analytics(format!(
                        "model attribute '{attr}' does not match any prediction column \
                         (expected one of {feature_names:?})"
                    )));
                };
                let entry = by_class
                    .entry(label)
                    .or_insert_with(|| (prior, vec![None; feature_names.len()]));
                entry.0 = prior;
                entry.1[a] = Some((mean, stddev.max(MIN_STDDEV)));
            }
        }
        if by_class.is_empty() {
            return Err(HyError::Analytics("model relation is empty".into()));
        }
        let mut labels: Vec<LabelValue> = by_class.keys().cloned().collect();
        labels.sort();
        let classes = labels
            .into_iter()
            .map(|label| {
                let (prior, slots) = &by_class[&label];
                let gaussians = slots
                    .iter()
                    .enumerate()
                    .map(|(a, s)| {
                        s.ok_or_else(|| {
                            HyError::Analytics(format!(
                                "model is missing attribute '{}' for a class",
                                feature_names[a]
                            ))
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(ClassModel {
                    label,
                    prior: *prior,
                    gaussians,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(NaiveBayesModel {
            feature_names: feature_names.to_vec(),
            classes,
        })
    }

    /// Predict class labels for feature-only chunks; returns one label
    /// column per input chunk.
    pub fn predict(&self, chunks: &[Chunk]) -> Result<Vec<ColumnVector>> {
        let d = self.feature_names.len();
        chunks
            .par_iter()
            .map(|chunk| {
                if chunk.num_columns() != d {
                    return Err(HyError::Analytics(format!(
                        "prediction data has {} columns, model expects {d}",
                        chunk.num_columns()
                    )));
                }
                let cols: Vec<&[f64]> = (0..d)
                    .map(|i| chunk.column(i).as_f64())
                    .collect::<Result<_>>()?;
                let label_type = self.classes[0].label.to_value().data_type();
                let mut out = ColumnVector::empty(label_type);
                for i in 0..chunk.len() {
                    let mut best: Option<(f64, &ClassModel)> = None;
                    for class in &self.classes {
                        // Log-space score: ln prior + Σ ln N(x; μ, σ).
                        let mut score = class.prior.ln();
                        for (a, col) in cols.iter().enumerate() {
                            let (mean, std) = class.gaussians[a];
                            let z = (col[i] - mean) / std;
                            score += -0.5 * z * z - std.ln();
                        }
                        if best.is_none_or(|(s, _)| score > s) {
                            best = Some((score, class));
                        }
                    }
                    let label = best.expect("model has ≥1 class").1.label.to_value();
                    out.push_value(&label)?;
                }
                Ok(out)
            })
            .collect()
    }

    /// The type of the label column.
    pub fn label_type(&self) -> DataType {
        self.classes[0].label.to_value().data_type()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector as CV;

    /// Two well-separated 1-D classes: label 0 near 0.0, label 1 near 10.
    fn labeled() -> Vec<Chunk> {
        vec![Chunk::new(vec![
            CV::from_f64(vec![0.0, 0.5, -0.5, 10.0, 10.5, 9.5]),
            CV::from_i64(vec![0, 0, 0, 1, 1, 1]),
        ])]
    }

    #[test]
    fn train_priors_match_paper_formula() {
        let m = NaiveBayesModel::train(&labeled(), &["x".into()]).unwrap();
        assert_eq!(m.classes.len(), 2);
        // (3 + 1) / (6 + 2) = 0.5 for both classes.
        for c in &m.classes {
            assert!((c.prior - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn train_moments() {
        let m = NaiveBayesModel::train(&labeled(), &["x".into()]).unwrap();
        let c0 = &m.classes[0];
        assert_eq!(c0.label, LabelValue::Int(0));
        assert!((c0.gaussians[0].0 - 0.0).abs() < 1e-12, "mean");
        assert!((c0.gaussians[0].1 - 0.5).abs() < 1e-12, "sample stddev");
    }

    #[test]
    fn predict_recovers_labels() {
        let m = NaiveBayesModel::train(&labeled(), &["x".into()]).unwrap();
        let test = Chunk::new(vec![CV::from_f64(vec![0.2, 9.8, -1.0, 11.0])]);
        let labels = m.predict(&[test]).unwrap();
        assert_eq!(labels[0].as_i64().unwrap(), &[0, 1, 0, 1]);
    }

    #[test]
    fn model_relation_roundtrip() {
        let names = vec!["x".to_string()];
        let m = NaiveBayesModel::train(&labeled(), &names).unwrap();
        let rows = m.to_rows();
        assert_eq!(rows.len(), 2, "2 classes × 1 attribute");
        let types = [
            DataType::Int64,
            DataType::Varchar,
            DataType::Float64,
            DataType::Float64,
            DataType::Float64,
        ];
        let chunk = Chunk::from_rows(&types, &rows).unwrap();
        let back = NaiveBayesModel::from_relation(&[chunk], &names).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn string_labels() {
        let data = Chunk::new(vec![
            CV::from_f64(vec![1.0, 1.2, 5.0, 5.2]),
            CV::from_str(vec!["ham", "ham", "spam", "spam"]),
        ]);
        let m = NaiveBayesModel::train(&[data], &["len".into()]).unwrap();
        assert_eq!(m.label_type(), DataType::Varchar);
        let test = Chunk::new(vec![CV::from_f64(vec![1.1, 5.1])]);
        let labels = m.predict(&[test]).unwrap();
        assert_eq!(
            labels[0].as_varchar().unwrap(),
            &["ham".to_string(), "spam".to_string()]
        );
    }

    #[test]
    fn parallel_matches_serial() {
        // Many small chunks vs one big chunk must give identical models
        // up to floating-point association (moments are sums).
        let xs: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let ls: Vec<i64> = (0..1000).map(|i| (i % 2) as i64).collect();
        let big = Chunk::new(vec![CV::from_f64(xs.clone()), CV::from_i64(ls.clone())]);
        let small: Vec<Chunk> = (0..10).map(|i| big.slice(i * 100, 100)).collect();
        let a = NaiveBayesModel::train(&[big], &["x".into()]).unwrap();
        let b = NaiveBayesModel::train(&small, &["x".into()]).unwrap();
        for (ca, cb) in a.classes.iter().zip(&b.classes) {
            assert_eq!(ca.label, cb.label);
            assert!((ca.prior - cb.prior).abs() < 1e-12);
            assert!((ca.gaussians[0].0 - cb.gaussians[0].0).abs() < 1e-9);
            assert!((ca.gaussians[0].1 - cb.gaussians[0].1).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(NaiveBayesModel::train(&[], &["x".into()]).is_err());
        // Float labels rejected.
        let data = Chunk::new(vec![CV::from_f64(vec![1.0]), CV::from_f64(vec![0.5])]);
        assert!(NaiveBayesModel::train(&[data], &["x".into()]).is_err());
        // Width mismatch at prediction.
        let m = NaiveBayesModel::train(&labeled(), &["x".into()]).unwrap();
        let test = Chunk::new(vec![CV::from_f64(vec![1.0]), CV::from_f64(vec![1.0])]);
        assert!(m.predict(&[test]).is_err());
    }

    #[test]
    fn degenerate_attribute_does_not_blow_up() {
        // Constant feature → stddev 0 → floored; prediction still works.
        let data = Chunk::new(vec![
            CV::from_f64(vec![1.0, 1.0, 1.0, 1.0]),
            CV::from_i64(vec![0, 0, 1, 1]),
        ]);
        let m = NaiveBayesModel::train(&[data], &["x".into()]).unwrap();
        let test = Chunk::new(vec![CV::from_f64(vec![1.0])]);
        let labels = m.predict(&[test]).unwrap();
        assert_eq!(labels[0].len(), 1);
    }
}
