//! Physical analytics operators — the paper's layer-4 contribution (§6).
//!
//! Each operator follows the paper's parallelization pattern: morsel
//! inputs are folded into thread-local state (rayon), merged once, and
//! finalized — "thread synchronization is only needed for the very last
//! steps". k-Means accepts a user-defined distance
//! [`BoundLambda`](hylite_expr::BoundLambda) (§7); PageRank builds a
//! query-local CSR index with dense re-labeling (§6.3); Naive Bayes keeps
//! per-class (N, Σa, Σa²) moments (§6.2), exposed separately as the
//! reusable [`class_stats`] building block.

#![warn(missing_docs)]

pub mod kmeans;
pub mod naive_bayes;
pub mod pagerank;
pub mod stats;

pub use kmeans::{kmeans, kmeans_assign, kmeans_governed, KMeansConfig, KMeansResult};
pub use naive_bayes::{LabelValue, NaiveBayesModel};
pub use pagerank::{pagerank, pagerank_governed, PageRankConfig, PageRankResult};
pub use stats::{class_stats, ClassStatsRow};
