//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§8).
//!
//! * [`queries`] — the SQL formulations behind the "HyPer Iterate" and
//!   "HyPer SQL" systems;
//! * [`workloads`] — dataset setup per experiment (Table 1 grid, LDBC
//!   graphs, labeled NB data), pre-loaded into every system's native
//!   format so timed regions cover the algorithm only;
//! * [`systems`] — one timed runner per (algorithm × system);
//! * [`report`] — gnuplot-ish text rendering of figure series;
//! * [`concurrent`] — the `concurrent-clients` serving workload: N wire
//!   connections with a mixed SQL + analytics statement stream;
//! * [`fleet`] — the router-fronted variant: 1 durable primary + N
//!   WAL-streaming replicas behind `HyliteRouter`, measuring the
//!   read-throughput scaling curve vs the single node.
//!
//! `cargo bench` runs Criterion versions at reduced scale; the `figures`
//! binary sweeps the full grids (`--scale` controls dataset sizes).

pub mod chaos;
pub mod concurrent;
pub mod fleet;
pub mod queries;
pub mod report;
pub mod systems;
pub mod workloads;
