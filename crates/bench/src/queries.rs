//! SQL formulations of the three algorithms for the "HyPer Iterate"
//! (layer 3, non-appending ITERATE) and "HyPer SQL" (layer 3, recursive
//! CTE) systems of the evaluation.
//!
//! Conventions: the vector-data table is `data(id BIGINT, c0..c{d-1}
//! DOUBLE)`, initial centers live in `centers(cid BIGINT, c0..)`, graphs
//! in `edges(src BIGINT, dest BIGINT)`, labeled data in
//! `nbdata(c0.., label BIGINT)`.

/// `(a.cX - b.cX)^2` summed over dimensions — the L2 distance text.
fn l2(d: usize, left: &str, right: &str) -> String {
    (0..d)
        .map(|i| format!("({left}.c{i} - {right}.c{i})^2"))
        .collect::<Vec<_>>()
        .join(" + ")
}

fn col_list(d: usize, alias: &str) -> String {
    (0..d)
        .map(|i| format!("{alias}.c{i}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// One assignment+update step over the working centers relation
/// `{working}` (columns cid, c0.., i): re-assign every data tuple to its
/// nearest center and emit the new per-cluster means.
fn kmeans_step(d: usize, working: &str) -> String {
    let dist = l2(d, "dd", "it");
    format!(
        "SELECT am.cid AS cid, {avgs}, min(am.i) + 1 AS i \
         FROM (SELECT p.id AS id, min(p.cid) AS cid, min(p.i) AS i \
               FROM (SELECT dd.id, it.cid, it.i, {dist} AS dist \
                     FROM data dd, {working} it) p \
               JOIN (SELECT q.id AS id, min(q.dist) AS mdist \
                     FROM (SELECT dd.id AS id, {dist} AS dist \
                           FROM data dd, {working} it) q \
                     GROUP BY q.id) m \
                 ON p.id = m.id AND p.dist = m.mdist \
               GROUP BY p.id) am \
         JOIN data dd2 ON dd2.id = am.id \
         GROUP BY am.cid",
        avgs = avg_list_renamed(d, "dd2"),
    )
}

fn avg_list_renamed(d: usize, alias: &str) -> String {
    (0..d)
        .map(|i| format!("avg({alias}.c{i}) AS c{i}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// k-Means with the non-appending ITERATE construct (the paper's
/// "HyPer Iterate" system). Returns (cid, c0.., i).
pub fn kmeans_iterate(d: usize, iterations: usize) -> String {
    let init = format!(
        "SELECT ct.cid AS cid, {cols}, 0 AS i FROM centers ct",
        cols = col_list(d, "ct")
    );
    let step = kmeans_step(d, "iterate");
    format!(
        "SELECT * FROM ITERATE(({init}), ({step}), \
         (SELECT it2.i FROM iterate it2 WHERE it2.i >= {iterations}))"
    )
}

/// k-Means with a recursive CTE (the paper's "HyPer SQL" system): the
/// appending baseline. The iteration counter i is carried in every tuple
/// — the memory overhead §5.1 calls out.
pub fn kmeans_recursive_cte(d: usize, iterations: usize) -> String {
    let init = format!(
        "SELECT ct.cid AS cid, {cols}, 0 AS i FROM centers ct",
        cols = col_list(d, "ct")
    );
    // The recursive term sees only the previous iteration (the working
    // table), filtered so the recursion terminates.
    let step = kmeans_step(d, "(SELECT * FROM kcenters WHERE i < 9999999)");
    let step = step.replace("9999999", &iterations.to_string());
    format!(
        "WITH RECURSIVE kcenters (cid, {cdecl}, i) AS ({init} UNION ALL {step}) \
         SELECT * FROM kcenters WHERE i = {iterations}",
        cdecl = (0..d)
            .map(|i| format!("c{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

/// PageRank with ITERATE: the rank relation (vertex, rank, i) is
/// replaced each round via joins on the edge table — relational
/// structures only, no CSR (§8.4.2).
pub fn pagerank_iterate(num_vertices: usize, damping: f64, iterations: usize) -> String {
    let n = num_vertices as f64;
    let init = format!(
        "SELECT v.vertex AS vertex, 1.0 / {n:.1} AS rank, 0 AS i \
         FROM (SELECT e.src AS vertex FROM edges e UNION SELECT e2.dest FROM edges e2) v"
    );
    let step = format!(
        "SELECT e.dest AS vertex, \
                {base:.17} + {damping} * sum(it.rank / deg.degree) AS rank, \
                min(it.i) + 1 AS i \
         FROM iterate it \
         JOIN edges e ON e.src = it.vertex \
         JOIN (SELECT e3.src AS src, CAST(count(*) AS DOUBLE) AS degree \
               FROM edges e3 GROUP BY e3.src) deg \
           ON deg.src = it.vertex \
         GROUP BY e.dest",
        base = (1.0 - damping) / n,
    );
    format!(
        "SELECT * FROM ITERATE(({init}), ({step}), \
         (SELECT it2.i FROM iterate it2 WHERE it2.i >= {iterations}))"
    )
}

/// PageRank with a recursive CTE (appending baseline).
pub fn pagerank_recursive_cte(num_vertices: usize, damping: f64, iterations: usize) -> String {
    let n = num_vertices as f64;
    let init = format!(
        "SELECT v.vertex AS vertex, 1.0 / {n:.1} AS rank, 0 AS i \
         FROM (SELECT e.src AS vertex FROM edges e UNION SELECT e2.dest FROM edges e2) v"
    );
    let step = format!(
        "SELECT e.dest AS vertex, \
                {base:.17} + {damping} * sum(it.rank / deg.degree) AS rank, \
                min(it.i) + 1 AS i \
         FROM (SELECT * FROM pranks WHERE i < {last}) it \
         JOIN edges e ON e.src = it.vertex \
         JOIN (SELECT e3.src AS src, CAST(count(*) AS DOUBLE) AS degree \
               FROM edges e3 GROUP BY e3.src) deg \
           ON deg.src = it.vertex \
         GROUP BY e.dest",
        base = (1.0 - damping) / n,
        last = iterations,
    );
    format!(
        "WITH RECURSIVE pranks (vertex, rank, i) AS ({init} UNION ALL {step}) \
         SELECT pr.vertex, pr.rank FROM pranks pr WHERE pr.i = {iterations}"
    )
}

/// Naive Bayes training in plain SQL: per-class aggregation, unpivoted
/// into the model relation (class, attribute, prior, mean, stddev).
/// Expects `nbdata(c0.., label)`.
pub fn naive_bayes_sql(d: usize) -> String {
    let per_attr: Vec<String> = (0..d)
        .map(|i| {
            format!(
                "SELECT g.label AS class, 'c{i}' AS attribute, \
                        (g.n + 1.0) / (t.total + cl.classes) AS prior, \
                        g.m{i} AS mean, g.s{i} AS stddev \
                 FROM (SELECT nb.label AS label, CAST(count(*) AS DOUBLE) AS n, \
                              {moments} \
                       FROM nbdata nb GROUP BY nb.label) g, \
                      (SELECT CAST(count(*) AS DOUBLE) AS total FROM nbdata) t, \
                      (SELECT CAST(count(*) AS DOUBLE) AS classes \
                       FROM (SELECT DISTINCT nb2.label FROM nbdata nb2) dl) cl",
                moments = (0..d)
                    .map(|j| format!("avg(nb.c{j}) AS m{j}, stddev(nb.c{j}) AS s{j}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        })
        .collect();
    per_attr.join(" UNION ALL ")
}

/// The layer-4 KMEANS operator invocation for the same tables.
pub fn kmeans_operator(d: usize, iterations: usize) -> String {
    format!(
        "SELECT * FROM KMEANS((SELECT {dc} FROM data d), (SELECT {cc} FROM centers ct), {iterations})",
        dc = col_list(d, "d"),
        cc = col_list(d, "ct"),
    )
}

/// The layer-4 PAGERANK operator invocation.
pub fn pagerank_operator(damping: f64, iterations: usize) -> String {
    format!(
        "SELECT * FROM PAGERANK((SELECT e.src, e.dest FROM edges e), {damping}, 0.0, {iterations})"
    )
}

/// The layer-4 NAIVE_BAYES_TRAIN operator invocation.
pub fn naive_bayes_operator(d: usize) -> String {
    format!(
        "SELECT * FROM NAIVE_BAYES_TRAIN((SELECT {cols}, nb.label FROM nbdata nb), label)",
        cols = (0..d)
            .map(|i| format!("nb.c{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_parse() {
        for sql in [
            kmeans_iterate(3, 2),
            kmeans_recursive_cte(3, 2),
            pagerank_iterate(100, 0.85, 5),
            pagerank_recursive_cte(100, 0.85, 5),
            naive_bayes_sql(2),
            kmeans_operator(3, 2),
            pagerank_operator(0.85, 5),
            naive_bayes_operator(2),
        ] {
            hylite_sql::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("query failed to parse: {e}\n{sql}"));
        }
    }
}
