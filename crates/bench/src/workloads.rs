//! Experiment setup: datasets pre-loaded into every system's format.

use hylite_baselines::dataflow::{DistDataset, DistEdges};
use hylite_common::{Chunk, ColumnVector, Result};
use hylite_core::Database;
use hylite_datagen::table1::KMeansExperiment;
use hylite_datagen::VectorDataset;
use hylite_graph::{LdbcConfig, LdbcGraph};

/// Everything a k-Means experiment needs, across all systems.
pub struct KMeansContext {
    /// The database: `data(id, c0..)`, `centers(cid, c0..)` loaded.
    pub db: Database,
    /// The experiment parameters.
    pub exp: KMeansExperiment,
    /// Initial centers (k × d).
    pub centers: Vec<Vec<f64>>,
    /// Row-major copy for the single-threaded tool.
    pub rows: Vec<Vec<f64>>,
    /// Pre-loaded dataflow-engine dataset.
    pub dist: DistDataset,
}

/// Build the k-Means experiment context.
pub fn setup_kmeans(exp: KMeansExperiment, seed: u64) -> Result<KMeansContext> {
    let dataset = VectorDataset::new(exp.n, exp.d, seed);
    let db = Database::new();

    // Database tables: data(id, c0..) and centers(cid, c0..).
    let id_cols: Vec<String> = (0..exp.d).map(|i| format!("c{i} DOUBLE")).collect();
    db.execute(&format!(
        "CREATE TABLE data (id BIGINT, {})",
        id_cols.join(", ")
    ))?;
    {
        let table = db.catalog().get_table("data")?;
        let mut guard = table.write();
        let mut next_id = 0i64;
        for chunk in dataset.chunks() {
            let n = chunk.len();
            let mut cols = vec![std::sync::Arc::new(ColumnVector::from_i64(
                (next_id..next_id + n as i64).collect(),
            ))];
            cols.extend(chunk.columns().iter().cloned());
            guard.insert_chunk(Chunk::from_arc_columns(cols))?;
            next_id += n as i64;
        }
        guard.commit();
    }
    let centers = dataset.initial_centers(exp.k);
    db.execute(&format!(
        "CREATE TABLE centers (cid BIGINT, {})",
        id_cols.join(", ")
    ))?;
    {
        let table = db.catalog().get_table("centers")?;
        let rows: Vec<Vec<hylite_common::Value>> = centers
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut row = vec![hylite_common::Value::Int(i as i64)];
                row.extend(c.iter().map(|&v| hylite_common::Value::Float(v)));
                row
            })
            .collect();
        let mut guard = table.write();
        guard.insert_rows(&rows)?;
        guard.commit();
    }

    // External-system formats (the ETL copies those systems require).
    let chunks = dataset.chunks();
    let dist = DistDataset::load(&chunks);
    let mut rows = Vec::with_capacity(exp.n);
    for chunk in &chunks {
        let cols: Vec<&[f64]> = (0..exp.d)
            .map(|i| chunk.column(i).as_f64())
            .collect::<Result<_>>()?;
        for r in 0..chunk.len() {
            rows.push(cols.iter().map(|c| c[r]).collect());
        }
    }
    Ok(KMeansContext {
        db,
        exp,
        centers,
        rows,
        dist,
    })
}

/// Everything a PageRank experiment needs.
pub struct PageRankContext {
    /// Database with `edges(src, dest)` loaded.
    pub db: Database,
    /// Vertex count.
    pub vertices: usize,
    /// Edge arrays for external systems.
    pub src: Vec<i64>,
    /// Edge arrays for external systems.
    pub dest: Vec<i64>,
    /// Pre-partitioned dataflow edges.
    pub dist: DistEdges,
}

/// Build a PageRank context from an LDBC-like configuration.
pub fn setup_pagerank(config: &LdbcConfig) -> Result<PageRankContext> {
    let graph = LdbcGraph::generate(config);
    let db = Database::new();
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")?;
    {
        let table = db.catalog().get_table("edges")?;
        let chunk = Chunk::new(vec![
            ColumnVector::from_i64(graph.src.clone()),
            ColumnVector::from_i64(graph.dest.clone()),
        ]);
        let mut guard = table.write();
        guard.insert_chunk(chunk)?;
        guard.commit();
    }
    let dist = DistEdges::load(&graph.src, &graph.dest, 16);
    Ok(PageRankContext {
        db,
        vertices: config.vertices,
        src: graph.src,
        dest: graph.dest,
        dist,
    })
}

/// Everything a Naive Bayes experiment needs.
pub struct NaiveBayesContext {
    /// Database with `nbdata(c0.., label)` loaded.
    pub db: Database,
    /// Dimensions.
    pub d: usize,
    /// Row-major feature copy for the single-threaded tool.
    pub rows: Vec<Vec<f64>>,
    /// Labels aligned with `rows`.
    pub labels: Vec<i64>,
    /// Dataflow dataset with the label as the last column.
    pub dist: DistDataset,
}

/// Class-mean separation used for NB datasets (classes overlap slightly).
pub const NB_SEPARATION: f64 = 0.5;

/// Build the Naive Bayes experiment context.
pub fn setup_naive_bayes(n: usize, d: usize, seed: u64) -> Result<NaiveBayesContext> {
    let dataset = VectorDataset::new(n, d, seed);
    let db = Database::new();
    let cols: Vec<String> = (0..d).map(|i| format!("c{i} DOUBLE")).collect();
    db.execute(&format!(
        "CREATE TABLE nbdata ({}, label BIGINT)",
        cols.join(", ")
    ))?;
    let chunks = dataset.labeled_chunks(NB_SEPARATION);
    {
        let table = db.catalog().get_table("nbdata")?;
        let mut guard = table.write();
        for chunk in &chunks {
            guard.insert_chunk(chunk.clone())?;
        }
        guard.commit();
    }
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut df_rows = Vec::with_capacity(n);
    for chunk in &chunks {
        let fcols: Vec<&[f64]> = (0..d)
            .map(|i| chunk.column(i).as_f64())
            .collect::<Result<_>>()?;
        let lcol = chunk.column(d).as_i64()?;
        for r in 0..chunk.len() {
            let feats: Vec<f64> = fcols.iter().map(|c| c[r]).collect();
            let mut with_label = feats.clone();
            with_label.push(lcol[r] as f64);
            df_rows.push(with_label);
            rows.push(feats);
            labels.push(lcol[r]);
        }
    }
    let dist = DistDataset::from_rows(&df_rows, 16);
    Ok(NaiveBayesContext {
        db,
        d,
        rows,
        labels,
        dist,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_context_loads_all_formats() {
        let exp = KMeansExperiment {
            n: 500,
            d: 3,
            k: 2,
            iterations: 2,
        };
        let ctx = setup_kmeans(exp, 1).unwrap();
        assert_eq!(ctx.rows.len(), 500);
        assert_eq!(ctx.dist.count(), 500);
        assert_eq!(ctx.centers.len(), 2);
        let n = ctx
            .db
            .execute("SELECT count(*) FROM data")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n, hylite_common::Value::Int(500));
    }

    #[test]
    fn pagerank_context_loads() {
        let config = LdbcConfig {
            vertices: 100,
            edges: 500,
            triangle_fraction: 0.2,
            seed: 3,
        };
        let ctx = setup_pagerank(&config).unwrap();
        assert!(ctx.src.len() > 500);
        let n = ctx
            .db
            .execute("SELECT count(*) FROM edges")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n, hylite_common::Value::Int(ctx.src.len() as i64));
    }

    #[test]
    fn nb_context_loads() {
        let ctx = setup_naive_bayes(300, 4, 5).unwrap();
        assert_eq!(ctx.rows.len(), 300);
        assert_eq!(ctx.labels.len(), 300);
        assert_eq!(ctx.dist.count(), 300);
        let n = ctx
            .db
            .execute("SELECT count(*) FROM nbdata")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n, hylite_common::Value::Int(300));
    }
}
