//! Text rendering of figure series (paper-style log-scale summaries).

use std::time::Duration;

/// One measured point of a figure series.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// System name (legend entry).
    pub system: String,
    /// X-axis label (e.g. the tuple count).
    pub x: String,
    /// Measured runtime.
    pub runtime: Duration,
}

/// Render a figure as a table: rows = x values, columns = systems.
pub fn render_figure(title: &str, measurements: &[Measurement]) -> String {
    let mut systems: Vec<String> = Vec::new();
    let mut xs: Vec<String> = Vec::new();
    for m in measurements {
        if !systems.contains(&m.system) {
            systems.push(m.system.clone());
        }
        if !xs.contains(&m.x) {
            xs.push(m.x.clone());
        }
    }
    let cell = |x: &str, s: &str| -> String {
        measurements
            .iter()
            .find(|m| m.x == x && m.system == s)
            .map_or_else(
                || "-".to_string(),
                |m| format!("{:.4}", m.runtime.as_secs_f64()),
            )
    };
    let mut widths: Vec<usize> = systems.iter().map(|s| s.len().max(8)).collect();
    for (i, s) in systems.iter().enumerate() {
        for x in &xs {
            widths[i] = widths[i].max(cell(x, s).len());
        }
    }
    let xw = xs.iter().map(String::len).max().unwrap_or(1).max(8);
    let mut out = String::new();
    out.push_str(&format!("== {title} (runtime in seconds)\n"));
    out.push_str(&format!("{:<xw$}", "x"));
    for (i, s) in systems.iter().enumerate() {
        out.push_str(&format!("  {:>w$}", s, w = widths[i]));
    }
    out.push('\n');
    for x in &xs {
        out.push_str(&format!("{x:<xw$}"));
        for (i, s) in systems.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", cell(x, s), w = widths[i]));
        }
        out.push('\n');
    }
    out
}

/// CSV rendering for plotting (`x,system,seconds`).
pub fn render_csv(measurements: &[Measurement]) -> String {
    let mut out = String::from("x,system,seconds\n");
    for m in measurements {
        out.push_str(&format!(
            "{},{},{:.6}\n",
            m.x,
            m.system,
            m.runtime.as_secs_f64()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Measurement> {
        vec![
            Measurement {
                system: "A".into(),
                x: "100".into(),
                runtime: Duration::from_millis(10),
            },
            Measurement {
                system: "B".into(),
                x: "100".into(),
                runtime: Duration::from_millis(20),
            },
            Measurement {
                system: "A".into(),
                x: "200".into(),
                runtime: Duration::from_millis(30),
            },
        ]
    }

    #[test]
    fn table_contains_all_cells() {
        let t = render_figure("demo", &sample());
        assert!(t.contains("demo"));
        assert!(t.contains("0.0100"));
        assert!(t.contains("0.0300"));
        assert!(t.contains('-'), "missing cell rendered as dash");
    }

    #[test]
    fn csv_rows() {
        let csv = render_csv(&sample());
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("100,A,0.010000"));
    }
}
