//! The `concurrent-clients` workload: N wire-protocol connections
//! hammering one `hylite-server` with a mixed statement stream (scans,
//! aggregates, k-Means and PageRank operator invocations), measuring
//! end-to-end (client-observed) latency percentiles and total statement
//! throughput.
//!
//! Unlike the figure benchmarks — which time a single algorithm in
//! isolation — this workload exercises the serving stack as a whole:
//! frame codec, per-connection sessions over one shared database,
//! admission control, and result streaming.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hylite_client::{HyliteClient, RetryPolicy};
use hylite_common::Result;
use hylite_datagen::table1::KMeansExperiment;
use hylite_server::{Server, ServerConfig};

use crate::queries;
use crate::report::{render_figure, Measurement};
use crate::workloads;

/// Configuration of one concurrent-clients run.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Number of concurrent wire connections.
    pub clients: usize,
    /// Statements each client issues (cycling through the mix).
    pub statements_per_client: usize,
    /// Tuples in the `data` table backing scans and k-Means.
    pub tuples: usize,
    /// Dimensions of the k-Means dataset.
    pub dims: usize,
    /// Clusters for the k-Means statements.
    pub clusters: usize,
    /// Edges in the `edges` table backing PageRank.
    pub edges: usize,
    /// `max_active_statements` on the server (0 = one per client).
    pub max_active: usize,
}

impl Default for ConcurrentConfig {
    fn default() -> ConcurrentConfig {
        ConcurrentConfig {
            clients: 32,
            statements_per_client: 12,
            tuples: 20_000,
            dims: 4,
            clusters: 4,
            edges: 20_000,
            max_active: 0,
        }
    }
}

/// One client-observed statement execution.
#[derive(Debug, Clone)]
struct Sample {
    kind: &'static str,
    latency: Duration,
    ok: bool,
}

/// Aggregated outcome of a run.
#[derive(Debug)]
pub struct ConcurrentReport {
    /// Statement mix kinds in display order.
    kinds: Vec<&'static str>,
    samples: Vec<Sample>,
    /// Wall-clock of the whole storm (connect → last disconnect).
    pub wall: Duration,
    /// Total statements executed successfully.
    pub completed: usize,
    /// Statements that returned an error frame.
    pub errors: usize,
    /// Client-side retries (admission rejections, reconnects) absorbed by
    /// the retry policy — `client.retries` in the report.
    pub retries: u64,
    /// Statements captured in `hylite.slow_queries` during the storm (the
    /// server runs with `slow_query_ms = 1`, so most analytics statements
    /// qualify).
    pub slow_queries: u64,
    /// `max(lag_bytes)` over `hylite.replication` at the end of the storm
    /// (0 when no replica is attached, as in the default workload).
    pub repl_lag_bytes: u64,
    /// The config that produced this report.
    pub config: ConcurrentConfig,
}

impl ConcurrentReport {
    /// Statements per second over the whole storm.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Latency percentile (0.0..=1.0) across all successful statements of
    /// `kind`, or all kinds when `kind` is `None`.
    pub fn percentile(&self, kind: Option<&str>, p: f64) -> Option<Duration> {
        let mut lats: Vec<Duration> = self
            .samples
            .iter()
            .filter(|s| s.ok && kind.is_none_or(|k| s.kind == k))
            .map(|s| s.latency)
            .collect();
        if lats.is_empty() {
            return None;
        }
        lats.sort_unstable();
        let idx = ((lats.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        Some(lats[idx])
    }

    /// Render in the harness's figure format: rows = percentiles,
    /// columns = statement kinds, cells = seconds; followed by the
    /// throughput summary line.
    pub fn render(&self) -> String {
        let mut measurements = Vec::new();
        for kind in &self.kinds {
            for (label, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("max", 1.0)] {
                if let Some(latency) = self.percentile(Some(kind), p) {
                    measurements.push(Measurement {
                        system: (*kind).to_string(),
                        x: label.to_string(),
                        runtime: latency,
                    });
                }
            }
        }
        let mut out = render_figure(
            &format!(
                "concurrent-clients: {} connections x {} statements, latency percentiles",
                self.config.clients, self.config.statements_per_client
            ),
            &measurements,
        );
        out.push_str(&format!(
            "throughput: {:.1} statements/s ({} ok, {} errors, client.retries {}, {:.3} s wall)\n",
            self.throughput(),
            self.completed,
            self.errors,
            self.retries,
            self.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "observability: {} slow queries logged, repl lag {} bytes\n",
            self.slow_queries, self.repl_lag_bytes
        ));
        out
    }

    /// The same measurements as CSV (`x,system,seconds`).
    pub fn to_measurements(&self) -> Vec<Measurement> {
        let mut measurements = Vec::new();
        for kind in &self.kinds {
            for (label, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("max", 1.0)] {
                if let Some(latency) = self.percentile(Some(kind), p) {
                    measurements.push(Measurement {
                        system: (*kind).to_string(),
                        x: label.to_string(),
                        runtime: latency,
                    });
                }
            }
        }
        measurements
    }
}

/// The statement mix: name → SQL. Analytics parameters are kept small so
/// one statement is milliseconds, not seconds; concurrency is the point.
fn statement_mix(config: &ConcurrentConfig) -> Vec<(&'static str, String)> {
    vec![
        ("count", "SELECT count(*) FROM data".to_string()),
        (
            "filter-agg",
            "SELECT count(*), sum(d.c0) FROM data d WHERE d.c0 > 0.5".to_string(),
        ),
        ("scan", "SELECT * FROM data d WHERE d.id < 512".to_string()),
        ("kmeans", queries::kmeans_operator(config.dims, 2)),
        ("pagerank", queries::pagerank_operator(0.85, 3)),
    ]
}

/// Load one database with both the k-Means grid tables (`data`,
/// `centers`) and a PageRank `edges` table.
fn setup_database(config: &ConcurrentConfig) -> Result<Arc<hylite_core::Database>> {
    let exp = KMeansExperiment {
        n: config.tuples,
        d: config.dims,
        k: config.clusters,
        iterations: 2,
    };
    let ctx = workloads::setup_kmeans(exp, 42)?;
    let db = ctx.db;
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")?;
    // Deterministic ring-plus-chords graph: every vertex links to its
    // successor and a long-range chord, giving PageRank real structure
    // without pulling in the LDBC generator.
    let vertices = (config.edges / 2).max(8);
    let mut values = Vec::with_capacity(config.edges);
    for v in 0..vertices as i64 {
        values.push(format!("({v}, {})", (v + 1) % vertices as i64));
        values.push(format!("({v}, {})", (v * 7 + 3) % vertices as i64));
    }
    for batch in values.chunks(4096) {
        db.execute(&format!("INSERT INTO edges VALUES {}", batch.join(",")))?;
    }
    Ok(Arc::new(db))
}

/// Run the storm: start a server on an ephemeral port, connect
/// `config.clients` wire clients, and let each execute
/// `config.statements_per_client` statements round-robin through the mix
/// (offset by client id so kinds interleave across connections).
pub fn run(config: ConcurrentConfig) -> Result<ConcurrentReport> {
    let db = setup_database(&config)?;
    let server_config = ServerConfig {
        max_connections: config.clients + 8,
        max_active_statements: if config.max_active == 0 {
            config.clients.max(1)
        } else {
            config.max_active
        },
        statement_queue_depth: config.clients * 2,
        queue_wait: Duration::from_secs(60),
        // Log (nearly) every statement so the report can count what the
        // slow-query ring captured under load.
        slow_query_ms: 1,
        ..ServerConfig::ephemeral()
    };
    let handle = Server::start(server_config, db)?;
    let addr = handle.local_addr();
    let mix: Arc<Vec<(&'static str, String)>> = Arc::new(statement_mix(&config));

    let started = Instant::now();
    let (tx, rx) = mpsc::channel::<Sample>();
    let mut workers = Vec::new();
    for client_id in 0..config.clients {
        let tx = tx.clone();
        let mix = Arc::clone(&mix);
        let statements = config.statements_per_client;
        workers.push(std::thread::spawn(move || -> Result<u64> {
            let policy = RetryPolicy::default();
            let mut client = HyliteClient::connect_with_retry(addr, &policy)?;
            for i in 0..statements {
                let (kind, sql) = &mix[(client_id + i) % mix.len()];
                let t = Instant::now();
                let ok = client.query_with_retry(sql, &policy).is_ok();
                let _ = tx.send(Sample {
                    kind,
                    latency: t.elapsed(),
                    ok,
                });
            }
            let retries = client.retries();
            client.close()?;
            Ok(retries)
        }));
    }
    drop(tx);
    let samples: Vec<Sample> = rx.iter().collect();
    let mut retries = 0u64;
    for w in workers {
        retries += w
            .join()
            .map_err(|_| hylite_common::HyError::Internal("client thread panicked".into()))??;
    }
    let wall = started.elapsed();
    // Observability columns: ask the server itself, over the same wire
    // protocol, what its system views saw during the storm.
    let (slow_queries, repl_lag_bytes) = observe(addr);
    handle.shutdown();

    let completed = samples.iter().filter(|s| s.ok).count();
    let errors = samples.len() - completed;
    Ok(ConcurrentReport {
        kinds: mix.iter().map(|(k, _)| *k).collect(),
        samples,
        wall,
        completed,
        errors,
        retries,
        slow_queries,
        repl_lag_bytes,
        config,
    })
}

/// Query the post-storm `hylite.slow_queries` count and the maximum
/// `hylite.replication` lag. Best-effort: a failure reports zeros rather
/// than failing the benchmark.
fn observe(addr: std::net::SocketAddr) -> (u64, u64) {
    let as_u64 = |v: hylite_common::Value| match v {
        hylite_common::Value::Int(i) => i.max(0) as u64,
        _ => 0,
    };
    let Ok(mut client) = HyliteClient::connect(addr) else {
        return (0, 0);
    };
    let slow = client
        .query("SELECT count(*) FROM hylite.slow_queries")
        .ok()
        .and_then(|r| r.value(0, 0).ok())
        .map(&as_u64)
        .unwrap_or(0);
    let lag = client
        .query("SELECT max(r.lag_bytes) FROM hylite.replication r")
        .ok()
        .and_then(|r| r.value(0, 0).ok())
        .map(&as_u64)
        .unwrap_or(0);
    let _ = client.close();
    (slow, lag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_completes_without_errors() {
        let report = run(ConcurrentConfig {
            clients: 4,
            statements_per_client: 5,
            tuples: 500,
            dims: 2,
            clusters: 2,
            edges: 200,
            max_active: 2,
        })
        .expect("storm");
        assert_eq!(report.completed, 20, "errors: {}", report.errors);
        assert_eq!(report.errors, 0);
        assert!(report.throughput() > 0.0);
        let rendered = report.render();
        assert!(rendered.contains("p95"), "{rendered}");
        assert!(rendered.contains("kmeans"), "{rendered}");
        assert!(rendered.contains("throughput"), "{rendered}");
        assert!(rendered.contains("observability:"), "{rendered}");
        // No replica is attached, so the lag column reports zero.
        assert_eq!(report.repl_lag_bytes, 0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let report = run(ConcurrentConfig {
            clients: 2,
            statements_per_client: 5,
            tuples: 200,
            dims: 2,
            clusters: 2,
            edges: 64,
            max_active: 0,
        })
        .expect("storm");
        let p50 = report.percentile(None, 0.50).unwrap();
        let p99 = report.percentile(None, 0.99).unwrap();
        assert!(p50 <= p99);
        assert!(report.percentile(Some("no-such-kind"), 0.5).is_none());
    }
}
