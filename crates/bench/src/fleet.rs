//! Router-fronted fleet variant of the `concurrent-clients` workload:
//! one durable primary plus N WAL-streaming replicas, with every client
//! speaking through [`HyliteRouter`] instead of a direct connection.
//!
//! The measurement is a **read-throughput scaling curve**: the same
//! read-only statement mix is driven first directly against the primary
//! (the single-node baseline), then through the router against growing
//! slices of the replica fleet (1 primary + 1 replica, + 2, ...). All
//! storms hit the *same* running fleet and dataset, so the only variable
//! is how many nodes serve reads.

use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hylite_client::{Consistency, HyliteClient, HyliteRouter, RouterConfig, RouterStats};
use hylite_common::faultfs::{FaultVfs, Vfs};
use hylite_common::{HyError, Result};
use hylite_core::{Database, DurabilityOptions, ReplRole};
use hylite_datagen::VectorDataset;
use hylite_server::{Replica, ReplicaConfig, ReplicaHandle, Server, ServerConfig, ServerHandle};

use crate::concurrent::ConcurrentConfig;
use crate::queries;

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Client/statement/dataset sizing, shared with the single-node
    /// workload.
    pub base: ConcurrentConfig,
    /// Read replicas to attach to the primary.
    pub replicas: usize,
    /// Staleness contract of the routed storms.
    pub consistency: Consistency,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            base: ConcurrentConfig::default(),
            replicas: 3,
            consistency: Consistency::Session,
        }
    }
}

impl FleetConfig {
    /// A CI-sized configuration: seconds, not minutes.
    pub fn smoke() -> FleetConfig {
        FleetConfig {
            base: ConcurrentConfig {
                clients: 4,
                statements_per_client: 6,
                tuples: 500,
                dims: 2,
                clusters: 2,
                edges: 200,
                max_active: 0,
            },
            replicas: 2,
            consistency: Consistency::Session,
        }
    }
}

/// Throughput of one storm.
#[derive(Debug, Clone, Copy)]
pub struct StormOutcome {
    /// Statements that completed successfully.
    pub completed: usize,
    /// Statements that returned an error.
    pub errors: usize,
    /// Wall-clock of the storm.
    pub wall: Duration,
}

impl StormOutcome {
    /// Statements per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// One point of the scaling curve: the routed storm against the first
/// `replicas_used` replicas.
#[derive(Debug, Clone, Copy)]
pub struct FleetPoint {
    /// Replicas in the router's rotation for this storm.
    pub replicas_used: usize,
    /// Throughput outcome.
    pub outcome: StormOutcome,
    /// Aggregated router counters across all clients of the storm.
    pub stats: RouterStats,
}

impl FleetPoint {
    /// Fraction of reads served by replicas (0.0 when everything fell
    /// back to the primary).
    pub fn replica_share(&self) -> f64 {
        let total = self.stats.reads_replica + self.stats.reads_primary;
        if total == 0 {
            return 0.0;
        }
        self.stats.reads_replica as f64 / total as f64
    }
}

/// The scaling curve of one fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// The configuration that produced it.
    pub config: FleetConfig,
    /// Single-node baseline: direct connections to the primary, no
    /// router.
    pub direct: StormOutcome,
    /// Routed storms with 1, 2, ... replicas in rotation.
    pub points: Vec<FleetPoint>,
}

impl FleetReport {
    /// Throughput ratio of the largest routed storm over the single-node
    /// baseline.
    pub fn peak_speedup(&self) -> f64 {
        self.points
            .last()
            .map(|p| p.outcome.throughput() / self.direct.throughput().max(1e-9))
            .unwrap_or(0.0)
    }

    /// Render the curve as the harness's usual text block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "concurrent-clients fleet: {} connections x {} statements, read-only mix, {} consistency\n",
            self.config.base.clients, self.config.base.statements_per_client, self.config.consistency,
        );
        out.push_str(&format!(
            "direct (primary only, no router):      {:8.1} statements/s ({} ok, {} errors)\n",
            self.direct.throughput(),
            self.direct.completed,
            self.direct.errors
        ));
        for p in &self.points {
            out.push_str(&format!(
                "routed 1 primary + {} replica{}:          {:8.1} statements/s \
                 ({} ok, {} errors, {:.2}x vs direct, {:.0}% replica reads)\n",
                p.replicas_used,
                if p.replicas_used == 1 { " " } else { "s" },
                p.outcome.throughput(),
                p.outcome.completed,
                p.outcome.errors,
                p.outcome.throughput() / self.direct.throughput().max(1e-9),
                p.replica_share() * 100.0
            ));
        }
        out
    }
}

/// Load the read-mix dataset (`data`, `centers`, `edges`) through plain
/// SQL so every row goes through the WAL and replicates.
fn load_dataset(db: &Database, config: &ConcurrentConfig) -> Result<()> {
    let dataset = VectorDataset::new(config.tuples, config.dims, 42);
    let cols: Vec<String> = (0..config.dims).map(|i| format!("c{i} DOUBLE")).collect();
    db.execute(&format!(
        "CREATE TABLE data (id BIGINT, {})",
        cols.join(", ")
    ))?;
    let mut next_id = 0i64;
    for chunk in dataset.chunks() {
        let col_slices: Vec<&[f64]> = (0..config.dims)
            .map(|i| chunk.column(i).as_f64())
            .collect::<Result<_>>()?;
        let mut values = Vec::with_capacity(chunk.len());
        for r in 0..chunk.len() {
            let nums: Vec<String> = col_slices.iter().map(|c| format!("{:?}", c[r])).collect();
            values.push(format!("({}, {})", next_id, nums.join(", ")));
            next_id += 1;
        }
        for batch in values.chunks(1024) {
            db.execute(&format!("INSERT INTO data VALUES {}", batch.join(",")))?;
        }
    }
    db.execute(&format!(
        "CREATE TABLE centers (cid BIGINT, {})",
        cols.join(", ")
    ))?;
    let centers = dataset.initial_centers(config.clusters);
    let rows: Vec<String> = centers
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let nums: Vec<String> = c.iter().map(|v| format!("{v:?}")).collect();
            format!("({i}, {})", nums.join(", "))
        })
        .collect();
    db.execute(&format!("INSERT INTO centers VALUES {}", rows.join(",")))?;
    db.execute("CREATE TABLE edges (src BIGINT, dest BIGINT)")?;
    let vertices = (config.edges / 2).max(8);
    let mut values = Vec::with_capacity(config.edges);
    for v in 0..vertices as i64 {
        values.push(format!("({v}, {})", (v + 1) % vertices as i64));
        values.push(format!("({v}, {})", (v * 7 + 3) % vertices as i64));
    }
    for batch in values.chunks(1024) {
        db.execute(&format!("INSERT INTO edges VALUES {}", batch.join(",")))?;
    }
    Ok(())
}

fn statement_mix(config: &ConcurrentConfig) -> Vec<(&'static str, String)> {
    vec![
        ("count", "SELECT count(*) FROM data".to_string()),
        (
            "filter-agg",
            "SELECT count(*), sum(d.c0) FROM data d WHERE d.c0 > 0.5".to_string(),
        ),
        ("scan", "SELECT * FROM data d WHERE d.id < 512".to_string()),
        ("kmeans", queries::kmeans_operator(config.dims, 2)),
        ("pagerank", queries::pagerank_operator(0.85, 3)),
    ]
}

struct Fleet {
    primary: ServerHandle,
    replicas: Vec<ReplicaHandle>,
}

impl Fleet {
    fn replica_addrs(&self) -> Vec<String> {
        self.replicas
            .iter()
            .map(|r| r.local_addr().to_string())
            .collect()
    }

    fn shutdown(self) {
        for r in self.replicas {
            r.shutdown();
        }
        self.primary.shutdown();
    }
}

/// Start 1 durable primary + N replicas on FaultVfs-backed storage, load
/// the dataset, and wait until every replica has applied it.
fn start_fleet(config: &FleetConfig) -> Result<Fleet> {
    let data_dir = PathBuf::from("data");
    let primary_vfs = FaultVfs::new();
    let primary_db = Arc::new(Database::open_with(
        Arc::new(primary_vfs) as Arc<dyn Vfs>,
        &data_dir,
        DurabilityOptions::default(),
    )?);
    load_dataset(&primary_db, &config.base)?;

    let server_config = ServerConfig {
        max_connections: config.base.clients * 2 + 16,
        max_active_statements: config.base.clients.max(1),
        statement_queue_depth: config.base.clients * 2,
        queue_wait: Duration::from_secs(60),
        repl_poll_interval: Duration::from_millis(1),
        ..ServerConfig::ephemeral()
    };
    let primary = Server::start(server_config.clone(), Arc::clone(&primary_db))?;
    let primary_addr = primary.local_addr().to_string();

    let mut replicas = Vec::new();
    for _ in 0..config.replicas {
        let vfs = FaultVfs::new();
        let db = Arc::new(Database::open_with(
            Arc::new(vfs) as Arc<dyn Vfs>,
            &data_dir,
            DurabilityOptions {
                role: ReplRole::Replica,
                ..DurabilityOptions::default()
            },
        )?);
        replicas.push(Replica::start(
            db,
            server_config.clone(),
            ReplicaConfig::new(&primary_addr),
        )?);
    }

    // Catch-up barrier: the primary's durable LSN rides on every
    // CommandComplete; poll each replica until its applied LSN reaches
    // it, so the storms below measure serving, not bootstrap.
    let mut client = HyliteClient::connect(primary.local_addr())?;
    let target_lsn = client.query("SELECT 1")?.lsn;
    client.close()?;
    let deadline = Instant::now() + Duration::from_secs(60);
    for r in &replicas {
        loop {
            if let Ok(mut c) = HyliteClient::connect(r.local_addr()) {
                let caught_up = c.query("SELECT 1").map(|r| r.lsn >= target_lsn);
                let _ = c.close();
                if caught_up.unwrap_or(false) {
                    break;
                }
            }
            if Instant::now() > deadline {
                return Err(HyError::Internal(format!(
                    "replica {} did not catch up to lsn {target_lsn} within 60s",
                    r.local_addr()
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    Ok(Fleet { primary, replicas })
}

/// Run the full scaling curve: direct baseline, then routed storms over
/// growing replica subsets.
pub fn run_fleet(config: FleetConfig) -> Result<FleetReport> {
    let fleet = start_fleet(&config)?;
    let primary_addr = fleet.primary.local_addr().to_string();
    let replica_addrs = fleet.replica_addrs();

    // Baseline: direct connections, no router.
    let (direct, _) = storm_direct(&config.base, &primary_addr)?;

    let mut points = Vec::new();
    for used in 1..=replica_addrs.len() {
        let (outcome, stats) = storm_routed(
            &config.base,
            &primary_addr,
            &replica_addrs[..used],
            config.consistency,
        )?;
        points.push(FleetPoint {
            replicas_used: used,
            outcome,
            stats,
        });
    }
    fleet.shutdown();
    Ok(FleetReport {
        config,
        direct,
        points,
    })
}

fn storm_direct(config: &ConcurrentConfig, addr: &str) -> Result<(StormOutcome, ())> {
    let mix = Arc::new(statement_mix(config));
    let started = Instant::now();
    let (tx, rx) = mpsc::channel::<bool>();
    let mut workers = Vec::new();
    for client_id in 0..config.clients {
        let tx = tx.clone();
        let mix = Arc::clone(&mix);
        let addr = addr.to_string();
        let statements = config.statements_per_client;
        workers.push(std::thread::spawn(move || -> Result<()> {
            let policy = hylite_client::RetryPolicy::default();
            let mut client = HyliteClient::connect_with_retry(addr.as_str(), &policy)?;
            for i in 0..statements {
                let (_kind, sql) = &mix[(client_id + i) % mix.len()];
                let ok = client.query_with_retry(sql, &policy).is_ok();
                let _ = tx.send(ok);
            }
            client.close()
        }));
    }
    drop(tx);
    let oks: Vec<bool> = rx.iter().collect();
    for w in workers {
        w.join()
            .map_err(|_| HyError::Internal("direct client thread panicked".into()))??;
    }
    let completed = oks.iter().filter(|ok| **ok).count();
    Ok((
        StormOutcome {
            completed,
            errors: oks.len() - completed,
            wall: started.elapsed(),
        },
        (),
    ))
}

fn storm_routed(
    config: &ConcurrentConfig,
    primary_addr: &str,
    replica_addrs: &[String],
    consistency: Consistency,
) -> Result<(StormOutcome, RouterStats)> {
    let mix = Arc::new(statement_mix(config));
    let started = Instant::now();
    let (tx, rx) = mpsc::channel::<bool>();
    let (stats_tx, stats_rx) = mpsc::channel::<RouterStats>();
    let mut workers = Vec::new();
    for client_id in 0..config.clients {
        let tx = tx.clone();
        let stats_tx = stats_tx.clone();
        let mix = Arc::clone(&mix);
        let statements = config.statements_per_client;
        let router_config = RouterConfig::new(primary_addr)
            .replicas(replica_addrs.iter().cloned())
            .consistency(consistency);
        workers.push(std::thread::spawn(move || -> Result<()> {
            let mut router = HyliteRouter::connect(router_config)?;
            for i in 0..statements {
                let (_kind, sql) = &mix[(client_id + i) % mix.len()];
                let ok = router.query(sql).is_ok();
                let _ = tx.send(ok);
            }
            let _ = stats_tx.send(*router.stats());
            router.close();
            Ok(())
        }));
    }
    drop(tx);
    drop(stats_tx);
    let oks: Vec<bool> = rx.iter().collect();
    for w in workers {
        w.join()
            .map_err(|_| HyError::Internal("routed client thread panicked".into()))??;
    }
    let mut stats = RouterStats::default();
    for s in stats_rx.iter() {
        stats.writes += s.writes;
        stats.reads_replica += s.reads_replica;
        stats.reads_primary += s.reads_primary;
        stats.primary_fallbacks += s.primary_fallbacks;
        stats.probes += s.probes;
        stats.ejections += s.ejections;
        stats.failovers += s.failovers;
    }
    let completed = oks.iter().filter(|ok| **ok).count();
    Ok((
        StormOutcome {
            completed,
            errors: oks.len() - completed,
            wall: started.elapsed(),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_scales_reads_over_replicas() {
        let report = run_fleet(FleetConfig::smoke()).expect("fleet run");
        assert_eq!(report.points.len(), 2);
        let expected = report.config.base.clients * report.config.base.statements_per_client;
        assert_eq!(report.direct.completed, expected);
        for p in &report.points {
            assert_eq!(
                p.outcome.completed, expected,
                "errors: {}",
                p.outcome.errors
            );
            assert!(
                p.stats.reads_replica > 0,
                "replicas served no reads: {:?}",
                p.stats
            );
            assert_eq!(p.stats.failovers, 0);
        }
        let rendered = report.render();
        assert!(rendered.contains("direct"), "{rendered}");
        assert!(rendered.contains("replica reads"), "{rendered}");
    }
}
