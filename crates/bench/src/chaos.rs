//! Seeded fleet chaos soak: a router-fronted 1-primary/2-replica fleet
//! driven through combined disk ([`FaultVfs`]) × network ([`FaultNet`])
//! fault schedules, with the system invariants checked every round:
//!
//! 1. **No acknowledged write lost** — every value the router acked is
//!    present (and nothing else: a *rejected* write must never surface
//!    later as a phantom row).
//! 2. **No split-brain** — at every settle point exactly one live node
//!    accepts writes; every other node refuses, naming the primary.
//! 3. **Read-your-own-writes** — a session-consistency read through the
//!    router sees everything that session was acked, through lag,
//!    partitions, disk pressure, and failover.
//! 4. **Byte-identical convergence** — once faults heal, every live
//!    node renders exactly the same table.
//!
//! The whole schedule derives from one SplitMix64 seed: a failing run
//! reproduces exactly by re-running with the seed it printed. Both
//! filesystems are in-memory fault VFS instances and every socket is a
//! localhost TCP connection wrapped by the shared [`FaultNet`], so the
//! soak is hermetic — no real disk, no real network flakiness.
//!
//! ```sh
//! cargo run --release -p hylite-bench --bin chaos-soak -- --rounds 12
//! cargo run --release -p hylite-bench --bin chaos-soak -- --seed 0x5EED50AC
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hylite_client::{Consistency, HyliteClient, HyliteRouter, RetryPolicy, RouterConfig};
use hylite_common::faultfs::{FaultVfs, Vfs};
use hylite_common::faultnet::{
    FaultNet, NP_CLIENT_CONNECT, NP_REPL_APPLY, NP_REPL_STREAM, NP_SERVER_ACCEPT,
};
use hylite_common::wire::ErrorCode;
use hylite_common::{HyError, NetHandle, Result, Value};
use hylite_core::{restore_backup, Database, DurabilityOptions, ReplRole};
use hylite_server::{Replica, ReplicaConfig, ReplicaHandle, Server, ServerConfig, ServerHandle};

/// One soak run's knobs.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the whole fault schedule; a failing seed reproduces.
    pub seed: u64,
    /// Fault rounds before the (optional) failover finale.
    pub rounds: usize,
    /// Router writes attempted per round.
    pub writes_per_round: usize,
    /// End the soak by killing the primary and requiring the router to
    /// promote a replica without losing the session's writes.
    pub failover_finale: bool,
    /// Take an online backup of the primary mid-soak (with a concurrent
    /// writer racing the cut), keep writing, checkpoint away the live
    /// WAL, then point-in-time restore from backup + archive and verify
    /// the restored table exactly.
    pub backup_round: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0x5EED_50AC,
            rounds: 6,
            writes_per_round: 8,
            failover_finale: true,
            backup_round: true,
        }
    }
}

impl ChaosConfig {
    /// CI-sized: the acceptance floor of six rounds, few writes each.
    pub fn smoke() -> ChaosConfig {
        ChaosConfig {
            writes_per_round: 4,
            ..ChaosConfig::default()
        }
    }
}

/// What one round injected and how the writes fared.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Round index (0-based).
    pub round: usize,
    /// Human-readable description of the injected fault.
    pub fault: &'static str,
    /// Writes the router acknowledged.
    pub acked: usize,
    /// Writes rejected with a typed error (never half-applied).
    pub rejected: usize,
}

/// The soak's summary; returned only when every invariant held.
#[derive(Debug)]
pub struct ChaosReport {
    /// The seed that drove the schedule.
    pub seed: u64,
    /// Per-round outcomes.
    pub rounds: Vec<RoundOutcome>,
    /// Rows in table `t` at the end (equals total acked writes + 3 seed
    /// rows + one split-brain probe row per settle point).
    pub total_rows: usize,
    /// Failovers the router performed (≥ 1 with the finale enabled).
    pub failovers: u64,
    /// Replica stream re-establishments observed across the fleet.
    pub reconnects: u64,
}

/// SplitMix64 — the repo's standard deterministic schedule generator.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn violation(seed: u64, msg: impl Into<String>) -> HyError {
    HyError::Execution(format!(
        "chaos invariant violated (reproduce with --seed {seed:#x}): {}",
        msg.into()
    ))
}

fn data_dir() -> PathBuf {
    PathBuf::from("data")
}

fn open_node(fault: &FaultVfs, role: ReplRole) -> Result<Arc<Database>> {
    Ok(Arc::new(Database::open_with(
        Arc::new(fault.clone()) as Arc<dyn Vfs>,
        &data_dir(),
        DurabilityOptions {
            role,
            // The primary archives its WAL so the backup round can
            // point-in-time restore past the live WAL's truncation.
            archive_dir: match role {
                ReplRole::Primary => Some(PathBuf::from("archive")),
                _ => None,
            },
            ..DurabilityOptions::default()
        },
    )?))
}

fn server_config(net: &NetHandle) -> ServerConfig {
    ServerConfig {
        repl_poll_interval: Duration::from_millis(1),
        drain_timeout: Duration::from_millis(500),
        net: net.clone(),
        ..ServerConfig::ephemeral()
    }
}

fn replica_config(primary_addr: &str, net: &NetHandle, seed: u64) -> ReplicaConfig {
    let mut config = ReplicaConfig::new(primary_addr);
    config.retry = RetryPolicy {
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        ..RetryPolicy::default()
    };
    config.backoff_seed = seed;
    config.net = net.clone();
    config
}

/// Canonical rendering of table `t`; byte-identical on two nodes iff
/// they hold exactly the same committed rows.
fn dump(db: &Database) -> String {
    match db.execute("SELECT x FROM t ORDER BY x") {
        Ok(r) => r.to_table_string(),
        Err(e) => format!("<unavailable: {e}>"),
    }
}

fn wait_until(
    seed: u64,
    what: &str,
    timeout: Duration,
    mut cond: impl FnMut() -> bool,
) -> Result<()> {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Err(violation(seed, format!("timed out waiting for {what}")))
}

/// The running fleet: in-process databases (for convergence inspection)
/// fronted by real TCP servers and one shared fault-injecting network.
struct Fleet {
    net: FaultNet,
    handle: NetHandle,
    primary_fault: FaultVfs,
    primary_db: Arc<Database>,
    primary: Option<ServerHandle>,
    replicas: Vec<(Arc<Database>, ReplicaHandle)>,
    router: HyliteRouter,
}

impl Fleet {
    fn start(config: &ChaosConfig) -> Result<Fleet> {
        let net = FaultNet::new(config.seed);
        let handle = NetHandle::new(net.clone());

        let primary_fault = FaultVfs::new();
        let primary_db = open_node(&primary_fault, ReplRole::Primary)?;
        primary_db.execute("CREATE TABLE t (x BIGINT)")?;
        for v in 1..=3 {
            primary_db.execute(&format!("INSERT INTO t VALUES ({v})"))?;
        }
        let primary = Server::start(server_config(&handle), Arc::clone(&primary_db))?;
        let primary_addr = primary.local_addr().to_string();

        let mut replicas = Vec::new();
        for i in 0..2 {
            let db = open_node(&FaultVfs::new(), ReplRole::Replica)?;
            let replica = Replica::start(
                Arc::clone(&db),
                server_config(&handle),
                replica_config(&primary_addr, &handle, config.seed ^ i),
            )?;
            replicas.push((db, replica));
        }

        let router = HyliteRouter::connect(
            RouterConfig::new(&primary_addr)
                .replicas(
                    replicas
                        .iter()
                        .map(|(_, r)| r.local_addr().to_string())
                        .collect::<Vec<_>>(),
                )
                .consistency(Consistency::Session)
                .retry(RetryPolicy {
                    max_attempts: 6,
                    initial_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(50),
                    deadline: Duration::from_secs(5),
                })
                .probe_interval(Duration::from_millis(1))
                .net(handle.clone()),
        )?;

        Ok(Fleet {
            net,
            handle,
            primary_fault,
            primary_db,
            primary: Some(primary),
            replicas,
            router,
        })
    }

    /// Every live node's wire address, current primary first.
    fn live_addrs(&self) -> Vec<std::net::SocketAddr> {
        let mut addrs = Vec::new();
        if let Some(primary) = &self.primary {
            addrs.push(primary.local_addr());
        }
        for (_, replica) in &self.replicas {
            addrs.push(replica.local_addr());
        }
        addrs
    }

    /// Every live node, current primary first.
    fn live_dbs(&self) -> Vec<&Arc<Database>> {
        let mut dbs = Vec::new();
        if self.primary.is_some() {
            dbs.push(&self.primary_db);
        }
        for (db, _) in &self.replicas {
            dbs.push(db);
        }
        dbs
    }

    fn shutdown(mut self) {
        self.router.close();
        for (_, replica) in self.replicas.drain(..) {
            replica.shutdown();
        }
        if let Some(primary) = self.primary.take() {
            primary.shutdown();
        }
    }
}

/// The soak's write/ledger driver plus the invariant checks.
struct Soak {
    seed: u64,
    rng: u64,
    next_value: i64,
    /// Every value some node acknowledged, in ack order. The final
    /// table must hold exactly these (plus the 3 seed rows).
    ledger: Vec<i64>,
}

impl Soak {
    fn ledger_sum(&self) -> i64 {
        6 + self.ledger.iter().sum::<i64>()
    }

    fn ledger_count(&self) -> i64 {
        3 + self.ledger.len() as i64
    }

    fn fresh_value(&mut self) -> i64 {
        self.next_value += 1;
        self.next_value
    }

    /// One router write that must eventually be acknowledged (faults at
    /// connect points are retried; a statement either fails cleanly
    /// before commit or commits and is acked, never in between).
    fn write_until_acked(&mut self, fleet: &mut Fleet) -> Result<()> {
        let v = self.fresh_value();
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match fleet.router.query(&format!("INSERT INTO t VALUES ({v})")) {
                Ok(_) => {
                    self.ledger.push(v);
                    return Ok(());
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    return Err(violation(
                        self.seed,
                        format!("write of {v} never acknowledged: {e}"),
                    ))
                }
            }
        }
    }

    /// Read-your-own-writes through the router: the session must see
    /// exactly its acked values — not one fewer (lost ack) and not one
    /// more (phantom from a rejected write).
    fn check_session_read(&mut self, fleet: &mut Fleet) -> Result<()> {
        let r = fleet.router.query("SELECT count(*), sum(x) FROM t")?;
        let count = match r.value(0, 0)? {
            Value::Int(n) => n,
            other => return Err(violation(self.seed, format!("count returned {other:?}"))),
        };
        let sum = match r.value(0, 1)? {
            Value::Int(n) => n,
            other => return Err(violation(self.seed, format!("sum returned {other:?}"))),
        };
        if count != self.ledger_count() || sum != self.ledger_sum() {
            return Err(violation(
                self.seed,
                format!(
                    "session read saw count={count} sum={sum}, \
                     ledger says count={} sum={}",
                    self.ledger_count(),
                    self.ledger_sum()
                ),
            ));
        }
        Ok(())
    }

    /// Split-brain probe: a write straight at every live node's wire
    /// address (bypassing the router). Exactly one node may accept —
    /// its value joins the ledger — and every other node must refuse
    /// with the typed read-only code naming a primary.
    fn check_single_writable(&mut self, fleet: &Fleet) -> Result<()> {
        let mut accepted = 0;
        for addr in fleet.live_addrs() {
            let v = self.fresh_value();
            let mut client = HyliteClient::connect_via(&fleet.handle, addr)
                .map_err(|e| violation(self.seed, format!("probe connect to {addr}: {e}")))?;
            let result = client.query(&format!("INSERT INTO t VALUES ({v})"));
            let _ = client.close();
            match result {
                Ok(_) => {
                    accepted += 1;
                    self.ledger.push(v);
                }
                Err(e) if ErrorCode::from_error(&e) == ErrorCode::ReadOnlyReplica => {}
                Err(e) => {
                    return Err(violation(
                        self.seed,
                        format!("probe write to {addr} refused with non-read-only error: {e}"),
                    ))
                }
            }
        }
        if accepted != 1 {
            return Err(violation(
                self.seed,
                format!("{accepted} nodes accepted a direct write (want exactly 1)"),
            ));
        }
        Ok(())
    }

    /// After healing: every live node must render table `t` byte-
    /// identically.
    fn check_convergence(&self, fleet: &Fleet) -> Result<()> {
        let dbs = fleet.live_dbs();
        let reference = Arc::clone(dbs[0]);
        let others: Vec<Arc<Database>> = dbs[1..].iter().map(|db| Arc::clone(db)).collect();
        wait_until(
            self.seed,
            "byte-identical convergence across the fleet",
            Duration::from_secs(20),
            || {
                let want = dump(&reference);
                others.iter().all(|db| dump(db) == want)
            },
        )
    }
}

/// Run the full seeded soak. `Ok` means every invariant held every
/// round; `Err` carries the violated invariant and the reproducing seed.
pub fn run_soak(config: &ChaosConfig) -> Result<ChaosReport> {
    let mut fleet = Fleet::start(config)?;
    let mut soak = Soak {
        seed: config.seed,
        rng: config.seed,
        next_value: 100,
        ledger: Vec::new(),
    };

    // Both replicas must finish bootstrapping before faults start, so
    // every round's convergence check exercises catch-up, not initial
    // seeding.
    soak.check_convergence(&fleet)?;

    let mut rounds = Vec::new();
    for round in 0..config.rounds {
        soak.rng = splitmix64(soak.rng);
        let outcome = run_round(round, soak.rng, config, &mut fleet, &mut soak)?;

        // Settle: heal everything, then hold the invariants.
        fleet.net.heal_all();
        fleet.primary_fault.set_disk_full(false);
        soak.check_session_read(&mut fleet)?;
        soak.check_single_writable(&fleet)?;
        soak.check_convergence(&fleet)?;
        rounds.push(outcome);
    }

    let mut next_round = config.rounds;
    if config.backup_round {
        let outcome = run_backup_restore_round(next_round, config, &mut fleet, &mut soak)?;
        next_round += 1;
        soak.check_session_read(&mut fleet)?;
        soak.check_single_writable(&fleet)?;
        soak.check_convergence(&fleet)?;
        rounds.push(outcome);
    }

    if config.failover_finale {
        let outcome = run_failover_finale(next_round, config, &mut fleet, &mut soak)?;
        rounds.push(outcome);
    }

    let failovers = fleet.router.stats().failovers;
    let reconnects = fleet
        .replicas
        .iter()
        .map(|(db, _)| db.metrics().counter("repl.reconnects").get())
        .sum();
    let total_rows = soak.ledger_count() as usize;
    fleet.shutdown();

    Ok(ChaosReport {
        seed: config.seed,
        rounds,
        total_rows,
        failovers,
        reconnects,
    })
}

/// One fault round: inject per the seeded schedule, drive writes, check
/// reads stay correct while the fault is live.
fn run_round(
    round: usize,
    rng: u64,
    config: &ChaosConfig,
    fleet: &mut Fleet,
    soak: &mut Soak,
) -> Result<RoundOutcome> {
    let mut acked = 0;
    let mut rejected = 0;

    // Round 0 always soaks the disk-pressure degraded mode (the marquee
    // robustness path); later rounds draw from the seeded schedule.
    let kind = if round == 0 { 0 } else { rng % 6 };
    let fault = match kind {
        0 => {
            // Disk pressure on the primary: every write must be rejected
            // with the typed retryable DiskFull (5005), reads must keep
            // serving, and once space frees the server's background
            // probe must resume writes without a restart.
            fleet.primary_fault.set_disk_full(true);
            for _ in 0..config.writes_per_round {
                let v = soak.fresh_value();
                match fleet.router.query(&format!("INSERT INTO t VALUES ({v})")) {
                    Ok(_) => {
                        return Err(violation(
                            soak.seed,
                            "write acknowledged while the primary's disk was full",
                        ))
                    }
                    Err(e) => {
                        if ErrorCode::from_error(&e) != ErrorCode::DiskFull {
                            return Err(violation(
                                soak.seed,
                                format!("disk-full write rejected with wrong code: {e}"),
                            ));
                        }
                        rejected += 1;
                    }
                }
            }
            soak.check_session_read(fleet)?; // reads degrade gracefully
            fleet.primary_fault.set_disk_full(false);
            // The server's disk-pressure probe re-enables writes; the
            // settle-phase write below proves it (no restart happened).
            soak.write_until_acked(fleet)?;
            acked += 1;
            "disk-full primary, probe-resumed"
        }
        1 => {
            fleet.net.refuse_connects(NP_CLIENT_CONNECT, 2);
            fleet.net.refuse_connects(NP_SERVER_ACCEPT, 1);
            "connect refusal at client + accept"
        }
        2 => {
            fleet.net.reset_after(NP_REPL_STREAM, 64 + rng % 512);
            "mid-frame reset of a replication stream"
        }
        3 => {
            fleet.net.partition(NP_REPL_APPLY, true, true);
            "full partition of the replica apply loop"
        }
        4 => {
            fleet.net.latency(
                NP_REPL_STREAM,
                Duration::from_millis(1),
                Duration::from_millis(1 + rng % 3),
            );
            "latency + jitter on the replication stream"
        }
        _ => {
            fleet.net.slow_reads(NP_REPL_APPLY, 3);
            fleet.net.short_writes(NP_REPL_STREAM, 5);
            "slow reads + short writes on replication"
        }
    };

    // Drive the round's writes with the fault still live. Session
    // consistency must hold after every single ack.
    while acked < config.writes_per_round {
        soak.write_until_acked(fleet)?;
        acked += 1;
        soak.check_session_read(fleet)?;
    }

    Ok(RoundOutcome {
        round,
        fault,
        acked,
        rejected,
    })
}

/// The finale: kill the primary, require the router to promote a
/// replica and keep the session's writes readable, then hold the
/// split-brain and convergence invariants on the surviving pair.
fn run_failover_finale(
    round: usize,
    config: &ChaosConfig,
    fleet: &mut Fleet,
    soak: &mut Soak,
) -> Result<RoundOutcome> {
    // The finale must start from a converged fleet (the promoted replica
    // must hold every acked write).
    soak.check_convergence(fleet)?;
    let failovers_before = fleet.router.stats().failovers;

    fleet
        .primary
        .take()
        .expect("finale runs with a live primary")
        .shutdown();

    // The next write must succeed anyway: the router promotes the most
    // caught-up replica and re-points the other.
    soak.write_until_acked(fleet)?;
    if fleet.router.stats().failovers <= failovers_before {
        return Err(violation(
            soak.seed,
            "write after primary death succeeded without a failover",
        ));
    }
    let new_primary = fleet.router.primary_addr().to_string();
    let replica_addrs: Vec<String> = fleet
        .replicas
        .iter()
        .map(|(_, r)| r.local_addr().to_string())
        .collect();
    if !replica_addrs.contains(&new_primary) {
        return Err(violation(
            soak.seed,
            format!("router promoted unknown node {new_primary}"),
        ));
    }

    for _ in 1..config.writes_per_round {
        soak.write_until_acked(fleet)?;
        soak.check_session_read(fleet)?;
    }

    soak.check_session_read(fleet)?;
    soak.check_single_writable(fleet)?;
    soak.check_convergence(fleet)?;

    Ok(RoundOutcome {
        round,
        fault: "primary killed, router-driven promotion",
        acked: config.writes_per_round,
        rejected: 0,
    })
}

/// The backup round: an online full backup races a concurrent writer,
/// the soak keeps writing past the cut, a checkpoint truncates (and
/// archives) the live WAL, and a point-in-time restore from backup +
/// archive must reproduce the pinned ledger exactly — under a fresh
/// replication epoch, so the restored node can never rejoin the old
/// fleet's timeline.
fn run_backup_restore_round(
    round: usize,
    config: &ChaosConfig,
    fleet: &mut Fleet,
    soak: &mut Soak,
) -> Result<RoundOutcome> {
    let seed = soak.seed;
    let durability = Arc::clone(
        fleet
            .primary_db
            .durability()
            .ok_or_else(|| violation(seed, "chaos primary is not durable"))?,
    );
    let vfs = Arc::new(fleet.primary_fault.clone()) as Arc<dyn Vfs>;

    // Snapshot the ledger, then race a direct writer against the backup
    // cut: the backup must capture the pre-cut rows plus a *prefix* of
    // the writer's values — a consistent cut, never a hole.
    let pre_count = soak.ledger_count();
    let pre_sum = soak.ledger_sum();
    let writer_values: Vec<i64> = (0..config.writes_per_round)
        .map(|_| soak.fresh_value())
        .collect();
    let writer_db = Arc::clone(&fleet.primary_db);
    let thread_values = writer_values.clone();
    let writer = std::thread::spawn(move || -> Result<()> {
        for v in thread_values {
            writer_db.execute(&format!("INSERT INTO t VALUES ({v})"))?;
        }
        Ok(())
    });
    let full = durability
        .backup(Path::new("backup_full"), None, true)
        .map_err(|e| violation(seed, format!("online backup failed: {e}")))?;
    writer
        .join()
        .map_err(|_| violation(seed, "concurrent writer panicked"))?
        .map_err(|e| violation(seed, format!("concurrent write failed: {e}")))?;
    soak.ledger.extend(&writer_values);
    if !full.verified {
        return Err(violation(seed, "backup VERIFY did not run"));
    }

    // Restore the cut into a fresh dir and check it is a prefix.
    let cut = restore_backup(
        &vfs,
        Path::new("backup_full"),
        None,
        Path::new("restore_cut"),
        None,
    )
    .map_err(|e| violation(seed, format!("restore of the backup cut failed: {e}")))?;
    if cut.restored_lsn != full.backup_lsn {
        return Err(violation(
            seed,
            format!(
                "restore replayed to lsn {}, backup pinned lsn {}",
                cut.restored_lsn, full.backup_lsn
            ),
        ));
    }
    {
        let restored = Database::open_with(
            Arc::clone(&vfs),
            Path::new("restore_cut"),
            DurabilityOptions::default(),
        )
        .map_err(|e| violation(seed, format!("restored cut did not open: {e}")))?;
        let (count, sum) = count_and_sum(seed, &restored)?;
        let prefix = count - pre_count;
        let want_sum = pre_sum
            + writer_values
                .iter()
                .take(prefix.max(0) as usize)
                .sum::<i64>();
        if prefix < 0 || prefix > writer_values.len() as i64 || sum != want_sum {
            return Err(violation(
                seed,
                format!(
                    "backup cut is not a consistent prefix: count={count} sum={sum}, \
                     pre count={pre_count} sum={pre_sum}, {} writer values",
                    writer_values.len()
                ),
            ));
        }
        if restored.durability().map(|d| d.epoch()) == Some(durability.epoch()) {
            return Err(violation(
                seed,
                "restored node kept the old replication epoch (would rejoin the old fleet)",
            ));
        }
    }

    // Keep writing through the router, pin an exact point-in-time
    // target, checkpoint so the live WAL is truncated into the archive,
    // then write more: the target is now reachable only via the backup
    // chain plus archived WAL.
    let mut acked = 0;
    while acked < config.writes_per_round {
        soak.write_until_acked(fleet)?;
        acked += 1;
    }
    soak.check_session_read(fleet)?;
    let target_lsn = durability.next_lsn().saturating_sub(1);
    let target_count = soak.ledger_count();
    let target_sum = soak.ledger_sum();
    fleet
        .primary_db
        .checkpoint()
        .map_err(|e| violation(seed, format!("checkpoint after the pin failed: {e}")))?;
    soak.write_until_acked(fleet)?;
    acked += 1;

    let pitr = restore_backup(
        &vfs,
        Path::new("backup_full"),
        Some(Path::new("archive")),
        Path::new("restore_pitr"),
        Some(target_lsn),
    )
    .map_err(|e| violation(seed, format!("point-in-time restore failed: {e}")))?;
    if pitr.restored_lsn != target_lsn {
        return Err(violation(
            seed,
            format!(
                "PITR stopped at lsn {}, target was {target_lsn}",
                pitr.restored_lsn
            ),
        ));
    }
    {
        let restored = Database::open_with(
            Arc::clone(&vfs),
            Path::new("restore_pitr"),
            DurabilityOptions::default(),
        )
        .map_err(|e| violation(seed, format!("PITR restore did not open: {e}")))?;
        let (count, sum) = count_and_sum(seed, &restored)?;
        if count != target_count || sum != target_sum {
            return Err(violation(
                seed,
                format!(
                    "PITR table mismatch: count={count} sum={sum}, \
                     pinned count={target_count} sum={target_sum}"
                ),
            ));
        }
    }

    Ok(RoundOutcome {
        round,
        fault: "online backup + archived-WAL PITR, restore verified",
        acked,
        rejected: 0,
    })
}

/// `count(*), sum(x)` of table `t` on a standalone restored node.
fn count_and_sum(seed: u64, db: &Database) -> Result<(i64, i64)> {
    let r = db.execute("SELECT count(*), sum(x) FROM t")?;
    match (r.value(0, 0)?, r.value(0, 1)?) {
        (Value::Int(count), Value::Int(sum)) => Ok((count, sum)),
        other => Err(violation(seed, format!("count/sum returned {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-floor soak: six seeded fault rounds plus the
    /// failover finale, every invariant held.
    #[test]
    fn seeded_smoke_soak_holds_every_invariant() {
        let report = run_soak(&ChaosConfig::smoke()).expect("soak invariants");
        assert!(report.rounds.len() >= 6, "{report:?}");
        assert!(report.failovers >= 1, "{report:?}");
    }

    /// The same seed must produce the same schedule: two runs inject the
    /// same fault sequence (observable through the round descriptions).
    #[test]
    fn same_seed_reproduces_the_same_schedule() {
        let config = ChaosConfig {
            rounds: 4,
            writes_per_round: 1,
            failover_finale: false,
            ..ChaosConfig::smoke()
        };
        let a = run_soak(&config).expect("first run");
        let b = run_soak(&config).expect("second run");
        let faults = |r: &ChaosReport| r.rounds.iter().map(|o| o.fault).collect::<Vec<_>>();
        assert_eq!(faults(&a), faults(&b));
    }
}
