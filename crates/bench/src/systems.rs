//! One timed runner per (algorithm × system).
//!
//! Systems follow §8.2: the three HyLite integration depths plus the
//! three comparator simulations. Timed regions cover the algorithm run
//! only — every system starts from its own pre-loaded data format, as in
//! the paper's methodology.

use std::fmt;
use std::time::{Duration, Instant};

use hylite_common::{HyError, Result};

use crate::queries;
use crate::workloads::{KMeansContext, NaiveBayesContext, PageRankContext};

/// The evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Layer 4: physical analytics operators ("HyPer Operator").
    HyperOperator,
    /// Layer 3: SQL with the non-appending ITERATE ("HyPer Iterate").
    HyperIterate,
    /// Layer 3 baseline: recursive CTEs ("HyPer SQL").
    HyperSql,
    /// Dedicated parallel dataflow engine (Spark-sim).
    Dataflow,
    /// Single-threaded analytics tool (MATLAB-sim).
    SingleThread,
    /// UDFs over an RDBMS (MADlib-sim).
    Udf,
}

impl System {
    /// All systems, in the paper's legend order.
    pub fn all() -> [System; 6] {
        [
            System::HyperOperator,
            System::HyperIterate,
            System::HyperSql,
            System::Dataflow,
            System::SingleThread,
            System::Udf,
        ]
    }

    /// The fast subset that can handle large grids in reasonable time.
    pub fn fast() -> [System; 3] {
        [
            System::HyperOperator,
            System::Dataflow,
            System::SingleThread,
        ]
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            System::HyperOperator => "HyPer Operator",
            System::HyperIterate => "HyPer Iterate",
            System::HyperSql => "HyPer SQL",
            System::Dataflow => "Spark-sim",
            System::SingleThread => "MATLAB-sim",
            System::Udf => "MADlib-sim",
        })
    }
}

fn time<T>(f: impl FnOnce() -> Result<T>) -> Result<(Duration, T)> {
    let start = Instant::now();
    let out = f()?;
    Ok((start.elapsed(), out))
}

/// Run k-Means on `system`; returns the wall time and a checksum (sum of
/// all final center coordinates) so results can be cross-validated.
pub fn run_kmeans(system: System, ctx: &KMeansContext) -> Result<(Duration, f64)> {
    let iters = ctx.exp.iterations;
    let d = ctx.exp.d;
    match system {
        System::HyperOperator => {
            let sql = queries::kmeans_operator(d, iters);
            let (t, result) = time(|| ctx.db.execute(&sql))?;
            // Columns: cluster_id, c0.., size.
            let mut sum = 0.0;
            for chunk in result.chunks() {
                for c in 1..=d {
                    sum += chunk.column(c).as_f64()?.iter().sum::<f64>();
                }
            }
            Ok((t, sum))
        }
        System::HyperIterate => {
            let sql = queries::kmeans_iterate(d, iters);
            let (t, result) = time(|| ctx.db.execute(&sql))?;
            Ok((t, center_sum_sql(&result, d)?))
        }
        System::HyperSql => {
            let sql = queries::kmeans_recursive_cte(d, iters);
            let (t, result) = time(|| ctx.db.execute(&sql))?;
            Ok((t, center_sum_sql(&result, d)?))
        }
        System::Dataflow => {
            let (t, (centers, _, _)) = time(|| {
                Ok(hylite_baselines::dataflow::kmeans(
                    &ctx.dist,
                    &ctx.centers,
                    iters,
                ))
            })?;
            Ok((t, matrix_sum(&centers)))
        }
        System::SingleThread => {
            let (t, (centers, _, _)) = time(|| {
                Ok(hylite_baselines::single_thread::kmeans(
                    &ctx.rows,
                    &ctx.centers,
                    iters,
                ))
            })?;
            Ok((t, matrix_sum(&centers)))
        }
        System::Udf => {
            let (t, (centers, _, _)) = time(|| {
                hylite_baselines::udf::kmeans(
                    ctx.db.catalog(),
                    "data",
                    1, // skip the id column
                    &ctx.centers,
                    iters,
                )
            })?;
            Ok((t, matrix_sum(&centers)))
        }
    }
}

fn center_sum_sql(result: &hylite_core::QueryResult, d: usize) -> Result<f64> {
    // Columns: cid, c0.., i.
    let mut sum = 0.0;
    for chunk in result.chunks() {
        for c in 1..=d {
            sum += chunk.column(c).as_f64()?.iter().sum::<f64>();
        }
    }
    Ok(sum)
}

fn matrix_sum(m: &[Vec<f64>]) -> f64 {
    m.iter().flat_map(|r| r.iter()).sum()
}

/// Run PageRank on `system`; returns wall time and the rank sum (≈ 1).
pub fn run_pagerank(
    system: System,
    ctx: &PageRankContext,
    damping: f64,
    iterations: usize,
) -> Result<(Duration, f64)> {
    match system {
        System::HyperOperator => {
            let sql = queries::pagerank_operator(damping, iterations);
            let (t, result) = time(|| ctx.db.execute(&sql))?;
            let mut sum = 0.0;
            for chunk in result.chunks() {
                sum += chunk.column(1).as_f64()?.iter().sum::<f64>();
            }
            Ok((t, sum))
        }
        System::HyperIterate => {
            let sql = queries::pagerank_iterate(ctx.vertices, damping, iterations);
            let (t, result) = time(|| ctx.db.execute(&sql))?;
            let mut sum = 0.0;
            for chunk in result.chunks() {
                sum += chunk.column(1).as_f64()?.iter().sum::<f64>();
            }
            Ok((t, sum))
        }
        System::HyperSql => {
            let sql = queries::pagerank_recursive_cte(ctx.vertices, damping, iterations);
            let (t, result) = time(|| ctx.db.execute(&sql))?;
            let mut sum = 0.0;
            for chunk in result.chunks() {
                sum += chunk.column(1).as_f64()?.iter().sum::<f64>();
            }
            Ok((t, sum))
        }
        System::Dataflow => {
            let (t, ranks) = time(|| {
                Ok(hylite_baselines::dataflow::pagerank(
                    &ctx.dist, damping, iterations,
                ))
            })?;
            Ok((t, ranks.values().sum()))
        }
        System::SingleThread => {
            let (t, ranks) = time(|| {
                Ok(hylite_baselines::single_thread::pagerank(
                    &ctx.src, &ctx.dest, damping, 0.0, iterations,
                ))
            })?;
            Ok((t, ranks.values().sum()))
        }
        System::Udf => {
            let (t, ranks) = time(|| {
                hylite_baselines::udf::pagerank(ctx.db.catalog(), "edges", damping, iterations)
            })?;
            Ok((t, ranks.values().sum()))
        }
    }
}

/// Run Naive Bayes training on `system`; returns wall time and a model
/// checksum (sum of priors + means) for cross-validation.
pub fn run_naive_bayes(system: System, ctx: &NaiveBayesContext) -> Result<(Duration, f64)> {
    match system {
        System::HyperOperator => {
            let sql = queries::naive_bayes_operator(ctx.d);
            let (t, result) = time(|| ctx.db.execute(&sql))?;
            Ok((t, model_sum_sql(&result)?))
        }
        // The ITERATE construct adds nothing to a single-pass algorithm;
        // the paper's SQL comparison for NB is the plain aggregation
        // query, which we use for both SQL-layer systems.
        System::HyperIterate | System::HyperSql => {
            let sql = queries::naive_bayes_sql(ctx.d);
            let (t, result) = time(|| ctx.db.execute(&sql))?;
            Ok((t, model_sum_sql(&result)?))
        }
        System::Dataflow => {
            let (t, model) = time(|| Ok(hylite_baselines::dataflow::naive_bayes_train(&ctx.dist)))?;
            Ok((t, model_sum(&model)))
        }
        System::SingleThread => {
            let (t, model) = time(|| {
                Ok(hylite_baselines::single_thread::naive_bayes_train(
                    &ctx.rows,
                    &ctx.labels,
                ))
            })?;
            Ok((t, model_sum(&model)))
        }
        System::Udf => {
            let (t, model) =
                time(|| hylite_baselines::udf::naive_bayes_train(ctx.db.catalog(), "nbdata"))?;
            Ok((t, model_sum(&model)))
        }
    }
}

fn model_sum(model: &[hylite_baselines::single_thread::NbClass]) -> f64 {
    model
        .iter()
        .map(|(_, prior, gs)| prior + gs.iter().map(|(m, _)| m).sum::<f64>())
        .sum()
}

fn model_sum_sql(result: &hylite_core::QueryResult) -> Result<f64> {
    // Model relation: class, attribute, prior, mean, stddev. Priors
    // repeat once per attribute; divide accordingly.
    let chunk = result.to_chunk()?;
    if chunk.is_empty() {
        return Err(HyError::Execution("empty model".into()));
    }
    let classes: std::collections::HashSet<String> = (0..chunk.len())
        .map(|i| chunk.column(0).value(i).to_string())
        .collect();
    let attrs = chunk.len() / classes.len().max(1);
    let priors: f64 = chunk.column(2).as_f64()?.iter().sum::<f64>() / attrs.max(1) as f64;
    let means: f64 = chunk.column(3).as_f64()?.iter().sum();
    Ok(priors + means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use hylite_datagen::table1::KMeansExperiment;
    use hylite_graph::LdbcConfig;

    #[test]
    fn kmeans_all_systems_agree() {
        let ctx = workloads::setup_kmeans(
            KMeansExperiment {
                n: 400,
                d: 3,
                k: 3,
                iterations: 3,
            },
            11,
        )
        .unwrap();
        let mut sums = Vec::new();
        for system in System::all() {
            let (_, sum) =
                run_kmeans(system, &ctx).unwrap_or_else(|e| panic!("{system} failed: {e}"));
            sums.push((system, sum));
        }
        let reference = sums[0].1;
        for (system, sum) in &sums {
            assert!(
                (sum - reference).abs() < 1e-6 * reference.abs().max(1.0),
                "{system}: {sum} vs reference {reference}"
            );
        }
    }

    #[test]
    fn pagerank_all_systems_agree() {
        let ctx = workloads::setup_pagerank(&LdbcConfig {
            vertices: 200,
            edges: 1200,
            triangle_fraction: 0.2,
            seed: 5,
        })
        .unwrap();
        for system in System::all() {
            let (_, sum) = run_pagerank(system, &ctx, 0.85, 5)
                .unwrap_or_else(|e| panic!("{system} failed: {e}"));
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "{system}: rank sum {sum} should be ≈ 1"
            );
        }
    }

    #[test]
    fn naive_bayes_all_systems_agree() {
        let ctx = workloads::setup_naive_bayes(500, 3, 9).unwrap();
        let mut sums = Vec::new();
        for system in System::all() {
            let (_, sum) =
                run_naive_bayes(system, &ctx).unwrap_or_else(|e| panic!("{system} failed: {e}"));
            sums.push((system, sum));
        }
        let reference = sums[0].1;
        for (system, sum) in &sums {
            assert!(
                (sum - reference).abs() < 1e-6 * reference.abs().max(1.0),
                "{system}: {sum} vs reference {reference}"
            );
        }
    }
}
