//! The `concurrent-clients` workload binary: N wire connections driving
//! one `hylite-server` with mixed SQL + analytics statements.
//!
//! ```sh
//! cargo run --release -p hylite-bench --bin concurrent-clients -- \
//!     --clients 32 --statements 12 --tuples 20000
//! ```

use hylite_bench::concurrent::{run, ConcurrentConfig};
use hylite_bench::report::render_csv;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ConcurrentConfig::default();
    let mut csv = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let take = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} takes a value"))
                .parse()
                .unwrap_or_else(|e| panic!("{flag}: {e}"))
        };
        match flag.as_str() {
            "--clients" => config.clients = take(&mut i),
            "--statements" => config.statements_per_client = take(&mut i),
            "--tuples" => config.tuples = take(&mut i),
            "--dims" => config.dims = take(&mut i),
            "--clusters" => config.clusters = take(&mut i),
            "--edges" => config.edges = take(&mut i),
            "--max-active" => config.max_active = take(&mut i),
            "--csv" => csv = true,
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    match run(config) {
        Ok(report) => {
            print!("{}", report.render());
            if csv {
                println!("{}", render_csv(&report.to_measurements()));
            }
        }
        Err(e) => {
            eprintln!("concurrent-clients failed: {e}");
            std::process::exit(1);
        }
    }
}
