//! The `concurrent-clients` workload binary: N wire connections driving
//! one `hylite-server` with mixed SQL + analytics statements.
//!
//! ```sh
//! cargo run --release -p hylite-bench --bin concurrent-clients -- \
//!     --clients 32 --statements 12 --tuples 20000
//! ```
//!
//! With `--replicas N` the run becomes a **routed fleet**: a durable
//! primary plus N WAL-streaming replicas, every client speaking through
//! the query router, reported as a read-throughput scaling curve against
//! the single-node baseline:
//!
//! ```sh
//! cargo run --release -p hylite-bench --bin concurrent-clients -- \
//!     --replicas 3 --consistency session
//! cargo run --release -p hylite-bench --bin concurrent-clients -- \
//!     --replicas 2 --smoke          # CI-sized, seconds not minutes
//! ```

use hylite_bench::concurrent::{run, ConcurrentConfig};
use hylite_bench::fleet::{run_fleet, FleetConfig};
use hylite_bench::report::render_csv;
use hylite_client::Consistency;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ConcurrentConfig::default();
    let mut csv = false;
    let mut replicas = 0usize;
    let mut consistency = Consistency::Session;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let take = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} takes a value"))
                .parse()
                .unwrap_or_else(|e| panic!("{flag}: {e}"))
        };
        match flag.as_str() {
            "--clients" => config.clients = take(&mut i),
            "--statements" => config.statements_per_client = take(&mut i),
            "--tuples" => config.tuples = take(&mut i),
            "--dims" => config.dims = take(&mut i),
            "--clusters" => config.clusters = take(&mut i),
            "--edges" => config.edges = take(&mut i),
            "--max-active" => config.max_active = take(&mut i),
            "--replicas" => replicas = take(&mut i),
            "--consistency" => {
                i += 1;
                consistency = match args.get(i).map(String::as_str) {
                    Some("session") => Consistency::Session,
                    Some("any-replica") => Consistency::AnyReplica,
                    other => panic!("--consistency must be session|any-replica, got {other:?}"),
                };
            }
            "--smoke" => smoke = true,
            "--csv" => csv = true,
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    if replicas > 0 {
        let mut fleet_config = if smoke {
            FleetConfig::smoke()
        } else {
            FleetConfig {
                base: config,
                ..FleetConfig::default()
            }
        };
        fleet_config.replicas = replicas;
        fleet_config.consistency = consistency;
        match run_fleet(fleet_config) {
            Ok(report) => print!("{}", report.render()),
            Err(e) => {
                eprintln!("concurrent-clients fleet failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if smoke {
        config = ConcurrentConfig {
            clients: 4,
            statements_per_client: 6,
            tuples: 500,
            dims: 2,
            clusters: 2,
            edges: 200,
            max_active: 0,
        };
    }
    match run(config) {
        Ok(report) => {
            print!("{}", report.render());
            if csv {
                println!("{}", render_csv(&report.to_measurements()));
            }
        }
        Err(e) => {
            eprintln!("concurrent-clients failed: {e}");
            std::process::exit(1);
        }
    }
}
