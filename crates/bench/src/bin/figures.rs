//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p hylite-bench --bin figures -- --all --scale 0.01
//! cargo run --release -p hylite-bench --bin figures -- --fig4a --scale 0.05
//! cargo run --release -p hylite-bench --bin figures -- --ablation-memory
//! ```
//!
//! `--scale` multiplies the paper's dataset sizes (1.0 = the original
//! 160k..500M tuple grid — only sensible on a very large machine).
//! Slow systems (the SQL layers and the UDF simulation) are skipped for
//! configurations above `--sql-cap` tuples (default 400k·scale-invariant)
//! and the skip is reported, never silent.

use std::time::Duration;

use hylite_bench::report::{render_csv, render_figure, Measurement};
use hylite_bench::systems::{run_kmeans, run_naive_bayes, run_pagerank, System};
use hylite_bench::workloads;
use hylite_datagen::table1::{KMeansExperiment, Table1};
use hylite_graph::LdbcConfig;

struct Options {
    scale: f64,
    sql_cap: usize,
    csv: bool,
    fig4a: bool,
    fig4b: bool,
    fig4c: bool,
    fig5a: bool,
    fig5b: bool,
    fig5c: bool,
    table1: bool,
    ablation_memory: bool,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Options {
        scale: 0.01,
        sql_cap: 400_000,
        csv: false,
        fig4a: false,
        fig4b: false,
        fig4c: false,
        fig5a: false,
        fig5b: false,
        fig5c: false,
        table1: false,
        ablation_memory: false,
    };
    let mut any = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                o.scale = args[i].parse().expect("--scale takes a float");
            }
            "--sql-cap" => {
                i += 1;
                o.sql_cap = args[i].parse().expect("--sql-cap takes an integer");
            }
            "--csv" => o.csv = true,
            "--fig4a" => {
                o.fig4a = true;
                any = true;
            }
            "--fig4b" => {
                o.fig4b = true;
                any = true;
            }
            "--fig4c" => {
                o.fig4c = true;
                any = true;
            }
            "--fig5a" => {
                o.fig5a = true;
                any = true;
            }
            "--fig5b" => {
                o.fig5b = true;
                any = true;
            }
            "--fig5c" => {
                o.fig5c = true;
                any = true;
            }
            "--table1" => {
                o.table1 = true;
                any = true;
            }
            "--ablation-memory" => {
                o.ablation_memory = true;
                any = true;
            }
            "--profile-kmeans" => {
                profile_kmeans();
                std::process::exit(0);
            }
            "--all" => {
                o.fig4a = true;
                o.fig4b = true;
                o.fig4c = true;
                o.fig5a = true;
                o.fig5b = true;
                o.fig5c = true;
                o.table1 = true;
                o.ablation_memory = true;
                any = true;
            }
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    if !any {
        o.fig4a = true;
        o.fig4b = true;
        o.fig4c = true;
        o.fig5a = true;
        o.fig5b = true;
        o.fig5c = true;
        o.table1 = true;
        o.ablation_memory = true;
    }
    o
}

/// Systems to run for a k-Means configuration of n tuples.
fn kmeans_systems(n: usize, sql_cap: usize) -> Vec<System> {
    let mut systems = vec![
        System::HyperOperator,
        System::Dataflow,
        System::SingleThread,
    ];
    if n <= sql_cap {
        systems.extend([System::HyperIterate, System::HyperSql, System::Udf]);
    } else {
        eprintln!(
            "note: skipping HyPer Iterate / HyPer SQL / MADlib-sim at n={n} \
             (> --sql-cap {sql_cap}); raise --sql-cap to include them"
        );
    }
    systems
}

fn kmeans_figure(
    title: &str,
    grid: &[KMeansExperiment],
    xlabel: impl Fn(&KMeansExperiment) -> String,
    opts: &Options,
) {
    let mut measurements = Vec::new();
    for exp in grid {
        let ctx = workloads::setup_kmeans(*exp, 42).expect("setup");
        for system in kmeans_systems(exp.n, opts.sql_cap) {
            match run_kmeans(system, &ctx) {
                Ok((t, _)) => measurements.push(Measurement {
                    system: system.to_string(),
                    x: xlabel(exp),
                    runtime: t,
                }),
                Err(e) => eprintln!("{system} failed on {exp:?}: {e}"),
            }
        }
    }
    emit(title, &measurements, opts);
}

fn emit(title: &str, measurements: &[Measurement], opts: &Options) {
    println!("{}", render_figure(title, measurements));
    if opts.csv {
        println!("{}", render_csv(measurements));
    }
}

fn main() {
    let opts = parse_args();
    let grid = Table1::scaled(opts.scale);

    if opts.table1 {
        println!(
            "== Table 1: k-Means datasets (scale {}):\n{}",
            opts.scale,
            grid.render()
        );
    }
    if opts.fig4a {
        kmeans_figure(
            "Figure 4 (left): k-Means, varying number of tuples",
            &grid.varying_tuples(),
            |e| e.n.to_string(),
            &opts,
        );
    }
    if opts.fig4b {
        kmeans_figure(
            "Figure 4 (middle): k-Means, varying number of dimensions",
            &grid.varying_dimensions(),
            |e| e.d.to_string(),
            &opts,
        );
    }
    if opts.fig4c {
        kmeans_figure(
            "Figure 4 (right): k-Means, varying number of clusters",
            &grid.varying_clusters(),
            |e| e.k.to_string(),
            &opts,
        );
    }
    if opts.fig5a {
        let configs = [
            ("11k/452k", LdbcConfig::paper_small()),
            ("73k/4.6m", LdbcConfig::paper_medium()),
            ("499k/46m", LdbcConfig::paper_large()),
        ];
        let mut measurements = Vec::new();
        for (label, base) in configs {
            let config = base.scaled(opts.scale.max(0.002));
            let ctx = workloads::setup_pagerank(&config).expect("setup");
            // Paper parameters: d = 0.85, ε = 0, 45 iterations.
            let iterations = 45;
            for system in [
                System::HyperOperator,
                System::Dataflow,
                System::SingleThread,
            ] {
                match run_pagerank(system, &ctx, 0.85, iterations) {
                    Ok((t, _)) => measurements.push(Measurement {
                        system: system.to_string(),
                        x: label.to_string(),
                        runtime: t,
                    }),
                    Err(e) => eprintln!("{system} failed on {label}: {e}"),
                }
            }
            // SQL layers and UDF only on graphs that fit the cap.
            if ctx.src.len() <= opts.sql_cap * 4 {
                for system in [System::HyperIterate, System::HyperSql, System::Udf] {
                    match run_pagerank(system, &ctx, 0.85, iterations) {
                        Ok((t, _)) => measurements.push(Measurement {
                            system: system.to_string(),
                            x: label.to_string(),
                            runtime: t,
                        }),
                        Err(e) => eprintln!("{system} failed on {label}: {e}"),
                    }
                }
            } else {
                eprintln!(
                    "note: skipping SQL/UDF systems on {label} ({} edges > cap)",
                    ctx.src.len()
                );
            }
        }
        emit(
            "Figure 5 (left): PageRank on LDBC graphs (d=0.85, 45 iterations)",
            &measurements,
            &opts,
        );
    }
    if opts.fig5b {
        let mut measurements = Vec::new();
        for exp in grid.varying_tuples() {
            let ctx = workloads::setup_naive_bayes(exp.n, 10, 42).expect("setup");
            for system in kmeans_systems(exp.n, opts.sql_cap) {
                match run_naive_bayes(system, &ctx) {
                    Ok((t, _)) => measurements.push(Measurement {
                        system: system.to_string(),
                        x: exp.n.to_string(),
                        runtime: t,
                    }),
                    Err(e) => eprintln!("{system} failed at n={}: {e}", exp.n),
                }
            }
        }
        emit(
            "Figure 5 (middle): Naive Bayes training, varying number of tuples",
            &measurements,
            &opts,
        );
    }
    if opts.fig5c {
        let mut measurements = Vec::new();
        for exp in grid.varying_dimensions() {
            let ctx = workloads::setup_naive_bayes(exp.n, exp.d, 42).expect("setup");
            for system in kmeans_systems(exp.n, opts.sql_cap) {
                match run_naive_bayes(system, &ctx) {
                    Ok((t, _)) => measurements.push(Measurement {
                        system: system.to_string(),
                        x: exp.d.to_string(),
                        runtime: t,
                    }),
                    Err(e) => eprintln!("{system} failed at d={}: {e}", exp.d),
                }
            }
        }
        emit(
            "Figure 5 (right): Naive Bayes training, varying number of dimensions",
            &measurements,
            &opts,
        );
    }
    if opts.ablation_memory {
        ablation_memory();
    }
}

/// Per-operator breakdown of the KMEANS operator path, driven by the
/// engine's own profiler: EXPLAIN ANALYZE gives the operator tree with
/// actual rows/time/memory, and the metrics registry gives per-iteration
/// wall-time and centroid-shift histograms.
fn profile_kmeans() {
    use hylite_analytics::{kmeans, KMeansConfig};
    use std::time::Instant;
    let exp = KMeansExperiment {
        n: 1_000_000,
        d: 10,
        k: 5,
        iterations: 3,
    };
    let ctx = workloads::setup_kmeans(exp, 42).expect("setup");
    let cols: Vec<String> = (0..exp.d).map(|i| format!("d.c{i}")).collect();
    let subquery = format!("SELECT {} FROM data d", cols.join(", "));

    let plan = ctx
        .db
        .execute(&format!(
            "EXPLAIN ANALYZE {}",
            hylite_bench::queries::kmeans_operator(exp.d, 3)
        ))
        .unwrap();
    println!(
        "== KMEANS operator, profiled plan:\n{}",
        plan.to_table_string()
    );

    let snapshot = ctx.db.metrics_snapshot();
    println!("== Engine metrics after the run:");
    for line in snapshot.render_text().lines() {
        if line.contains("kmeans") || line.contains("query.") {
            println!("  {line}");
        }
    }

    // Cross-check the operator against its building blocks.
    let t = Instant::now();
    let chunks = {
        let r = ctx.db.execute(&subquery).unwrap();
        r.chunks().to_vec()
    };
    println!(
        "materialize subquery: {:?} ({} chunks)",
        t.elapsed(),
        chunks.len()
    );

    let t = Instant::now();
    let result = kmeans(
        &chunks,
        ctx.centers.clone(),
        None,
        &KMeansConfig { max_iterations: 3 },
    )
    .unwrap();
    println!(
        "analytics::kmeans on chunks: {:?} ({} iters)",
        t.elapsed(),
        result.iterations
    );

    let t = Instant::now();
    let (centers2, _, _) = hylite_baselines::dataflow::kmeans(&ctx.dist, &ctx.centers, 3);
    println!(
        "dataflow sim: {:?} ({} centers)",
        t.elapsed(),
        centers2.len()
    );
}

/// §5.1 ablation: live intermediate tuples, ITERATE vs recursive CTE.
fn ablation_memory() {
    use hylite_core::Database;
    println!("== Ablation (§5.1): peak live intermediate tuples, n = 1000 rows");
    println!(
        "{:>10}  {:>10}  {:>14}  {:>14}  {:>8}",
        "iterations", "observed", "ITERATE", "recursive CTE", "ratio"
    );
    let db = Database::new();
    db.execute("CREATE TABLE base (v BIGINT)").expect("ddl");
    let rows: Vec<String> = (0..1000).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO base VALUES {}", rows.join(",")))
        .expect("insert");
    for iters in [10usize, 50, 100, 500] {
        let it = db
            .execute(&format!(
                "SELECT count(*) FROM ITERATE ((SELECT v, 0 AS i FROM base), \
                 (SELECT v + 1, i + 1 FROM iterate), \
                 (SELECT i FROM iterate WHERE i >= {iters}))"
            ))
            .expect("iterate");
        let cte = db
            .execute(&format!(
                "WITH RECURSIVE r (v, i) AS (SELECT v, 0 FROM base \
                 UNION ALL SELECT v + 1, i + 1 FROM r WHERE i < {iters}) \
                 SELECT count(*) FROM r"
            ))
            .expect("cte");
        println!(
            "{:>10}  {:>10}  {:>14}  {:>14}  {:>7.1}×",
            iters,
            it.stats.iterations,
            it.stats.peak_working_rows,
            cte.stats.peak_working_rows,
            cte.stats.peak_working_rows as f64 / it.stats.peak_working_rows.max(1) as f64
        );
    }
    let snapshot = db.metrics_snapshot();
    println!(
        "metrics: iterate.iterations_total={} cte.iterations_total={}",
        snapshot.counter("iterate.iterations_total"),
        snapshot.counter("cte.iterations_total"),
    );
    let _ = Duration::ZERO;
}
