//! The `chaos-soak` binary: a seeded primary + 2-replica + router fleet
//! soaked under combined disk × network fault schedules, with the
//! system invariants (no acked-write loss, no split-brain, session
//! consistency, byte-identical convergence) checked every round.
//!
//! ```sh
//! cargo run --release -p hylite-bench --bin chaos-soak -- --rounds 12
//! cargo run --release -p hylite-bench --bin chaos-soak -- --smoke
//! # Reproduce a failure exactly:
//! cargo run --release -p hylite-bench --bin chaos-soak -- --seed 0x5eed50ac
//! ```
//!
//! Exit code 0 means every invariant held; 1 prints the violated
//! invariant together with the seed that reproduces it.

use hylite_bench::chaos::{run_soak, ChaosConfig};

fn parse_seed(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|e| panic!("--seed {s}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ChaosConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} takes a value"))
                .clone()
        };
        match flag.as_str() {
            "--seed" => config.seed = parse_seed(&take(&mut i)),
            "--rounds" => {
                config.rounds = take(&mut i)
                    .parse()
                    .unwrap_or_else(|e| panic!("{flag}: {e}"))
            }
            "--writes" => {
                config.writes_per_round = take(&mut i)
                    .parse()
                    .unwrap_or_else(|e| panic!("{flag}: {e}"))
            }
            "--no-failover" => config.failover_finale = false,
            "--no-backup" => config.backup_round = false,
            "--smoke" => {
                let seed = config.seed;
                config = ChaosConfig {
                    seed,
                    ..ChaosConfig::smoke()
                };
            }
            other => panic!(
                "unknown flag {other} (expected --seed, --rounds, --writes, --no-failover, \
                 --no-backup, --smoke)"
            ),
        }
        i += 1;
    }

    println!(
        "chaos-soak: seed {:#x}, {} rounds × {} writes, backup round: {}, failover finale: {}",
        config.seed,
        config.rounds,
        config.writes_per_round,
        config.backup_round,
        config.failover_finale
    );
    match run_soak(&config) {
        Ok(report) => {
            for r in &report.rounds {
                println!(
                    "  round {:>2}: {:<45} acked {:>3}, rejected {:>3}",
                    r.round, r.fault, r.acked, r.rejected
                );
            }
            println!(
                "PASS: {} rows intact, {} failover(s), {} replica reconnect(s), \
                 every invariant held for seed {:#x}",
                report.total_rows, report.failovers, report.reconnects, report.seed
            );
        }
        Err(e) => {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    }
}
