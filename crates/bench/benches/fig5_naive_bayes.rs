//! Figure 5 (middle & right): Naive Bayes training across all systems —
//! varying tuples (d = 10) and varying dimensions (fixed n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hylite_bench::systems::{run_naive_bayes, System};
use hylite_bench::workloads::setup_naive_bayes;

fn fig5b_tuples(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_naive_bayes_tuples");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [1_600usize, 8_000, 40_000] {
        let ctx = setup_naive_bayes(n, 10, 42).expect("setup");
        for system in System::all() {
            group.bench_with_input(
                BenchmarkId::new(system.to_string(), n),
                &system,
                |b, &system| {
                    b.iter(|| run_naive_bayes(system, &ctx).expect("run"));
                },
            );
        }
    }
    group.finish();
}

fn fig5c_dimensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5c_naive_bayes_dimensions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for d in [3usize, 5, 10, 25, 50] {
        let ctx = setup_naive_bayes(8_000, d, 42).expect("setup");
        for system in System::all() {
            group.bench_with_input(
                BenchmarkId::new(system.to_string(), d),
                &system,
                |b, &system| {
                    b.iter(|| run_naive_bayes(system, &ctx).expect("run"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig5b_tuples, fig5c_dimensions);
criterion_main!(benches);
