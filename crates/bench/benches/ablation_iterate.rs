//! Ablation (§5.1): ITERATE vs recursive CTE, runtime and memory.
//!
//! Both constructs run the identical per-round step; the CTE's appending
//! semantics make its intermediate relation grow by n rows per round
//! (and carry the iteration counter in every tuple), which shows up as
//! runtime once the accumulated result dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hylite_core::Database;

fn setup(n: usize) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE base (v BIGINT)").expect("ddl");
    let rows: Vec<String> = (0..n).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO base VALUES {}", rows.join(",")))
        .expect("insert");
    db
}

fn iterate_vs_cte(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_iterate_vs_cte");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let db = setup(2_000);
    for iters in [10usize, 50, 200] {
        let iterate_sql = format!(
            "SELECT count(*) FROM ITERATE ((SELECT v, 0 AS i FROM base), \
             (SELECT v + 1, i + 1 FROM iterate), \
             (SELECT i FROM iterate WHERE i >= {iters}))"
        );
        let cte_sql = format!(
            "WITH RECURSIVE r (v, i) AS (SELECT v, 0 FROM base \
             UNION ALL SELECT v + 1, i + 1 FROM r WHERE i < {iters}) \
             SELECT count(*) FROM r"
        );
        group.bench_with_input(BenchmarkId::new("iterate", iters), &iters, |b, _| {
            b.iter(|| db.execute(&iterate_sql).expect("run"));
        });
        group.bench_with_input(BenchmarkId::new("recursive_cte", iters), &iters, |b, _| {
            b.iter(|| db.execute(&cte_sql).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(benches, iterate_vs_cte);
criterion_main!(benches);
