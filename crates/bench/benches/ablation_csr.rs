//! Ablation (§6.3/§8.4.2): the CSR index benefit for PageRank.
//!
//! The operator's cost splits into building the query-local CSR (with
//! dense re-labeling) and the iterations over it; the relational
//! alternative replaces neighbor traversal with hash joins. This bench
//! separates those costs: operator end-to-end, CSR build alone,
//! iterations alone, and the join-based ITERATE SQL formulation.

use criterion::{criterion_group, criterion_main, Criterion};
use hylite_analytics::{pagerank, PageRankConfig};
use hylite_bench::queries;
use hylite_bench::workloads::setup_pagerank;
use hylite_graph::{CsrGraph, LdbcConfig};

fn csr_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_csr_pagerank");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let config = LdbcConfig {
        vertices: 5_000,
        edges: 40_000,
        triangle_fraction: 0.3,
        seed: 42,
    };
    let ctx = setup_pagerank(&config).expect("setup");
    let pr_config = PageRankConfig {
        damping: 0.85,
        epsilon: 0.0,
        max_iterations: 45,
    };

    group.bench_function("operator_end_to_end", |b| {
        let sql = queries::pagerank_operator(0.85, 45);
        b.iter(|| ctx.db.execute(&sql).expect("run"));
    });
    group.bench_function("csr_build_only", |b| {
        b.iter(|| CsrGraph::from_edges(&ctx.src, &ctx.dest).expect("build"));
    });
    let graph = CsrGraph::from_edges(&ctx.src, &ctx.dest).expect("build");
    group.bench_function("iterations_only_on_csr", |b| {
        b.iter(|| pagerank(&graph, &pr_config));
    });
    group.bench_function("iterate_sql_joins", |b| {
        let sql = queries::pagerank_iterate(config.vertices, 0.85, 10);
        b.iter(|| ctx.db.execute(&sql).expect("run"));
    });
    group.finish();
}

criterion_group!(benches, csr_ablation);
criterion_main!(benches);
