//! Figure 5 (left): PageRank on LDBC-like graphs across all systems.
//! Paper parameters d = 0.85, ε = 0, 45 iterations; graphs scaled down
//! for Criterion (the figures binary sweeps larger ones).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hylite_bench::systems::{run_pagerank, System};
use hylite_bench::workloads::setup_pagerank;
use hylite_graph::LdbcConfig;

fn fig5a_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_pagerank_ldbc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let configs = [
        (
            "tiny-1k/9k",
            LdbcConfig {
                vertices: 1_100,
                edges: 4_500,
                triangle_fraction: 0.3,
                seed: 42,
            },
        ),
        (
            "small-7k/92k",
            LdbcConfig {
                vertices: 7_300,
                edges: 46_000,
                triangle_fraction: 0.3,
                seed: 42,
            },
        ),
    ];
    for (label, config) in configs {
        let ctx = setup_pagerank(&config).expect("setup");
        for system in System::all() {
            group.bench_with_input(
                BenchmarkId::new(system.to_string(), label),
                &system,
                |b, &system| {
                    b.iter(|| run_pagerank(system, &ctx, 0.85, 45).expect("run"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig5a_pagerank);
criterion_main!(benches);
