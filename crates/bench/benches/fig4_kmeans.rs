//! Figure 4: k-Means runtimes across all systems, three parameter sweeps
//! (tuples / dimensions / clusters), at Criterion-friendly scale.
//!
//! The full paper-size grids run via the `figures` binary; these benches
//! keep the same *shape* (who beats whom) at ~1/100 scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hylite_bench::systems::{run_kmeans, System};
use hylite_bench::workloads::setup_kmeans;
use hylite_datagen::table1::KMeansExperiment;

fn bench_grid(
    c: &mut Criterion,
    group_name: &str,
    grid: &[KMeansExperiment],
    label: impl Fn(&KMeansExperiment) -> String,
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for exp in grid {
        let ctx = setup_kmeans(*exp, 42).expect("setup");
        for system in System::all() {
            group.bench_with_input(
                BenchmarkId::new(system.to_string(), label(exp)),
                &system,
                |b, &system| {
                    b.iter(|| run_kmeans(system, &ctx).expect("run"));
                },
            );
        }
    }
    group.finish();
}

fn fig4a_tuples(c: &mut Criterion) {
    // Paper grid ÷ 100: 1.6k, 8k, 40k (the larger points are for the
    // figures binary).
    let grid: Vec<KMeansExperiment> = [1_600, 8_000, 40_000]
        .iter()
        .map(|&n| KMeansExperiment {
            n,
            d: 10,
            k: 5,
            iterations: 3,
        })
        .collect();
    bench_grid(c, "fig4a_kmeans_tuples", &grid, |e| e.n.to_string());
}

fn fig4b_dimensions(c: &mut Criterion) {
    let grid: Vec<KMeansExperiment> = [3usize, 5, 10, 25, 50]
        .iter()
        .map(|&d| KMeansExperiment {
            n: 8_000,
            d,
            k: 5,
            iterations: 3,
        })
        .collect();
    bench_grid(c, "fig4b_kmeans_dimensions", &grid, |e| e.d.to_string());
}

fn fig4c_clusters(c: &mut Criterion) {
    let grid: Vec<KMeansExperiment> = [3usize, 5, 10, 25, 50]
        .iter()
        .map(|&k| KMeansExperiment {
            n: 8_000,
            d: 10,
            k,
            iterations: 3,
        })
        .collect();
    bench_grid(c, "fig4c_kmeans_clusters", &grid, |e| e.k.to_string());
}

criterion_group!(benches, fig4a_tuples, fig4b_dimensions, fig4c_clusters);
criterion_main!(benches);
