//! Checkpoint and segment-encode costs: what sealing compressed column
//! segments buys and what it costs.
//!
//! Three questions, three measurements:
//!
//! * **segment encode** — raw throughput of [`encode_segment`] per data
//!   shape, with the compression ratio each shape achieves. This is the
//!   dominant cost of a full checkpoint.
//! * **full vs incremental** — a one-shot report comparing the first
//!   checkpoint of a table (seals everything) against the second after a
//!   100-row delta (seals one segment) and a no-op third (seals none).
//!   The incremental-checkpoint property is asserted, not assumed.
//! * **steady-state latency** — criterion-timed incremental and no-op
//!   checkpoints, the costs a live system pays repeatedly.
//!
//! Shape of the printed report (columns are stable for scripting):
//!
//! ```text
//! checkpoint-report: encode shape=dict_strings rows=65536 raw_kb=... disk_kb=... ratio_pct=...
//! checkpoint-report: phase=full      segments=... disk_kb=... ratio_pct=... ms=...
//! checkpoint-report: phase=delta100  segments=1   disk_kb=... ratio_pct=... ms=...
//! checkpoint-report: phase=noop      segments=0   disk_kb=0   ms=...
//! ```

use std::path::Path;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hylite_common::faultfs::{FaultVfs, Vfs};
use hylite_common::{Chunk, ColumnVector, DataType, Value};
use hylite_core::{Database, DurabilityOptions};
use hylite_storage::segment::encode_segment;
use hylite_storage::SEGMENT_ROWS;

fn open(fault: &FaultVfs) -> Database {
    Database::open_with(
        Arc::new(fault.clone()) as Arc<dyn Vfs>,
        Path::new("data"),
        DurabilityOptions::default(),
    )
    .expect("open durable database")
}

/// One segment's worth of rows in each shape the encoder distinguishes.
fn shapes() -> Vec<(&'static str, Chunk)> {
    let n = SEGMENT_ROWS;
    vec![
        // Monotonic ids: FOR bitpacking's best case.
        (
            "sorted_ints",
            Chunk::new(vec![ColumnVector::from_i64((0..n as i64).collect())]),
        ),
        // Long runs: RLE's best case.
        (
            "runny_ints",
            Chunk::new(vec![ColumnVector::from_i64(
                (0..n as i64).map(|i| i / 1024).collect(),
            )]),
        ),
        // Low-cardinality strings: dictionary encoding's best case.
        (
            "dict_strings",
            Chunk::new(vec![ColumnVector::from_values(
                DataType::Varchar,
                &(0..n)
                    .map(|i| Value::from(format!("tag-{}", i % 97).as_str()))
                    .collect::<Vec<_>>(),
            )
            .expect("varchar column")]),
        ),
        // Unique strings: the incompressible worst case (plain encoding).
        (
            "unique_strings",
            Chunk::new(vec![ColumnVector::from_values(
                DataType::Varchar,
                &(0..n)
                    .map(|i| {
                        Value::from(format!("row-{i:08}-{:016x}", (i as u64) * 0x9E3779B9).as_str())
                    })
                    .collect::<Vec<_>>(),
            )
            .expect("varchar column")]),
        ),
    ]
}

fn segment_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_encode");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (shape, chunk) in shapes() {
        let raw = chunk.heap_bytes();
        let encoded = encode_segment(1, &chunk).expect("encode").len();
        println!(
            "checkpoint-report: encode shape={shape} rows={} raw_kb={} disk_kb={} ratio_pct={}",
            chunk.len(),
            raw / 1024,
            encoded / 1024,
            raw * 100 / encoded
        );
        group.bench_with_input(BenchmarkId::from_parameter(shape), &chunk, |b, chunk| {
            b.iter(|| encode_segment(1, chunk).expect("encode"));
        });
    }
    group.finish();
}

/// Load `rows` rows of (id, id*2, 'name-<id%97>') in 1000-row batches —
/// the same workload the storage integration tests seal.
fn load(db: &Database, start: usize, rows: usize) {
    let mut i = start;
    while i < start + rows {
        let batch = (start + rows - i).min(1000);
        let values: Vec<String> = (i..i + batch)
            .map(|k| format!("({k}, {}, 'name-{}')", k * 2, k % 97))
            .collect();
        db.execute(&format!("INSERT INTO big VALUES {}", values.join(",")))
            .expect("insert");
        i += batch;
    }
}

fn report_phase(phase: &str, stats: &hylite_core::CheckpointStats) {
    let ratio = (stats.sealed_raw_bytes * 100)
        .checked_div(stats.segment_bytes)
        .map_or_else(|| "-".into(), |r| r.to_string());
    println!(
        "checkpoint-report: phase={phase:<9} segments={} disk_kb={} ratio_pct={ratio} ms={}",
        stats.segments_sealed,
        stats.segment_bytes / 1024,
        stats.duration_ms
    );
}

fn checkpoint(c: &mut Criterion) {
    let rows = 100_000usize;
    let db = open(&FaultVfs::new());
    db.execute("CREATE TABLE big (id BIGINT, v BIGINT, name VARCHAR)")
        .expect("ddl");
    load(&db, 0, rows);

    // One-shot full-vs-incremental comparison with the property asserted:
    // the delta checkpoint must reuse the sealed prefix.
    let full = db.checkpoint().expect("full checkpoint");
    assert!(full.segments_sealed > 1, "full checkpoint sealed nothing");
    report_phase("full", &full);

    load(&db, rows, 100);
    let delta = db.checkpoint().expect("incremental checkpoint");
    assert_eq!(delta.segments_sealed, 1, "delta resealed the world");
    assert!(
        delta.segment_bytes * 10 < full.segment_bytes,
        "incremental checkpoint not incremental: {} vs {} bytes",
        delta.segment_bytes,
        full.segment_bytes
    );
    report_phase("delta100", &delta);

    let noop = db.checkpoint().expect("noop checkpoint");
    assert_eq!(noop.segments_sealed, 0, "noop checkpoint sealed data");
    report_phase("noop", &noop);

    // Steady-state latencies under criterion. The delta bench grows the
    // table by 100 rows per iteration; every iteration seals exactly the
    // delta, which is the invariant being timed.
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut next = rows + 100;
    group.bench_function(BenchmarkId::new("incremental_delta", 100), |b| {
        b.iter(|| {
            load(&db, next, 100);
            next += 100;
            let stats = db.checkpoint().expect("checkpoint");
            assert_eq!(stats.segments_sealed, 1);
            stats
        });
    });
    group.bench_function("noop", |b| {
        b.iter(|| {
            let stats = db.checkpoint().expect("checkpoint");
            assert_eq!(stats.segments_sealed, 0);
            stats
        });
    });
    group.finish();
}

criterion_group!(benches, segment_encode, checkpoint);
criterion_main!(benches);
