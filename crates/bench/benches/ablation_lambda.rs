//! Ablation (§7): cost of lambda flexibility in the KMEANS operator.
//!
//! Compares the hand-tuned default squared-L2 kernel against the *same*
//! metric expressed as a user lambda (vectorized expression evaluation
//! with broadcast centers), the L1 (k-Medians) lambda, and a weighted
//! custom metric — quantifying what "still executed by our highly-tuned
//! in-database operator" costs relative to the built-in kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use hylite_bench::workloads::setup_kmeans;
use hylite_datagen::table1::KMeansExperiment;

fn lambda_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lambda_kmeans");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = setup_kmeans(
        KMeansExperiment {
            n: 40_000,
            d: 5,
            k: 5,
            iterations: 3,
        },
        42,
    )
    .expect("setup");
    let cols = |p: &str| -> String {
        (0..5)
            .map(|i| format!("{p}.c{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let l2_lambda: String = (0..5)
        .map(|i| format!("(a.c{i} - b.c{i})^2"))
        .collect::<Vec<_>>()
        .join(" + ");
    let l1_lambda: String = (0..5)
        .map(|i| format!("abs(a.c{i} - b.c{i})"))
        .collect::<Vec<_>>()
        .join(" + ");
    let weighted: String = (0..5)
        .map(|i| format!("{}.0 * (a.c{i} - b.c{i})^2", i + 1))
        .collect::<Vec<_>>()
        .join(" + ");
    let base = format!(
        "SELECT * FROM KMEANS((SELECT {} FROM data d), (SELECT {} FROM centers ct)",
        cols("d"),
        cols("ct"),
    );
    let variants = [
        ("default_l2_kernel", format!("{base}, 3)")),
        ("lambda_l2", format!("{base}, LAMBDA(a, b) {l2_lambda}, 3)")),
        (
            "lambda_l1_kmedians",
            format!("{base}, LAMBDA(a, b) {l1_lambda}, 3)"),
        ),
        (
            "lambda_weighted",
            format!("{base}, LAMBDA(a, b) {weighted}, 3)"),
        ),
    ];
    for (name, sql) in &variants {
        // Sanity: the query runs.
        ctx.db.execute(sql).expect("variant executes");
        group.bench_function(*name, |b| {
            b.iter(|| ctx.db.execute(sql).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(benches, lambda_variants);
criterion_main!(benches);
