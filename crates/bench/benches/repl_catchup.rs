//! Replication catch-up: how fast a replica ingests a primary's history.
//!
//! Two paths matter operationally and are measured in isolation (no
//! network — both sides run on in-memory [`FaultVfs`] files, so the
//! numbers are the storage/apply cost a wire transport is layered on):
//!
//! * **stream apply** — a restarted replica replaying the primary's WAL
//!   tail frame by frame through the redo path (CRC re-verify, local
//!   fsync, table apply). This bounds how quickly a replica closes a
//!   replication lag of N commits.
//! * **bootstrap install** — snapshot encode on the primary plus the
//!   replica's whole-state install. This bounds failover re-seeding and
//!   the epoch-fence re-bootstrap after a primary restart.

use std::path::Path;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hylite_common::faultfs::{FaultVfs, Vfs};
use hylite_core::{Database, DurabilityOptions, ReplRole, ReplTail};

fn open(fault: &FaultVfs, role: ReplRole) -> Database {
    Database::open_with(
        Arc::new(fault.clone()) as Arc<dyn Vfs>,
        Path::new("data"),
        DurabilityOptions {
            role,
            ..DurabilityOptions::default()
        },
    )
    .expect("open durable database")
}

/// A primary whose WAL holds `commits` single-row frames.
fn primary_with_commits(commits: usize) -> Database {
    let db = open(&FaultVfs::new(), ReplRole::Primary);
    db.execute("CREATE TABLE t (x BIGINT, s VARCHAR)")
        .expect("ddl");
    for i in 0..commits {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 'row-{i}')"))
            .expect("insert");
    }
    db
}

fn stream_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("repl_stream_apply");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    for commits in [200usize, 1_000] {
        let primary = primary_with_commits(commits);
        let durability = Arc::clone(primary.durability().expect("durable"));
        group.bench_with_input(
            BenchmarkId::from_parameter(commits),
            &commits,
            |b, &commits| {
                b.iter(|| {
                    // A fresh replica replays the primary's entire WAL
                    // (never checkpointed, so it is complete from LSN 1 —
                    // no snapshot needed) through the redo apply path.
                    let replica = open(&FaultVfs::new(), ReplRole::Replica);
                    let gate = replica.catalog().writer_gate();
                    let mut cursor = 1u64;
                    let mut applied = 0usize;
                    loop {
                        let tail = durability.read_replication_tail(cursor, 64).expect("tail");
                        let ReplTail::Frames { frames, .. } = tail else {
                            panic!("unexpected tail state");
                        };
                        if frames.is_empty() {
                            break;
                        }
                        let _g = gate.lock();
                        for f in frames {
                            replica
                                .durability()
                                .expect("durable")
                                .apply_replicated_frame(replica.catalog(), f.lsn, f.crc, &f.payload)
                                .expect("apply");
                            cursor = f.lsn + 1;
                            applied += 1;
                        }
                    }
                    assert!(applied >= commits, "replayed {applied} of {commits}");
                    replica
                });
            },
        );
    }
    group.finish();
}

fn bootstrap_install(c: &mut Criterion) {
    let mut group = c.benchmark_group("repl_bootstrap_install");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    for rows in [10_000usize, 100_000] {
        // One wide commit per 1k rows keeps setup fast; the snapshot cost
        // depends on row volume, not commit count.
        let primary = open(&FaultVfs::new(), ReplRole::Primary);
        primary
            .execute("CREATE TABLE t (x BIGINT, s VARCHAR)")
            .expect("ddl");
        for chunk in (0..rows).collect::<Vec<_>>().chunks(1_000) {
            let values: Vec<String> = chunk.iter().map(|i| format!("({i}, 'row-{i}')")).collect();
            primary
                .execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
                .expect("insert");
        }
        let durability = Arc::clone(primary.durability().expect("durable"));
        // The bootstrap image now carries sealed segment files, so its
        // size reflects segment compression, not raw heap bytes. Report
        // the shipped-bundle columns once per parameter.
        let (_, image) = durability
            .bootstrap_snapshot(primary.catalog())
            .expect("snapshot");
        let logical: u64 = primary
            .catalog()
            .table_names()
            .iter()
            .filter_map(|n| primary.catalog().get_table(n).ok())
            .map(|t| t.read().segment_storage().3)
            .sum();
        println!(
            "bootstrap-report: rows={rows} bundle_kb={} sealed_raw_kb={} ratio_pct={}",
            image.len() / 1024,
            logical / 1024,
            logical * 100 / image.len().max(1) as u64
        );
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                let (base, image) = durability
                    .bootstrap_snapshot(primary.catalog())
                    .expect("snapshot");
                let replica = open(&FaultVfs::new(), ReplRole::Replica);
                {
                    let _g = replica.catalog().writer_gate().lock();
                    replica
                        .durability()
                        .expect("durable")
                        .install_bootstrap(replica.catalog(), 1, &image)
                        .expect("install");
                }
                (base, replica)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, stream_apply, bootstrap_install);
criterion_main!(benches);
