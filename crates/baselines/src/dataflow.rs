//! The dedicated-dataflow stand-in (Spark/MLlib-style).
//!
//! Character reproduced: data must first be *loaded* out of the database
//! into the engine's own partitioned format (the ETL copy the paper says
//! integrated systems avoid); computation proceeds in *stages* whose
//! task closures are boxed (scheduled generically, not fused) and whose
//! outputs are fully materialized per partition; parallelism comes from
//! a thread pool over partitions. Fast — but every stage pays copy +
//! dispatch + materialization.

use std::collections::HashMap;

use hylite_common::Chunk;
use rayon::prelude::*;

/// A partitioned, row-major dataset — the engine's internal format.
#[derive(Debug, Clone)]
pub struct DistDataset {
    partitions: Vec<Vec<Vec<f64>>>,
}

/// A boxed stage task: one partition in, one partition result out.
type Task<'a, T> = Box<dyn Fn(&[Vec<f64>]) -> T + Send + Sync + 'a>;

impl DistDataset {
    /// Load (copy) columnar database chunks into the engine: the ETL
    /// step. One partition per input chunk.
    pub fn load(chunks: &[Chunk]) -> DistDataset {
        let partitions = chunks
            .par_iter()
            .map(|chunk| {
                let d = chunk.num_columns();
                let cols: Vec<&[f64]> = (0..d)
                    .map(|i| chunk.column(i).as_f64().expect("numeric input"))
                    .collect();
                (0..chunk.len())
                    .map(|r| cols.iter().map(|c| c[r]).collect())
                    .collect()
            })
            .collect();
        DistDataset { partitions }
    }

    /// Load row-major data, splitting into `parts` partitions.
    pub fn from_rows(rows: &[Vec<f64>], parts: usize) -> DistDataset {
        let parts = parts.max(1);
        let per = rows.len().div_ceil(parts);
        DistDataset {
            partitions: rows.chunks(per.max(1)).map(<[Vec<f64>]>::to_vec).collect(),
        }
    }

    /// Total rows.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Run one stage: apply a boxed task to every partition in parallel
    /// and materialize all results.
    pub fn run_stage<T: Send>(&self, task: Task<'_, T>) -> Vec<T> {
        self.partitions.par_iter().map(|p| task(p)).collect()
    }

    /// A mapPartitions-style stage producing a new materialized dataset.
    pub fn map_partitions(&self, task: Task<'_, Vec<Vec<f64>>>) -> DistDataset {
        DistDataset {
            partitions: self.run_stage(task),
        }
    }
}

/// k-Means on the dataflow engine: one stage per iteration; each stage
/// broadcasts the centers, computes per-partition partial sums, and the
/// driver reduces them.
pub fn kmeans(
    data: &DistDataset,
    initial_centers: &[Vec<f64>],
    max_iterations: usize,
) -> (Vec<Vec<f64>>, Vec<u64>, usize) {
    let k = initial_centers.len();
    let d = initial_centers.first().map_or(0, Vec::len);
    let mut centers = initial_centers.to_vec();
    let mut sizes = vec![0u64; k];
    let mut iterations = 0usize;
    while iterations < max_iterations {
        iterations += 1;
        let broadcast = centers.clone();
        // One boxed stage: partial (sums, counts) per partition.
        let partials: Vec<(Vec<Vec<f64>>, Vec<u64>)> = data.run_stage(Box::new(move |part| {
            let mut sums = vec![vec![0.0f64; d]; k];
            let mut counts = vec![0u64; k];
            for row in part {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, center) in broadcast.iter().enumerate() {
                    let mut dist = 0.0;
                    for (x, m) in row.iter().zip(center) {
                        let diff = x - m;
                        dist += diff * diff;
                    }
                    if dist < best_d {
                        best_d = dist;
                        best = c;
                    }
                }
                counts[best] += 1;
                for (s, x) in sums[best].iter_mut().zip(row) {
                    *s += x;
                }
            }
            (sums, counts)
        }));
        // Driver-side reduce (the "shuffle").
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0u64; k];
        for (ps, pc) in partials {
            for c in 0..k {
                counts[c] += pc[c];
                for dim in 0..d {
                    sums[c][dim] += ps[c][dim];
                }
            }
        }
        let mut moved = false;
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            for dim in 0..d {
                let new = sums[c][dim] / counts[c] as f64;
                if new != centers[c][dim] {
                    moved = true;
                    centers[c][dim] = new;
                }
            }
        }
        sizes = counts;
        if !moved {
            break;
        }
    }
    (centers, sizes, iterations)
}

/// A partitioned edge list for the graph workloads.
#[derive(Debug, Clone)]
pub struct DistEdges {
    partitions: Vec<Vec<(i64, i64)>>,
}

impl DistEdges {
    /// Load an edge list, splitting into `parts` partitions.
    pub fn load(src: &[i64], dest: &[i64], parts: usize) -> DistEdges {
        let pairs: Vec<(i64, i64)> = src.iter().copied().zip(dest.iter().copied()).collect();
        let per = pairs.len().div_ceil(parts.max(1)).max(1);
        DistEdges {
            partitions: pairs.chunks(per).map(<[(i64, i64)]>::to_vec).collect(),
        }
    }
}

/// PageRank on the dataflow engine: per iteration, a contribution stage
/// over edge partitions emits (dest, share) messages that the driver
/// aggregates — the shuffle-per-iteration pattern of Spark GraphX-style
/// implementations. No CSR index is built.
pub fn pagerank(edges: &DistEdges, damping: f64, max_iterations: usize) -> HashMap<i64, f64> {
    // Stage 0: degrees and vertex discovery.
    let partials: Vec<(HashMap<i64, u64>, Vec<i64>)> = edges
        .partitions
        .par_iter()
        .map(|part| {
            let mut deg: HashMap<i64, u64> = HashMap::new();
            let mut verts = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for &(s, d) in part {
                *deg.entry(s).or_insert(0) += 1;
                for v in [s, d] {
                    if seen.insert(v) {
                        verts.push(v);
                    }
                }
            }
            (deg, verts)
        })
        .collect();
    let mut out_degree: HashMap<i64, u64> = HashMap::new();
    let mut vertices: Vec<i64> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (deg, verts) in partials {
        for (v, c) in deg {
            *out_degree.entry(v).or_insert(0) += c;
        }
        for v in verts {
            if seen.insert(v) {
                vertices.push(v);
            }
        }
    }
    let n = vertices.len();
    if n == 0 {
        return HashMap::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut ranks: HashMap<i64, f64> = vertices.iter().map(|&v| (v, inv_n)).collect();
    for _ in 0..max_iterations {
        let dangling: f64 = vertices
            .iter()
            .filter(|v| !out_degree.contains_key(v))
            .map(|v| ranks[v])
            .sum();
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        // Contribution stage: each edge partition materializes its
        // (dest, share) messages.
        let ranks_ref = &ranks;
        let deg_ref = &out_degree;
        let messages: Vec<HashMap<i64, f64>> = edges
            .partitions
            .par_iter()
            .map(|part| {
                let mut local: HashMap<i64, f64> = HashMap::new();
                for &(s, d) in part {
                    let share = damping * ranks_ref[&s] / deg_ref[&s] as f64;
                    *local.entry(d).or_insert(0.0) += share;
                }
                local
            })
            .collect();
        // Driver-side shuffle/aggregate.
        let mut next: HashMap<i64, f64> = vertices.iter().map(|&v| (v, base)).collect();
        for local in messages {
            for (v, share) in local {
                *next.get_mut(&v).expect("vertex interned") += share;
            }
        }
        ranks = next;
    }
    ranks
}

/// Naive Bayes training on the dataflow engine (labels = last column of
/// each row): one moments stage + driver reduce.
pub fn naive_bayes_train(data: &DistDataset) -> Vec<crate::single_thread::NbClass> {
    type Moments = HashMap<i64, (u64, Vec<f64>, Vec<f64>)>;
    let partials: Vec<Moments> = data.run_stage(Box::new(|part| {
        let mut table: Moments = HashMap::new();
        for row in part {
            let d = row.len() - 1;
            let label = row[d] as i64;
            let entry = table
                .entry(label)
                .or_insert_with(|| (0, vec![0.0; d], vec![0.0; d]));
            entry.0 += 1;
            for (i, &x) in row[..d].iter().enumerate() {
                entry.1[i] += x;
                entry.2[i] += x * x;
            }
        }
        table
    }));
    let mut merged: HashMap<i64, (u64, Vec<f64>, Vec<f64>)> = HashMap::new();
    for local in partials {
        for (label, (n, sums, sum_sqs)) in local {
            let entry = merged
                .entry(label)
                .or_insert_with(|| (0, vec![0.0; sums.len()], vec![0.0; sums.len()]));
            entry.0 += n;
            for i in 0..sums.len() {
                entry.1[i] += sums[i];
                entry.2[i] += sum_sqs[i];
            }
        }
    }
    let total: u64 = merged.values().map(|(n, _, _)| n).sum();
    let num_classes = merged.len() as f64;
    let mut labels: Vec<i64> = merged.keys().copied().collect();
    labels.sort_unstable();
    labels
        .into_iter()
        .map(|label| {
            let (n, sums, sum_sqs) = &merged[&label];
            let prior = (*n as f64 + 1.0) / (total as f64 + num_classes);
            let nf = *n as f64;
            let gaussians = (0..sums.len())
                .map(|i| {
                    let mean = sums[i] / nf;
                    let var = if *n < 2 {
                        0.0
                    } else {
                        ((sum_sqs[i] - sums[i] * sums[i] / nf) / (nf - 1.0)).max(0.0)
                    };
                    (mean, var.sqrt().max(1e-9))
                })
                .collect();
            (label, prior, gaussians)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector;

    #[test]
    fn load_copies_chunks() {
        let chunk = Chunk::new(vec![
            ColumnVector::from_f64(vec![1.0, 2.0]),
            ColumnVector::from_f64(vec![3.0, 4.0]),
        ]);
        let ds = DistDataset::load(&[chunk.clone(), chunk]);
        assert_eq!(ds.count(), 4);
        assert_eq!(ds.num_partitions(), 2);
    }

    #[test]
    fn kmeans_matches_single_thread() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![9.0, 9.0],
            vec![9.2, 9.1],
        ];
        let init = vec![vec![1.0, 1.0], vec![8.0, 8.0]];
        let ds = DistDataset::from_rows(&rows, 2);
        let (centers, sizes, _) = kmeans(&ds, &init, 100);
        let (st_centers, st_sizes, _) = crate::single_thread::kmeans(&rows, &init, 100);
        assert_eq!(sizes, st_sizes);
        for (a, b) in centers.iter().zip(&st_centers) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pagerank_matches_single_thread() {
        let src = vec![0, 0, 1, 2, 3];
        let dest = vec![1, 2, 2, 0, 2];
        let edges = DistEdges::load(&src, &dest, 2);
        let df = pagerank(&edges, 0.85, 40);
        let st = crate::single_thread::pagerank(&src, &dest, 0.85, 0.0, 40);
        for (v, r) in &st {
            assert!((df[v] - r).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn nb_matches_single_thread() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.5, 0.0],
            vec![5.0, 1.0],
            vec![5.5, 1.0],
        ];
        let ds = DistDataset::from_rows(&rows, 3);
        let df = naive_bayes_train(&ds);
        let st = crate::single_thread::naive_bayes_train(
            &rows.iter().map(|r| vec![r[0]]).collect::<Vec<_>>(),
            &rows.iter().map(|r| r[1] as i64).collect::<Vec<_>>(),
        );
        assert_eq!(df.len(), st.len());
        for (a, b) in df.iter().zip(&st) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12);
            assert!((a.2[0].0 - b.2[0].0).abs() < 1e-12);
            assert!((a.2[0].1 - b.2[0].1).abs() < 1e-12);
        }
    }

    #[test]
    fn map_partitions_materializes() {
        let ds = DistDataset::from_rows(&[vec![1.0], vec![2.0]], 2);
        let doubled = ds.map_partitions(Box::new(|part| {
            part.iter().map(|r| vec![r[0] * 2.0]).collect()
        }));
        assert_eq!(doubled.count(), 2);
        let sums: Vec<f64> = doubled.run_stage(Box::new(|p| p.iter().map(|r| r[0]).sum()));
        let total: f64 = sums.iter().sum();
        assert_eq!(total, 6.0);
    }
}
