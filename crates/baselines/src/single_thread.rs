//! Single-threaded, row-oriented reference implementations — the
//! stand-in for MATLAB-class tools (§8.2: "MATLAB does not contain
//! parallel versions of the chosen algorithms").

use std::collections::HashMap;

/// Lloyd k-Means over row-major data; returns (centers, sizes, iters).
pub fn kmeans(
    data: &[Vec<f64>],
    initial_centers: &[Vec<f64>],
    max_iterations: usize,
) -> (Vec<Vec<f64>>, Vec<u64>, usize) {
    let k = initial_centers.len();
    let d = initial_centers.first().map_or(0, Vec::len);
    let mut centers: Vec<Vec<f64>> = initial_centers.to_vec();
    let mut sizes = vec![0u64; k];
    let mut iterations = 0;
    while iterations < max_iterations {
        iterations += 1;
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0u64; k];
        for row in data {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let mut dist = 0.0;
                for (x, m) in row.iter().zip(center) {
                    let diff = x - m;
                    dist += diff * diff;
                }
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            counts[best] += 1;
            for (s, x) in sums[best].iter_mut().zip(row) {
                *s += x;
            }
        }
        let mut moved = false;
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            for dim in 0..d {
                let new = sums[c][dim] / counts[c] as f64;
                if new != centers[c][dim] {
                    moved = true;
                    centers[c][dim] = new;
                }
            }
        }
        sizes = counts;
        if !moved {
            break;
        }
    }
    (centers, sizes, iterations)
}

/// PageRank over an edge list using generic hash-map adjacency (a
/// dedicated tool without a CSR index); returns ranks by original id.
pub fn pagerank(
    src: &[i64],
    dest: &[i64],
    damping: f64,
    epsilon: f64,
    max_iterations: usize,
) -> HashMap<i64, f64> {
    let mut out_edges: HashMap<i64, Vec<i64>> = HashMap::new();
    let mut vertices: Vec<i64> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (&s, &d) in src.iter().zip(dest) {
        out_edges.entry(s).or_default().push(d);
        for v in [s, d] {
            if seen.insert(v) {
                vertices.push(v);
            }
        }
    }
    let n = vertices.len();
    if n == 0 {
        return HashMap::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut ranks: HashMap<i64, f64> = vertices.iter().map(|&v| (v, inv_n)).collect();
    for _ in 0..max_iterations {
        let dangling: f64 = vertices
            .iter()
            .filter(|v| !out_edges.contains_key(v))
            .map(|v| ranks[v])
            .sum();
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        let mut next: HashMap<i64, f64> = vertices.iter().map(|&v| (v, base)).collect();
        for (v, targets) in &out_edges {
            let share = damping * ranks[v] / targets.len() as f64;
            for t in targets {
                *next.get_mut(t).expect("vertex interned") += share;
            }
        }
        let diff: f64 = vertices.iter().map(|v| (next[v] - ranks[v]).abs()).sum();
        ranks = next;
        if epsilon > 0.0 && diff <= epsilon {
            break;
        }
    }
    ranks
}

/// One class of a Gaussian NB model: (label, prior, per-dim mean/stddev).
pub type NbClass = (i64, f64, Vec<(f64, f64)>);

/// Gaussian Naive Bayes training over row-major data with integer labels.
/// Prior uses the paper's smoothing: `(|c|+1)/(|D|+|C|)`.
pub fn naive_bayes_train(data: &[Vec<f64>], labels: &[i64]) -> Vec<NbClass> {
    assert_eq!(data.len(), labels.len());
    let d = data.first().map_or(0, Vec::len);
    let mut per_class: HashMap<i64, (u64, Vec<f64>, Vec<f64>)> = HashMap::new();
    for (row, &label) in data.iter().zip(labels) {
        let entry = per_class
            .entry(label)
            .or_insert_with(|| (0, vec![0.0; d], vec![0.0; d]));
        entry.0 += 1;
        for (i, &x) in row.iter().enumerate() {
            entry.1[i] += x;
            entry.2[i] += x * x;
        }
    }
    let total: u64 = per_class.values().map(|(n, _, _)| n).sum();
    let num_classes = per_class.len() as f64;
    let mut labels_sorted: Vec<i64> = per_class.keys().copied().collect();
    labels_sorted.sort_unstable();
    labels_sorted
        .into_iter()
        .map(|label| {
            let (n, sums, sum_sqs) = &per_class[&label];
            let prior = (*n as f64 + 1.0) / (total as f64 + num_classes);
            let nf = *n as f64;
            let gaussians = (0..d)
                .map(|i| {
                    let mean = sums[i] / nf;
                    let var = if *n < 2 {
                        0.0
                    } else {
                        ((sum_sqs[i] - sums[i] * sums[i] / nf) / (nf - 1.0)).max(0.0)
                    };
                    (mean, var.sqrt().max(1e-9))
                })
                .collect();
            (label, prior, gaussians)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_two_blobs() {
        let data = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![9.0, 9.0],
            vec![9.2, 9.1],
        ];
        let (centers, sizes, _) = kmeans(&data, &[vec![1.0, 1.0], vec![8.0, 8.0]], 100);
        assert_eq!(sizes, vec![2, 2]);
        assert!((centers[0][0] - 0.1).abs() < 1e-9);
        assert!((centers[1][0] - 9.1).abs() < 1e-9);
    }

    #[test]
    fn pagerank_cycle_uniform() {
        let src = vec![0, 1, 2, 3];
        let dest = vec![1, 2, 3, 0];
        let ranks = pagerank(&src, &dest, 0.85, 1e-10, 200);
        for v in 0..4 {
            assert!((ranks[&v] - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn pagerank_handles_dangling() {
        let ranks = pagerank(&[0, 1], &[1, 2], 0.85, 0.0, 50);
        let total: f64 = ranks.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nb_priors_smoothed() {
        let data = vec![vec![0.0], vec![0.5], vec![5.0], vec![5.5]];
        let labels = vec![0, 0, 1, 1];
        let model = naive_bayes_train(&data, &labels);
        assert_eq!(model.len(), 2);
        for (_, prior, _) in &model {
            assert!((prior - 0.5).abs() < 1e-12);
        }
        assert!((model[0].2[0].0 - 0.25).abs() < 1e-12, "class 0 mean");
    }
}
