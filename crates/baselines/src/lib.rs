//! Comparator system simulations for the paper's evaluation (§8.2).
//!
//! The paper benchmarks HyPer against MATLAB (single-threaded tool),
//! MADlib on Greenplum (UDFs over an RDBMS, layer 2) and Apache Spark
//! MLlib (dedicated parallel dataflow engine). Those systems aren't
//! rebuildable here, so this crate implements engines that reproduce
//! their *structural* performance characters — no artificial sleeps,
//! only the real costs of each architecture:
//!
//! * [`single_thread`] — faithful single-threaded, row-oriented
//!   implementations (the MATLAB stand-in: correct, no parallelism);
//! * [`udf`] — algorithms executed through a black-box per-row UDF
//!   interface over the storage engine: per-tuple [`Value`]
//!   materialization and dynamic dispatch, with every iteration's
//!   intermediate state written back to a storage table and re-read
//!   (the MADlib stand-in: the engine cannot see inside the UDF);
//! * [`dataflow`] — a partitioned, multi-threaded dataflow engine with
//!   an explicit load/ETL copy and full materialization of every stage's
//!   output partitions behind boxed task closures (the Spark stand-in:
//!   parallel and fast, but paying copy + scheduling + materialization
//!   per stage).
//!
//! All engines implement the same three algorithms with the same
//! semantics as `hylite-analytics` (Lloyd k-Means, Gaussian Naive Bayes
//! with the paper's smoothed prior, PageRank with uniform dangling
//! redistribution), so cross-engine result equality is testable.
//!
//! [`Value`]: hylite_common::Value

pub mod dataflow;
pub mod single_thread;
pub mod udf;
