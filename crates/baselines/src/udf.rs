//! The UDF-layer stand-in (MADlib-style, layer 2 of Figure 1).
//!
//! Algorithms run *over* the database but as black boxes: the engine
//! hands the UDF one materialized [`Row`] of boxed [`Value`]s at a time
//! through a dynamically dispatched callback (no vectorization, no
//! cross-optimization), and every iteration's intermediate state is
//! written back to a catalog table and re-read — the relational
//! round-trips §4.1 describes ("executing these queries potentially
//! requires costly communication with the database").

use std::sync::Arc;

use hylite_common::{DataType, Field, HyError, Result, Row, Schema, Value};
use hylite_storage::Catalog;

/// The black-box per-row UDF interface: the engine drives the scan, the
/// UDF sees one row at a time. `dyn FnMut` models the opaque call.
pub type RowUdf<'a> = dyn FnMut(&Row) -> Result<()> + 'a;

/// Scan a table row-at-a-time through the UDF interface.
pub fn scan_with_udf(catalog: &Catalog, table: &str, udf: &mut RowUdf<'_>) -> Result<usize> {
    let t = catalog.get_table(table)?;
    let snapshot = t.read().committed_snapshot();
    let mut rows = 0usize;
    for chunk in snapshot.live_chunks()? {
        for i in 0..chunk.len() {
            // Per-tuple materialization into boxed values — the cost of a
            // black box the engine cannot fuse with the scan.
            let row = chunk.row(i);
            udf(&row)?;
            rows += 1;
        }
    }
    Ok(rows)
}

fn replace_table(catalog: &Catalog, name: &str, schema: Schema, rows: &[Vec<Value>]) -> Result<()> {
    catalog.drop_table(name, true)?;
    let t = catalog.create_table(name, schema)?;
    let mut guard = t.write();
    guard.insert_rows(rows)?;
    guard.commit();
    Ok(())
}

fn read_table_rows(catalog: &Catalog, name: &str) -> Result<Vec<Row>> {
    let t = catalog.get_table(name)?;
    let snapshot = t.read().committed_snapshot();
    Ok(snapshot
        .live_chunks()?
        .iter()
        .flat_map(|c| c.rows())
        .collect())
}

/// k-Means as a UDF package: per-iteration, an assignment UDF scans the
/// data and accumulates per-cluster sums; the new centers are then
/// INSERTed into a scratch table (`__udf_centers`) which the next
/// iteration reads back — one relational round-trip per iteration.
pub fn kmeans(
    catalog: &Catalog,
    data_table: &str,
    feature_offset: usize,
    initial_centers: &[Vec<f64>],
    max_iterations: usize,
) -> Result<(Vec<Vec<f64>>, Vec<u64>, usize)> {
    let k = initial_centers.len();
    let d = initial_centers.first().map_or(0, Vec::len);
    if k == 0 || d == 0 {
        return Err(HyError::Analytics("empty centers in UDF k-Means".into()));
    }
    let centers_schema = || {
        Schema::new(
            (0..d)
                .map(|i| Field::new(format!("c{i}"), DataType::Float64))
                .collect(),
        )
    };
    // Materialize the initial model relation.
    let center_rows: Vec<Vec<Value>> = initial_centers
        .iter()
        .map(|c| c.iter().map(|&v| Value::Float(v)).collect())
        .collect();
    replace_table(catalog, "__udf_centers", centers_schema(), &center_rows)?;

    let mut sizes = vec![0u64; k];
    let mut iterations = 0usize;
    while iterations < max_iterations {
        iterations += 1;
        // Round-trip 1: read the model relation back from the database.
        let centers: Vec<Vec<f64>> = read_table_rows(catalog, "__udf_centers")?
            .iter()
            .map(|r| (0..d).map(|i| r.float(i)).collect::<Result<Vec<f64>>>())
            .collect::<Result<_>>()?;
        // The black-box assignment UDF.
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0u64; k];
        {
            let mut udf = |row: &Row| -> Result<()> {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, center) in centers.iter().enumerate() {
                    let mut dist = 0.0;
                    for (i, m) in center.iter().enumerate() {
                        let diff = row.float(feature_offset + i)? - m;
                        dist += diff * diff;
                    }
                    if dist < best_d {
                        best_d = dist;
                        best = c;
                    }
                }
                counts[best] += 1;
                for (i, s) in sums[best].iter_mut().enumerate() {
                    *s += row.float(feature_offset + i)?;
                }
                Ok(())
            };
            scan_with_udf(catalog, data_table, &mut udf)?;
        }
        // Round-trip 2: write the updated model back to the database.
        let mut moved = false;
        let new_centers: Vec<Vec<f64>> = (0..k)
            .map(|c| {
                if counts[c] == 0 {
                    centers[c].clone()
                } else {
                    let row: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
                    if row != centers[c] {
                        moved = true;
                    }
                    row
                }
            })
            .collect();
        let rows: Vec<Vec<Value>> = new_centers
            .iter()
            .map(|c| c.iter().map(|&v| Value::Float(v)).collect())
            .collect();
        replace_table(catalog, "__udf_centers", centers_schema(), &rows)?;
        sizes = counts;
        if !moved {
            break;
        }
    }
    let centers: Vec<Vec<f64>> = read_table_rows(catalog, "__udf_centers")?
        .iter()
        .map(|r| (0..d).map(|i| r.float(i)).collect::<Result<Vec<f64>>>())
        .collect::<Result<_>>()?;
    catalog.drop_table("__udf_centers", true)?;
    Ok((centers, sizes, iterations))
}

/// PageRank as a UDF package: ranks live in a scratch table that every
/// iteration reads, updates via a per-edge UDF scan, and rewrites.
pub fn pagerank(
    catalog: &Catalog,
    edges_table: &str,
    damping: f64,
    max_iterations: usize,
) -> Result<std::collections::HashMap<i64, f64>> {
    use std::collections::HashMap;
    // Pass 1 (UDF): discover vertices and out-degrees.
    let mut out_degree: HashMap<i64, u64> = HashMap::new();
    let mut vertices: Vec<i64> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        let mut udf = |row: &Row| -> Result<()> {
            let s = row.int(0)?;
            let d = row.int(1)?;
            *out_degree.entry(s).or_insert(0) += 1;
            for v in [s, d] {
                if seen.insert(v) {
                    vertices.push(v);
                }
            }
            Ok(())
        };
        scan_with_udf(catalog, edges_table, &mut udf)?;
    }
    let n = vertices.len();
    if n == 0 {
        return Ok(HashMap::new());
    }
    let inv_n = 1.0 / n as f64;
    let rank_schema = || {
        Schema::new(vec![
            Field::new("vertex", DataType::Int64),
            Field::new("rank", DataType::Float64),
        ])
    };
    let init: Vec<Vec<Value>> = vertices
        .iter()
        .map(|&v| vec![Value::Int(v), Value::Float(inv_n)])
        .collect();
    replace_table(catalog, "__udf_ranks", rank_schema(), &init)?;

    for _ in 0..max_iterations {
        // Round-trip: load the rank relation.
        let ranks: HashMap<i64, f64> = read_table_rows(catalog, "__udf_ranks")?
            .iter()
            .map(|r| Ok((r.int(0)?, r.float(1)?)))
            .collect::<Result<_>>()?;
        let dangling: f64 = vertices
            .iter()
            .filter(|v| !out_degree.contains_key(v))
            .map(|v| ranks[v])
            .sum();
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        let mut next: HashMap<i64, f64> = vertices.iter().map(|&v| (v, base)).collect();
        {
            // Per-edge UDF scan.
            let mut udf = |row: &Row| -> Result<()> {
                let s = row.int(0)?;
                let d = row.int(1)?;
                let share = damping * ranks[&s] / out_degree[&s] as f64;
                *next.get_mut(&d).expect("vertex interned") += share;
                Ok(())
            };
            scan_with_udf(catalog, edges_table, &mut udf)?;
        }
        // Round-trip: write the new ranks back.
        let rows: Vec<Vec<Value>> = vertices
            .iter()
            .map(|&v| vec![Value::Int(v), Value::Float(next[&v])])
            .collect();
        replace_table(catalog, "__udf_ranks", rank_schema(), &rows)?;
    }
    let final_ranks = read_table_rows(catalog, "__udf_ranks")?
        .iter()
        .map(|r| Ok((r.int(0)?, r.float(1)?)))
        .collect::<Result<_>>();
    catalog.drop_table("__udf_ranks", true)?;
    final_ranks
}

/// Naive Bayes training as a UDF: a single black-box scan accumulating
/// per-class moments, model emitted as rows. The label is the last
/// column of `data_table`.
pub fn naive_bayes_train(
    catalog: &Catalog,
    data_table: &str,
) -> Result<Vec<crate::single_thread::NbClass>> {
    use std::collections::HashMap;
    let t = catalog.get_table(data_table)?;
    let schema = Arc::clone(t.read().schema());
    let d = schema.len() - 1;
    let mut per_class: HashMap<i64, (u64, Vec<f64>, Vec<f64>)> = HashMap::new();
    {
        let mut udf = |row: &Row| -> Result<()> {
            let label = row.int(d)?;
            let entry = per_class
                .entry(label)
                .or_insert_with(|| (0, vec![0.0; d], vec![0.0; d]));
            entry.0 += 1;
            for i in 0..d {
                let x = row.float(i)?;
                entry.1[i] += x;
                entry.2[i] += x * x;
            }
            Ok(())
        };
        scan_with_udf(catalog, data_table, &mut udf)?;
    }
    let total: u64 = per_class.values().map(|(n, _, _)| n).sum();
    let num_classes = per_class.len() as f64;
    let mut labels: Vec<i64> = per_class.keys().copied().collect();
    labels.sort_unstable();
    Ok(labels
        .into_iter()
        .map(|label| {
            let (n, sums, sum_sqs) = &per_class[&label];
            let prior = (*n as f64 + 1.0) / (total as f64 + num_classes);
            let nf = *n as f64;
            let gaussians = (0..d)
                .map(|i| {
                    let mean = sums[i] / nf;
                    let var = if *n < 2 {
                        0.0
                    } else {
                        ((sum_sqs[i] - sums[i] * sums[i] / nf) / (nf - 1.0)).max(0.0)
                    };
                    (mean, var.sqrt().max(1e-9))
                })
                .collect();
            (label, prior, gaussians)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog_with_points() -> Catalog {
        let catalog = Catalog::new();
        let t = catalog
            .create_table(
                "pts",
                Schema::new(vec![
                    Field::new("x", DataType::Float64),
                    Field::new("y", DataType::Float64),
                ]),
            )
            .unwrap();
        let rows: Vec<Vec<Value>> = [(0.0, 0.0), (0.2, 0.1), (9.0, 9.0), (9.2, 9.1)]
            .iter()
            .map(|&(x, y)| vec![Value::Float(x), Value::Float(y)])
            .collect();
        t.write().insert_rows(&rows).unwrap();
        t.write().commit();
        catalog
    }

    #[test]
    fn udf_kmeans_matches_reference() {
        let catalog = catalog_with_points();
        let (centers, sizes, _) =
            kmeans(&catalog, "pts", 0, &[vec![1.0, 1.0], vec![8.0, 8.0]], 100).unwrap();
        assert_eq!(sizes, vec![2, 2]);
        assert!((centers[0][0] - 0.1).abs() < 1e-9);
        assert!(!catalog.has_table("__udf_centers"), "scratch table dropped");
    }

    #[test]
    fn udf_pagerank_cycle() {
        let catalog = Catalog::new();
        let t = catalog
            .create_table(
                "edges",
                Schema::new(vec![
                    Field::new("src", DataType::Int64),
                    Field::new("dest", DataType::Int64),
                ]),
            )
            .unwrap();
        let rows: Vec<Vec<Value>> = [(0, 1), (1, 2), (2, 0)]
            .iter()
            .map(|&(s, d)| vec![Value::Int(s), Value::Int(d)])
            .collect();
        t.write().insert_rows(&rows).unwrap();
        t.write().commit();
        let ranks = pagerank(&catalog, "edges", 0.85, 50).unwrap();
        for v in 0..3 {
            assert!((ranks[&v] - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn udf_nb_matches_single_thread() {
        let catalog = Catalog::new();
        let t = catalog
            .create_table(
                "train",
                Schema::new(vec![
                    Field::new("f", DataType::Float64),
                    Field::new("label", DataType::Int64),
                ]),
            )
            .unwrap();
        let data = [(0.0, 0), (0.5, 0), (5.0, 1), (5.5, 1)];
        let rows: Vec<Vec<Value>> = data
            .iter()
            .map(|&(f, l)| vec![Value::Float(f), Value::Int(l)])
            .collect();
        t.write().insert_rows(&rows).unwrap();
        t.write().commit();
        let udf_model = naive_bayes_train(&catalog, "train").unwrap();
        let st_model = crate::single_thread::naive_bayes_train(
            &data.iter().map(|&(f, _)| vec![f]).collect::<Vec<_>>(),
            &data.iter().map(|&(_, l)| l).collect::<Vec<_>>(),
        );
        assert_eq!(udf_model.len(), st_model.len());
        for (a, b) in udf_model.iter().zip(&st_model) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12);
            assert!((a.2[0].0 - b.2[0].0).abs() < 1e-12);
        }
    }

    #[test]
    fn scan_udf_counts_rows() {
        let catalog = catalog_with_points();
        let mut count = 0usize;
        let mut udf = |_: &Row| -> Result<()> {
            count += 1;
            Ok(())
        };
        let n = scan_with_udf(&catalog, "pts", &mut udf).unwrap();
        assert_eq!(n, 4);
        assert_eq!(count, 4);
    }
}
