//! Blocking client for the HyLite wire protocol.
//!
//! [`HyliteClient`] speaks the length-prefixed binary frame protocol of
//! `hylite-server` (see `docs/PROTOCOL.md`) over one TCP connection:
//!
//! ```no_run
//! use hylite_client::HyliteClient;
//!
//! let mut client = HyliteClient::connect("127.0.0.1:5433").unwrap();
//! let result = client.query("SELECT 1 + 1").unwrap();
//! println!("{}", result.to_table_string());
//! ```
//!
//! Results arrive as a stream of columnar chunks in HyLite's native
//! layout; [`HyliteClient::query`] collects them into a [`RemoteResult`],
//! while [`HyliteClient::query_streamed`] hands back a [`QueryStream`]
//! that yields chunks as they come off the wire, so arbitrarily large
//! results never have to fit in client memory either.
//!
//! Cancellation is out-of-band, PostgreSQL style: [`CancelHandle`]
//! (cloneable, `Send`) opens a *second* connection and asks the server to
//! abort whatever statement the original session is running. Server
//! errors are surfaced as the engine's own
//! [`HyError`] variants, reconstructed from the
//! stable wire error codes; [`HyliteClient::last_error_code`] exposes the
//! raw code (e.g. to distinguish the retryable admission rejections
//! `Overloaded`/`QueueTimeout`/`ShuttingDown`, which all map to
//! `HyError::Unavailable`).

#![warn(missing_docs)]

pub mod retry;
pub mod router;

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant, SystemTime};

use hylite_common::faultnet::NP_CLIENT_CONNECT;
use hylite_common::wire::{self, ErrorCode, Frame, PROTOCOL_VERSION};
use hylite_common::{Chunk, HyError, NetHandle, NetStream, Result, Row, Schema, Value};

pub use retry::{is_retryable, RetryPolicy};
pub use router::{Consistency, HyliteRouter, Route, RouterConfig, RouterStats};

/// A blocking connection to a `hylite-server`.
#[derive(Debug)]
pub struct HyliteClient {
    stream: NetStream,
    net: NetHandle,
    peer: SocketAddr,
    session_id: u64,
    secret: u64,
    last_error_code: Option<ErrorCode>,
    /// Set when the protocol state is no longer trustworthy (unexpected
    /// frame or mid-stream I/O failure); every later call fails fast.
    broken: bool,
    /// Retries performed by the `*_with_retry` helpers on this client
    /// (reconnects and statement re-submissions).
    retries: u64,
}

impl HyliteClient {
    /// Connect and perform the Startup handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<HyliteClient> {
        HyliteClient::connect_via(&NetHandle::default(), addr)
    }

    /// Like [`HyliteClient::connect`], but routing the socket through the
    /// given [`NetHandle`] (the `client.connect` fault point), so tests
    /// and the chaos harness can inject transport faults.
    pub fn connect_via(net: &NetHandle, addr: impl ToSocketAddrs) -> Result<HyliteClient> {
        let stream = connect_any(net, addr)?;
        let peer = stream
            .peer_addr()
            .map_err(|e| HyError::Protocol(format!("peer_addr failed: {e}")))?;
        let mut client = HyliteClient {
            stream,
            net: net.clone(),
            peer,
            session_id: 0,
            secret: 0,
            last_error_code: None,
            broken: false,
            retries: 0,
        };
        let _ = client.stream.set_nodelay(true);
        wire::write_frame(
            &mut client.stream,
            &Frame::Startup {
                version: PROTOCOL_VERSION,
            },
        )?;
        match wire::read_frame(&mut client.stream)? {
            Frame::StartupOk {
                session_id, secret, ..
            } => {
                client.session_id = session_id;
                client.secret = secret;
                Ok(client)
            }
            Frame::Error { code, message } => {
                let code = ErrorCode::from_u16(code);
                Err(code.to_error(message))
            }
            other => Err(HyError::Protocol(format!(
                "expected StartupOk, got {other:?}"
            ))),
        }
    }

    /// The server-assigned session id from the handshake.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// A handle that can cancel this session's running statement from
    /// another thread via a separate connection.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            net: self.net.clone(),
            addr: self.peer,
            session_id: self.session_id,
            secret: self.secret,
        }
    }

    /// The wire error code of the most recent server Error frame, if any.
    pub fn last_error_code(&self) -> Option<ErrorCode> {
        self.last_error_code
    }

    /// Retries performed so far by [`HyliteClient::connect_with_retry`],
    /// [`HyliteClient::query_with_retry`], and
    /// [`HyliteClient::query_streamed_with_retry`] on this client.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Like [`HyliteClient::connect`], but retrying retryable failures
    /// (connection refused, server overloaded or shutting down) with
    /// bounded exponential backoff + jitter.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        policy: &RetryPolicy,
    ) -> Result<HyliteClient> {
        HyliteClient::connect_with_retry_via(&NetHandle::default(), addr, policy)
    }

    /// [`HyliteClient::connect_with_retry`] through a caller-supplied
    /// [`NetHandle`].
    pub fn connect_with_retry_via(
        net: &NetHandle,
        addr: impl ToSocketAddrs + Clone,
        policy: &RetryPolicy,
    ) -> Result<HyliteClient> {
        let started = Instant::now();
        let seed = jitter_seed();
        let mut attempt = 0u32;
        loop {
            match HyliteClient::connect_via(net, addr.clone()) {
                Ok(mut client) => {
                    client.retries += u64::from(attempt);
                    return Ok(client);
                }
                Err(e) => {
                    attempt += 1;
                    if !retry::is_retryable(&e) {
                        return Err(e);
                    }
                    if attempt >= policy.max_attempts {
                        return Err(retry::with_attempts(e, attempt));
                    }
                    let backoff = policy.jittered_backoff(attempt - 1, seed);
                    if started.elapsed() + backoff > policy.deadline {
                        return Err(retry::with_attempts(e, attempt));
                    }
                    std::thread::sleep(backoff);
                }
            }
        }
    }

    /// Like [`HyliteClient::query`], but retrying retryable failures —
    /// admission rejections (`Overloaded`, `QueueTimeout`,
    /// `ShuttingDown`), governed aborts, and broken connections (after a
    /// transparent reconnect + handshake) — with bounded exponential
    /// backoff + jitter. Statements are re-submitted verbatim, so only
    /// use this for statements that are safe to re-run (the original
    /// attempt of a broken-connection retry may or may not have
    /// executed).
    pub fn query_with_retry(&mut self, sql: &str, policy: &RetryPolicy) -> Result<RemoteResult> {
        let started = Instant::now();
        let seed = jitter_seed() ^ self.secret;
        let mut attempt = 0u32;
        loop {
            // A broken protocol state never heals on its own: reconnect
            // first so the attempt below is meaningful.
            if self.broken {
                let net = self.net.clone();
                let fresh = HyliteClient::connect_via(&net, self.peer)?;
                let retries = self.retries;
                *self = fresh;
                self.retries = retries;
            }
            match self.query(sql) {
                Ok(result) => return Ok(result),
                Err(e) => {
                    attempt += 1;
                    let recoverable = retry::is_retryable(&e) || self.broken;
                    if !recoverable {
                        return Err(e);
                    }
                    if attempt >= policy.max_attempts {
                        return Err(retry::with_attempts(e, attempt));
                    }
                    let backoff = policy.jittered_backoff(attempt - 1, seed);
                    if started.elapsed() + backoff > policy.deadline {
                        return Err(retry::with_attempts(e, attempt));
                    }
                    self.retries += 1;
                    std::thread::sleep(backoff);
                }
            }
        }
    }

    /// Execute `sql` and materialize the whole result client-side.
    pub fn query(&mut self, sql: &str) -> Result<RemoteResult> {
        let mut stream = self.query_streamed(sql)?;
        let schema = stream.schema().clone();
        let mut chunks = Vec::new();
        while let Some(chunk) = stream.next_chunk()? {
            chunks.push(chunk);
        }
        let summary = stream.summary().ok_or_else(|| {
            HyError::Protocol("result stream ended without CommandComplete".into())
        })?;
        Ok(RemoteResult {
            schema,
            chunks,
            rows_affected: summary.rows_affected,
            lsn: summary.lsn,
        })
    }

    /// Execute `sql` and stream the result chunk by chunk. Dropping the
    /// returned [`QueryStream`] early drains the remaining frames so the
    /// connection stays usable.
    pub fn query_streamed(&mut self, sql: &str) -> Result<QueryStream<'_>> {
        let schema = self.begin_query(sql)?;
        Ok(QueryStream {
            client: self,
            schema,
            summary: None,
            failed: false,
        })
    }

    /// Like [`HyliteClient::query_streamed`], but retrying retryable
    /// submission failures (admission rejections, governed aborts, broken
    /// connections after a transparent reconnect) with bounded backoff +
    /// jitter, counted under [`HyliteClient::retries`].
    ///
    /// Retries happen **only before any chunk has been delivered**: a
    /// retryable error on `begin` re-submits the statement, but once the
    /// stream is handed back, a mid-stream failure surfaces as an error —
    /// silently re-running the statement there could deliver rows twice.
    pub fn query_streamed_with_retry(
        &mut self,
        sql: &str,
        policy: &RetryPolicy,
    ) -> Result<QueryStream<'_>> {
        let started = Instant::now();
        let seed = jitter_seed() ^ self.secret;
        let mut attempt = 0u32;
        let schema = loop {
            if self.broken {
                let net = self.net.clone();
                let fresh = HyliteClient::connect_via(&net, self.peer)?;
                let retries = self.retries;
                *self = fresh;
                self.retries = retries;
            }
            match self.begin_query(sql) {
                Ok(schema) => break schema,
                Err(e) => {
                    attempt += 1;
                    let recoverable = retry::is_retryable(&e) || self.broken;
                    if !recoverable {
                        return Err(e);
                    }
                    if attempt >= policy.max_attempts {
                        return Err(retry::with_attempts(e, attempt));
                    }
                    let backoff = policy.jittered_backoff(attempt - 1, seed);
                    if started.elapsed() + backoff > policy.deadline {
                        return Err(retry::with_attempts(e, attempt));
                    }
                    self.retries += 1;
                    std::thread::sleep(backoff);
                }
            }
        };
        Ok(QueryStream {
            client: self,
            schema,
            summary: None,
            failed: false,
        })
    }

    /// Submit `sql` and read through the `ResultSchema` frame; the frames
    /// that follow on the connection are the result's data chunks.
    fn begin_query(&mut self, sql: &str) -> Result<Schema> {
        if self.broken {
            return Err(HyError::Protocol(
                "connection is in a failed protocol state; reconnect".into(),
            ));
        }
        if let Err(e) = wire::write_frame(&mut self.stream, &Frame::Query { sql: sql.into() }) {
            self.broken = true;
            return Err(e);
        }
        match self.read() {
            Ok(Frame::ResultSchema { schema }) => Ok(schema),
            Ok(Frame::Error { code, message }) => {
                let code = ErrorCode::from_u16(code);
                self.last_error_code = Some(code);
                Err(code.to_error(message))
            }
            Ok(other) => {
                self.broken = true;
                Err(HyError::Protocol(format!(
                    "expected ResultSchema, got {other:?}"
                )))
            }
            Err(e) => Err(e),
        }
    }

    /// Ask the server to begin a graceful shutdown (drain in-flight
    /// statements, then stop). The connection is unusable afterwards.
    pub fn shutdown_server(mut self) -> Result<()> {
        wire::write_frame(&mut self.stream, &Frame::Shutdown)?;
        Ok(())
    }

    /// Close the connection cleanly.
    pub fn close(mut self) -> Result<()> {
        wire::write_frame(&mut self.stream, &Frame::Terminate)?;
        Ok(())
    }

    fn read(&mut self) -> Result<Frame> {
        match wire::read_frame(&mut self.stream) {
            Ok(f) => Ok(f),
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }
}

/// A fresh jitter seed per retry loop: wall-clock nanos mixed through
/// SplitMix64, so concurrent clients desynchronize without a `rand`
/// dependency.
fn jitter_seed() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    retry::splitmix64(nanos)
}

fn connect_any(net: &NetHandle, addr: impl ToSocketAddrs) -> Result<NetStream> {
    let addrs: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| HyError::Protocol(format!("address resolution failed: {e}")))?
        .collect();
    let mut last = None;
    for a in &addrs {
        match net.connect_timeout(NP_CLIENT_CONNECT, a, Duration::from_secs(10)) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(HyError::Unavailable(match last {
        Some(e) => format!("connect failed: {e}"),
        None => "connect failed: address resolved to nothing".into(),
    }))
}

/// Completion summary of one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Rows inserted/updated/deleted by DML.
    pub rows_affected: u64,
    /// Total result rows streamed.
    pub total_rows: u64,
    /// The serving node's durable LSN at completion: the commit
    /// watermark on a primary, the applied LSN on a replica, `0` when
    /// the node is non-durable (or predates the field). Routers use
    /// this as a session-consistency token.
    pub lsn: u64,
}

/// An in-flight streamed result. Yields chunks as they arrive; after
/// [`QueryStream::next_chunk`] returns `Ok(None)`, [`QueryStream::summary`]
/// holds the completion counts.
pub struct QueryStream<'a> {
    client: &'a mut HyliteClient,
    schema: Schema,
    summary: Option<Summary>,
    failed: bool,
}

impl QueryStream<'_> {
    /// The result schema (sent before any data).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The next chunk, `Ok(None)` once the statement completed.
    pub fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        if self.summary.is_some() || self.failed {
            return Ok(None);
        }
        match self.client.read() {
            Ok(Frame::DataChunk { chunk }) => Ok(Some(chunk)),
            Ok(Frame::CommandComplete {
                rows_affected,
                total_rows,
                lsn,
            }) => {
                self.summary = Some(Summary {
                    rows_affected,
                    total_rows,
                    lsn,
                });
                Ok(None)
            }
            Ok(Frame::Error { code, message }) => {
                // The server failed mid-statement but the framing is
                // intact; the connection remains usable.
                self.failed = true;
                let code = ErrorCode::from_u16(code);
                self.client.last_error_code = Some(code);
                Err(code.to_error(message))
            }
            Ok(other) => {
                self.failed = true;
                self.client.broken = true;
                Err(HyError::Protocol(format!(
                    "expected DataChunk or CommandComplete, got {other:?}"
                )))
            }
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }

    /// The completion summary, once the stream is exhausted.
    pub fn summary(&self) -> Option<Summary> {
        self.summary
    }
}

impl Drop for QueryStream<'_> {
    fn drop(&mut self) {
        // Drain an abandoned result so the next query on this connection
        // doesn't read stale frames.
        while self.summary.is_none() && !self.failed {
            match self.client.read() {
                Ok(Frame::DataChunk { .. }) => {}
                Ok(Frame::CommandComplete {
                    rows_affected,
                    total_rows,
                    lsn,
                }) => {
                    self.summary = Some(Summary {
                        rows_affected,
                        total_rows,
                        lsn,
                    });
                }
                Ok(Frame::Error { code, .. }) => {
                    self.client.last_error_code = Some(ErrorCode::from_u16(code));
                    self.failed = true;
                }
                Ok(_) => {
                    self.client.broken = true;
                    self.failed = true;
                }
                Err(_) => {
                    self.failed = true;
                }
            }
        }
    }
}

/// A fully materialized remote result: the client-side mirror of the
/// engine's `QueryResult`, rebuilt from the streamed wire chunks.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteResult {
    /// The result schema.
    pub schema: Schema,
    /// The result chunks, exactly as streamed (native columnar layout).
    pub chunks: Vec<Chunk>,
    /// Rows inserted/updated/deleted by DML.
    pub rows_affected: u64,
    /// The serving node's durable LSN at completion (see
    /// [`Summary::lsn`]); `0` on non-durable servers.
    pub lsn: u64,
}

impl RemoteResult {
    /// Total result rows.
    pub fn row_count(&self) -> usize {
        self.chunks.iter().map(Chunk::len).sum()
    }

    /// Materialize the whole result into one chunk (for comparisons with
    /// embedded `QueryResult::to_chunk`).
    pub fn to_chunk(&self) -> Result<Chunk> {
        Chunk::concat(&self.schema.types(), &self.chunks)
    }

    /// Materialize all rows.
    pub fn to_rows(&self) -> Vec<Row> {
        self.chunks.iter().flat_map(|c| c.rows()).collect()
    }

    /// Value at (row, column) across chunk boundaries.
    pub fn value(&self, mut row: usize, col: usize) -> Result<Value> {
        for chunk in &self.chunks {
            if row < chunk.len() {
                return Ok(chunk.column(col).value(row));
            }
            row -= chunk.len();
        }
        Err(HyError::Execution(format!("row {row} out of range")))
    }

    /// Convenience: single value of a one-row, one-column result.
    pub fn scalar(&self) -> Result<Value> {
        if self.row_count() != 1 || self.schema.len() != 1 {
            return Err(HyError::Execution(format!(
                "expected a 1×1 result, got {}×{}",
                self.row_count(),
                self.schema.len()
            )));
        }
        self.value(0, 0)
    }

    /// Render as an ASCII table.
    pub fn to_table_string(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        match self.to_chunk() {
            Ok(chunk) => chunk.to_table_string(&headers),
            Err(e) => format!("<error rendering result: {e}>"),
        }
    }
}

/// Cancels the statement running on another connection's session, by
/// opening a dedicated cancel connection (which bypasses the server's
/// connection cap). Cloneable and `Send`: hand it to a watchdog thread.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    net: NetHandle,
    addr: SocketAddr,
    session_id: u64,
    secret: u64,
}

impl CancelHandle {
    /// Deliver the cancel. Returns whether the server found the session
    /// and fired its cancel token (the statement aborts at its next
    /// governor check point — within one morsel or algorithm iteration).
    pub fn cancel(&self) -> Result<bool> {
        let mut stream = self
            .net
            .connect_timeout(NP_CLIENT_CONNECT, &self.addr, Duration::from_secs(10))
            .map_err(|e| HyError::Unavailable(format!("cancel connect failed: {e}")))?;
        wire::write_frame(
            &mut stream,
            &Frame::Cancel {
                session_id: self.session_id,
                secret: self.secret,
            },
        )?;
        match wire::read_frame(&mut stream)? {
            Frame::CancelAck { delivered } => Ok(delivered),
            Frame::Error { code, message } => Err(ErrorCode::from_u16(code).to_error(message)),
            other => Err(HyError::Protocol(format!(
                "expected CancelAck, got {other:?}"
            ))),
        }
    }
}

/// Connect to `addr` and request a graceful server shutdown without
/// establishing a query session (used by `hylite-cli --shutdown`).
pub fn request_shutdown(addr: impl ToSocketAddrs) -> Result<()> {
    let mut stream = connect_any(&NetHandle::default(), addr)?;
    wire::write_frame(&mut stream, &Frame::Shutdown)?;
    // The server acknowledges with CommandComplete before draining.
    match wire::read_frame(&mut stream) {
        Ok(Frame::CommandComplete { .. }) | Err(_) => Ok(()),
        Ok(Frame::Error { code, message }) => Err(ErrorCode::from_u16(code).to_error(message)),
        Ok(other) => Err(HyError::Protocol(format!(
            "expected CommandComplete, got {other:?}"
        ))),
    }
}

/// Connect to a replica at `addr` and promote it to primary in place.
/// Returns the promoted node's fresh `(epoch, durable_lsn)`. Idempotent
/// on a node that is already a primary.
pub fn request_promote(addr: impl ToSocketAddrs) -> Result<(u64, u64)> {
    request_promote_via(&NetHandle::default(), addr)
}

/// [`request_promote`] through a caller-supplied [`NetHandle`].
pub fn request_promote_via(net: &NetHandle, addr: impl ToSocketAddrs) -> Result<(u64, u64)> {
    let mut stream = connect_any(net, addr)?;
    wire::write_frame(&mut stream, &Frame::Promote)?;
    match wire::read_frame(&mut stream)? {
        Frame::PromoteOk { epoch, lsn } => Ok((epoch, lsn)),
        Frame::Error { code, message } => Err(ErrorCode::from_u16(code).to_error(message)),
        other => Err(HyError::Protocol(format!(
            "expected PromoteOk, got {other:?}"
        ))),
    }
}

/// Connect to a replica at `addr` and re-point it at a new primary
/// (`primary_addr`). The replica abandons its current stream and
/// reconnects; epoch fencing makes it re-bootstrap if its history
/// diverged from the new primary's.
pub fn request_repoint(addr: impl ToSocketAddrs, primary_addr: &str) -> Result<()> {
    request_repoint_via(&NetHandle::default(), addr, primary_addr)
}

/// [`request_repoint`] through a caller-supplied [`NetHandle`].
pub fn request_repoint_via(
    net: &NetHandle,
    addr: impl ToSocketAddrs,
    primary_addr: &str,
) -> Result<()> {
    let mut stream = connect_any(net, addr)?;
    wire::write_frame(
        &mut stream,
        &Frame::Repoint {
            primary_addr: primary_addr.to_string(),
        },
    )?;
    match wire::read_frame(&mut stream)? {
        Frame::CommandComplete { .. } => Ok(()),
        Frame::Error { code, message } => Err(ErrorCode::from_u16(code).to_error(message)),
        other => Err(HyError::Protocol(format!(
            "expected CommandComplete, got {other:?}"
        ))),
    }
}

/// What a server-side backup reported back over the wire.
#[derive(Debug, Clone, Copy)]
pub struct BackupReport {
    /// Highest LSN the backup contains.
    pub lsn: u64,
    /// Segment files physically copied.
    pub segments: u64,
    /// Bytes copied.
    pub bytes: u64,
}

/// Connect to `addr` and take an online backup into `dir` (a path on the
/// *server's* filesystem). `base` makes it incremental against an earlier
/// backup; `verify` re-reads every copied file before completion.
pub fn request_backup(
    addr: impl ToSocketAddrs,
    dir: &str,
    base: Option<&str>,
    verify: bool,
) -> Result<BackupReport> {
    request_backup_via(&NetHandle::default(), addr, dir, base, verify)
}

/// [`request_backup`] through a caller-supplied [`NetHandle`].
pub fn request_backup_via(
    net: &NetHandle,
    addr: impl ToSocketAddrs,
    dir: &str,
    base: Option<&str>,
    verify: bool,
) -> Result<BackupReport> {
    let mut stream = connect_any(net, addr)?;
    wire::write_frame(
        &mut stream,
        &Frame::Backup {
            dir: dir.to_string(),
            base: base.map(str::to_string),
            verify,
        },
    )?;
    match wire::read_frame(&mut stream)? {
        Frame::BackupOk {
            lsn,
            segments,
            bytes,
        } => Ok(BackupReport {
            lsn,
            segments,
            bytes,
        }),
        Frame::Error { code, message } => Err(ErrorCode::from_u16(code).to_error(message)),
        other => Err(HyError::Protocol(format!(
            "expected BackupOk, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{ColumnVector, DataType, Field};

    fn result() -> RemoteResult {
        RemoteResult {
            schema: Schema::new(vec![Field::new("x", DataType::Int64)]),
            chunks: vec![
                Chunk::new(vec![ColumnVector::from_i64(vec![1, 2])]),
                Chunk::new(vec![ColumnVector::from_i64(vec![3])]),
            ],
            rows_affected: 0,
            lsn: 0,
        }
    }

    #[test]
    fn remote_result_mirrors_query_result_accessors() {
        let r = result();
        assert_eq!(r.row_count(), 3);
        assert_eq!(r.value(2, 0).unwrap(), Value::Int(3));
        assert!(r.value(3, 0).is_err());
        assert_eq!(r.to_chunk().unwrap().len(), 3);
        let table = r.to_table_string();
        assert!(table.contains('x'), "{table}");
    }

    #[test]
    fn scalar_requires_one_by_one() {
        let r = result();
        assert!(r.scalar().is_err());
        let one = RemoteResult {
            schema: Schema::new(vec![Field::new("x", DataType::Int64)]),
            chunks: vec![Chunk::new(vec![ColumnVector::from_i64(vec![7])])],
            rows_affected: 0,
            lsn: 0,
        };
        assert_eq!(one.scalar().unwrap(), Value::Int(7));
    }
}
