//! Client-side query router for a replica fleet.
//!
//! [`HyliteRouter`] fronts one primary and N read replicas behind a
//! single [`HyliteRouter::query`] entry point. It classifies every
//! statement with the real SQL parser (not string matching) and routes
//! it:
//!
//! * **Writes, DDL, transaction control, `EXPLAIN ANALYZE` of writes** —
//!   always to the primary. `BEGIN` pins the session to the primary
//!   until `COMMIT`/`ROLLBACK` so multi-statement transactions never
//!   straddle nodes.
//! * **Reads** — round-robin across the replicas, falling back to the
//!   primary when no replica qualifies.
//! * **`SET` session knobs** — applied on the primary *and* broadcast to
//!   every connected replica, then replayed on each reconnect, so the
//!   session behaves like one logical connection.
//! * **Statements that don't parse, or that touch `hylite.*` system
//!   views** — to the primary (system views are node-local; the primary's
//!   is the authoritative one, and a parse error should be reported by
//!   the node that would execute the statement).
//!
//! # Session consistency
//!
//! Every `CommandComplete` carries the serving node's durable LSN (the
//! commit watermark on a primary, the applied LSN on a replica). The
//! router remembers the LSN of the session's last write as a
//! *consistency token*. In [`Consistency::Session`] mode a read is
//! routed to a replica only once that replica's applied LSN has caught
//! up to the token — "read your own writes". Replica LSNs are cached
//! from every response that passes through the router and refreshed with
//! rate-limited `SELECT 1` probes when a candidate looks stale; if no
//! replica is fresh enough the read falls back to the primary, which is
//! always consistent. [`Consistency::AnyReplica`] skips the freshness
//! check for workloads that tolerate bounded staleness.
//!
//! # Fleet health
//!
//! A replica whose connection breaks is ejected from the rotation and
//! reprobed with jittered exponential backoff (the same
//! [`RetryPolicy`] curve used for client retries), so a dead node costs
//! one failed statement, not one per request. If the **primary** dies
//! and [`RouterConfig::auto_failover`] is on, the router drives the
//! promotion machinery itself: it probes the fleet, promotes the most
//! caught-up healthy replica in place (`Promote` frame), re-points the
//! remaining replicas at the new primary (`Repoint` frame), and resumes.
//! Epoch fencing on the server side guarantees a re-pointed replica
//! whose history diverged re-bootstraps instead of serving a stale fork.
//!
//! ```no_run
//! use hylite_client::{Consistency, HyliteRouter, RouterConfig};
//!
//! let config = RouterConfig::new("127.0.0.1:5433")
//!     .replica("127.0.0.1:5434")
//!     .replica("127.0.0.1:5435")
//!     .consistency(Consistency::Session);
//! let mut router = HyliteRouter::connect(config).unwrap();
//!
//! router.query("CREATE TABLE t (x INT)").unwrap(); // routed to the primary
//! router.query("INSERT INTO t VALUES (1)").unwrap(); // primary; records the commit LSN
//! // Served by a replica only once it has applied the INSERT above,
//! // otherwise by the primary — the row is always visible:
//! let rows = router.query("SELECT x FROM t").unwrap();
//! assert_eq!(rows.row_count(), 1);
//! ```

use std::fmt;
use std::time::{Duration, Instant};

use hylite_common::{HyError, NetHandle, Result};
use hylite_sql::{parse_sql, Statement};

use crate::{jitter_seed, HyliteClient, RemoteResult, RetryPolicy};

/// How stale a routed read is allowed to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// Read-your-own-writes: a replica serves a read only once its
    /// applied LSN has reached the session's last write; otherwise the
    /// primary serves it.
    Session,
    /// Any live replica may serve a read regardless of its lag. Maximum
    /// scale-out, bounded staleness.
    AnyReplica,
}

impl fmt::Display for Consistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Consistency::Session => write!(f, "session"),
            Consistency::AnyReplica => write!(f, "any-replica"),
        }
    }
}

/// Configuration for a [`HyliteRouter`]. Build with [`RouterConfig::new`]
/// plus the chainable setters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address of the primary (writes, DDL, fallback reads).
    pub primary_addr: String,
    /// Addresses of the read replicas.
    pub replica_addrs: Vec<String>,
    /// Staleness contract for routed reads.
    pub consistency: Consistency,
    /// Retry/backoff curve: used both for connecting to the primary and
    /// as the reprobe schedule of ejected replicas.
    pub retry: RetryPolicy,
    /// Minimum interval between freshness probes (`SELECT 1`) of one
    /// replica in [`Consistency::Session`] mode. Bounds probe traffic
    /// when replicas lag far behind.
    pub probe_interval: Duration,
    /// Drive promotion + re-pointing automatically when the primary is
    /// unreachable (instead of surfacing the error to the caller).
    pub auto_failover: bool,
    /// Transport used for every outbound connection (queries, probes,
    /// promote/repoint). Defaults to the real network; tests and the
    /// chaos harness install a `FaultNet` here.
    pub net: NetHandle,
}

impl RouterConfig {
    /// A config with the given primary, no replicas,
    /// [`Consistency::Session`], the default [`RetryPolicy`], a 25 ms
    /// probe interval and auto-failover enabled.
    pub fn new(primary_addr: impl Into<String>) -> RouterConfig {
        RouterConfig {
            primary_addr: primary_addr.into(),
            replica_addrs: Vec::new(),
            consistency: Consistency::Session,
            retry: RetryPolicy::default(),
            probe_interval: Duration::from_millis(25),
            auto_failover: true,
            net: NetHandle::default(),
        }
    }

    /// Add one read replica.
    pub fn replica(mut self, addr: impl Into<String>) -> RouterConfig {
        self.replica_addrs.push(addr.into());
        self
    }

    /// Add several read replicas.
    pub fn replicas<I, S>(mut self, addrs: I) -> RouterConfig
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.replica_addrs.extend(addrs.into_iter().map(Into::into));
        self
    }

    /// Set the staleness contract.
    pub fn consistency(mut self, consistency: Consistency) -> RouterConfig {
        self.consistency = consistency;
        self
    }

    /// Set the retry/backoff curve.
    pub fn retry(mut self, retry: RetryPolicy) -> RouterConfig {
        self.retry = retry;
        self
    }

    /// Set the minimum interval between freshness probes of one replica.
    pub fn probe_interval(mut self, interval: Duration) -> RouterConfig {
        self.probe_interval = interval;
        self
    }

    /// Enable or disable automatic failover.
    pub fn auto_failover(mut self, on: bool) -> RouterConfig {
        self.auto_failover = on;
        self
    }

    /// Route every outbound connection through the given [`NetHandle`].
    pub fn net(mut self, net: NetHandle) -> RouterConfig {
        self.net = net;
        self
    }
}

/// Where the router sent the most recent statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Served by the primary at this address.
    Primary(String),
    /// Served by the replica at this address.
    Replica(String),
}

impl Route {
    /// The address of the serving node.
    pub fn addr(&self) -> &str {
        match self {
            Route::Primary(a) | Route::Replica(a) => a,
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Route::Primary(a) => write!(f, "primary {a}"),
            Route::Replica(a) => write!(f, "replica {a}"),
        }
    }
}

/// Routing counters, readable via [`HyliteRouter::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Statements classified as writes (incl. DDL and transaction
    /// control) and sent to the primary.
    pub writes: u64,
    /// Reads served by a replica.
    pub reads_replica: u64,
    /// Reads served by the primary (transaction pinning, system views,
    /// parse fallbacks, or no qualifying replica).
    pub reads_primary: u64,
    /// Reads that *wanted* a replica but fell back to the primary
    /// because no replica was live and fresh enough.
    pub primary_fallbacks: u64,
    /// Freshness probes (`SELECT 1`) issued to replicas.
    pub probes: u64,
    /// Replica ejections (connection failures removing a node from the
    /// rotation until its backoff expires).
    pub ejections: u64,
    /// Automatic failovers driven (promotion of a replica after the
    /// primary became unreachable).
    pub failovers: u64,
}

struct ReplicaSlot {
    addr: String,
    client: Option<HyliteClient>,
    /// Last LSN this replica was observed to have applied (from any
    /// response it served through this router).
    applied_lsn: u64,
    /// Consecutive connection failures; drives the reprobe backoff.
    failures: u32,
    /// The slot stays out of the rotation until this instant.
    eject_until: Option<Instant>,
    /// When the last freshness probe ran (rate-limits probing).
    last_probe: Option<Instant>,
}

impl ReplicaSlot {
    fn new(addr: String) -> ReplicaSlot {
        ReplicaSlot {
            addr,
            client: None,
            applied_lsn: 0,
            failures: 0,
            eject_until: None,
            last_probe: None,
        }
    }
}

enum RouteKind {
    /// Safe to serve from a replica.
    Read,
    /// Must execute on the primary.
    Primary,
    /// Pure `SET` script: primary + broadcast to connected replicas.
    SetOnly,
}

struct Classified {
    kind: RouteKind,
    /// The statement (script) commits data — its completion LSN becomes
    /// the session's new consistency token.
    advances_lsn: bool,
    /// Final in-transaction state after the script, `None` = unchanged.
    txn_after: Option<bool>,
    /// `SET` knobs assigned by the script, in order (`(name, value)`).
    set_knobs: Vec<(String, i64)>,
}

fn statement_writes(stmt: &Statement) -> bool {
    match stmt {
        Statement::CreateTable { .. }
        | Statement::DropTable { .. }
        | Statement::Insert { .. }
        | Statement::Update { .. }
        | Statement::Delete { .. } => true,
        Statement::Explain {
            statement,
            analyze: true,
        } => statement_writes(statement),
        _ => false,
    }
}

fn classify(sql: &str) -> Classified {
    let to_primary = |advances: bool| Classified {
        kind: RouteKind::Primary,
        advances_lsn: advances,
        txn_after: None,
        set_knobs: Vec::new(),
    };
    // System views are node-local; the primary's view of e.g.
    // `hylite.replication` is the authoritative one.
    if sql.to_ascii_lowercase().contains("hylite.") {
        return to_primary(false);
    }
    let stmts = match parse_sql(sql) {
        Ok(stmts) => stmts,
        // Let the primary produce the (identical-everywhere) parse error.
        Err(_) => return to_primary(false),
    };
    let mut writes = false;
    let mut commits = false;
    let mut txn_after = None;
    let mut txn_control = false;
    let mut set_knobs = Vec::new();
    for stmt in &stmts {
        match stmt {
            Statement::Begin => {
                txn_after = Some(true);
                txn_control = true;
            }
            Statement::Commit => {
                txn_after = Some(false);
                txn_control = true;
                commits = true;
            }
            Statement::Rollback => {
                txn_after = Some(false);
                txn_control = true;
            }
            Statement::Set { name, value } => set_knobs.push((name.clone(), *value)),
            other => {
                if statement_writes(other) {
                    writes = true;
                }
            }
        }
    }
    let all_set = !stmts.is_empty() && set_knobs.len() == stmts.len();
    let kind = if all_set {
        RouteKind::SetOnly
    } else if writes || txn_control || !set_knobs.is_empty() {
        RouteKind::Primary
    } else {
        RouteKind::Read
    };
    Classified {
        kind,
        advances_lsn: writes || commits,
        txn_after,
        set_knobs,
    }
}

/// A routing facade over one primary and N replicas; see the
/// [module docs](self) for the routing rules.
pub struct HyliteRouter {
    config: RouterConfig,
    /// Current primary address — diverges from `config.primary_addr`
    /// after a failover.
    primary_addr: String,
    primary: Option<HyliteClient>,
    replicas: Vec<ReplicaSlot>,
    /// Round-robin cursor over `replicas`.
    rr: usize,
    /// Session-consistency token: LSN of the session's last write.
    last_write_lsn: u64,
    /// `BEGIN` seen without a matching `COMMIT`/`ROLLBACK` — reads pin
    /// to the primary.
    in_transaction: bool,
    /// Latest `SET` per knob, replayed on every (re)connect so the
    /// logical session keeps its knobs across nodes.
    set_knobs: Vec<(String, i64)>,
    stats: RouterStats,
    last_route: Option<Route>,
    seed: u64,
}

impl HyliteRouter {
    /// Build a router over the fleet described by `config` and connect
    /// to the primary. A dead primary is tolerated when replicas are
    /// configured (reads still work; the first write triggers failover
    /// if enabled); with no replicas it is a hard error.
    pub fn connect(config: RouterConfig) -> Result<HyliteRouter> {
        let mut router = HyliteRouter {
            primary_addr: config.primary_addr.clone(),
            primary: None,
            replicas: config
                .replica_addrs
                .iter()
                .map(|a| ReplicaSlot::new(a.clone()))
                .collect(),
            rr: 0,
            last_write_lsn: 0,
            in_transaction: false,
            set_knobs: Vec::new(),
            stats: RouterStats::default(),
            last_route: None,
            seed: jitter_seed(),
            config,
        };
        if let Err(e) = router.ensure_primary() {
            if router.replicas.is_empty() {
                return Err(e);
            }
        }
        Ok(router)
    }

    /// The address currently treated as the primary (changes after a
    /// failover).
    pub fn primary_addr(&self) -> &str {
        &self.primary_addr
    }

    /// Addresses currently in the replica rotation (a promoted replica
    /// leaves it).
    pub fn replica_addrs(&self) -> Vec<&str> {
        self.replicas.iter().map(|s| s.addr.as_str()).collect()
    }

    /// The configured staleness contract.
    pub fn consistency(&self) -> Consistency {
        self.config.consistency
    }

    /// Routing counters so far.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Where the most recent statement was served, if any succeeded.
    pub fn last_route(&self) -> Option<&Route> {
        self.last_route.as_ref()
    }

    /// The session-consistency token: the LSN of this session's last
    /// write (0 before the first write).
    pub fn last_write_lsn(&self) -> u64 {
        self.last_write_lsn
    }

    /// Execute one statement (or `;`-separated script), routed per the
    /// rules in the [module docs](self).
    pub fn query(&mut self, sql: &str) -> Result<RemoteResult> {
        let cls = classify(sql);
        match cls.kind {
            RouteKind::SetOnly => self.execute_set(sql, &cls),
            RouteKind::Primary => self.query_primary(sql, &cls),
            RouteKind::Read => {
                if self.in_transaction {
                    return self.query_primary(sql, &cls);
                }
                if let Some(res) = self.query_replica_pool(sql) {
                    return res;
                }
                self.stats.primary_fallbacks += 1;
                self.query_primary(sql, &cls)
            }
        }
    }

    /// Gracefully close every connection.
    pub fn close(mut self) {
        if let Some(p) = self.primary.take() {
            let _ = p.close();
        }
        for slot in &mut self.replicas {
            if let Some(c) = slot.client.take() {
                let _ = c.close();
            }
        }
    }

    // ---- primary path -------------------------------------------------

    fn ensure_primary(&mut self) -> Result<()> {
        if self.primary.is_some() {
            return Ok(());
        }
        let mut client = HyliteClient::connect_with_retry_via(
            &self.config.net,
            self.primary_addr.as_str(),
            &self.config.retry,
        )?;
        for (name, value) in &self.set_knobs {
            client.query(&format!("SET {name} = {value}"))?;
        }
        self.primary = Some(client);
        Ok(())
    }

    fn query_primary(&mut self, sql: &str, cls: &Classified) -> Result<RemoteResult> {
        let mut failed_over = false;
        loop {
            let connect_err = self.ensure_primary().err();
            let outcome = match connect_err {
                Some(e) => Err((e, true)),
                None => {
                    let client = self.primary.as_mut().expect("ensured above");
                    match client.query(sql) {
                        Ok(r) => Ok(r),
                        Err(e) => {
                            let broken = client.broken;
                            Err((e, broken))
                        }
                    }
                }
            };
            match outcome {
                Ok(result) => {
                    if cls.advances_lsn {
                        self.last_write_lsn = self.last_write_lsn.max(result.lsn);
                    }
                    if let Some(txn) = cls.txn_after {
                        self.in_transaction = txn;
                    }
                    if cls.advances_lsn || cls.txn_after.is_some() {
                        self.stats.writes += 1;
                    } else {
                        self.stats.reads_primary += 1;
                    }
                    self.last_route = Some(Route::Primary(self.primary_addr.clone()));
                    return Ok(result);
                }
                Err((e, connection_lost)) => {
                    if !connection_lost {
                        // A real SQL/engine error; the connection is fine.
                        return Err(e);
                    }
                    self.primary = None;
                    if self.in_transaction {
                        // The server rolled the open transaction back
                        // when the session died; pretending otherwise by
                        // silently retrying would split the transaction
                        // across sessions.
                        self.in_transaction = false;
                        return Err(HyError::Unavailable(format!(
                            "open transaction lost: connection to primary {} failed: {e}",
                            self.primary_addr
                        )));
                    }
                    if failed_over || !self.config.auto_failover || self.replicas.is_empty() {
                        return Err(e);
                    }
                    self.failover()?;
                    failed_over = true;
                }
            }
        }
    }

    // ---- replica pool -------------------------------------------------

    /// Try to serve a read from the replica rotation. `None` means no
    /// replica was live and fresh enough — fall back to the primary.
    fn query_replica_pool(&mut self, sql: &str) -> Option<Result<RemoteResult>> {
        let n = self.replicas.len();
        if n == 0 {
            return None;
        }
        let start = self.rr;
        for k in 0..n {
            let i = (start + k) % n;
            if self.ensure_replica(i).is_err() {
                continue;
            }
            if self.config.consistency == Consistency::Session
                && self.replicas[i].applied_lsn < self.last_write_lsn
            {
                let due = self.replicas[i]
                    .last_probe
                    .is_none_or(|t| t.elapsed() >= self.config.probe_interval);
                if due {
                    let _ = self.probe_slot(i);
                }
                if self.replicas[i].client.is_none()
                    || self.replicas[i].applied_lsn < self.last_write_lsn
                {
                    continue; // still stale (or died during the probe)
                }
            }
            let result = self.replicas[i]
                .client
                .as_mut()
                .expect("ensured above")
                .query(sql);
            match result {
                Ok(r) => {
                    let slot = &mut self.replicas[i];
                    slot.applied_lsn = slot.applied_lsn.max(r.lsn);
                    slot.failures = 0;
                    self.rr = (i + 1) % n;
                    self.stats.reads_replica += 1;
                    self.last_route = Some(Route::Replica(self.replicas[i].addr.clone()));
                    return Some(Ok(r));
                }
                Err(e) => {
                    let broken = self.replicas[i].client.as_ref().is_none_or(|c| c.broken);
                    if broken {
                        // Node died mid-statement: eject it and retry the
                        // read on the next healthy replica.
                        self.eject(i);
                        continue;
                    }
                    // A genuine SQL error is identical on every node.
                    self.rr = (i + 1) % n;
                    self.last_route = Some(Route::Replica(self.replicas[i].addr.clone()));
                    return Some(Err(e));
                }
            }
        }
        None
    }

    /// Connect slot `i` if it has no live connection, honoring its
    /// ejection backoff.
    fn ensure_replica(&mut self, i: usize) -> Result<()> {
        if self.replicas[i].client.is_some() {
            return Ok(());
        }
        if let Some(until) = self.replicas[i].eject_until {
            if until > Instant::now() {
                return Err(HyError::Unavailable(format!(
                    "replica {} is ejected (reprobe pending)",
                    self.replicas[i].addr
                )));
            }
        }
        match HyliteClient::connect_via(&self.config.net, self.replicas[i].addr.as_str()) {
            Ok(mut client) => {
                for (name, value) in &self.set_knobs {
                    let _ = client.query(&format!("SET {name} = {value}"));
                }
                let slot = &mut self.replicas[i];
                slot.client = Some(client);
                slot.eject_until = None;
                Ok(())
            }
            Err(e) => {
                self.eject(i);
                Err(e)
            }
        }
    }

    /// Refresh slot `i`'s applied LSN with a `SELECT 1` round trip.
    fn probe_slot(&mut self, i: usize) -> Result<u64> {
        self.ensure_replica(i)?;
        self.stats.probes += 1;
        self.replicas[i].last_probe = Some(Instant::now());
        let result = self.replicas[i]
            .client
            .as_mut()
            .expect("ensured above")
            .query("SELECT 1");
        match result {
            Ok(r) => {
                let slot = &mut self.replicas[i];
                slot.applied_lsn = slot.applied_lsn.max(r.lsn);
                slot.failures = 0;
                Ok(slot.applied_lsn)
            }
            Err(e) => {
                self.eject(i);
                Err(e)
            }
        }
    }

    /// Drop slot `i`'s connection and keep it out of the rotation for a
    /// jittered exponential backoff.
    fn eject(&mut self, i: usize) {
        let backoff = self
            .config
            .retry
            .jittered_backoff(self.replicas[i].failures.min(16), self.seed ^ (i as u64));
        let slot = &mut self.replicas[i];
        slot.client = None;
        slot.failures = slot.failures.saturating_add(1);
        slot.eject_until = Some(Instant::now() + backoff);
        self.stats.ejections += 1;
    }

    // ---- SET broadcast ------------------------------------------------

    fn execute_set(&mut self, sql: &str, cls: &Classified) -> Result<RemoteResult> {
        let result = self.query_primary(sql, cls)?;
        for (name, value) in &cls.set_knobs {
            if let Some(slot) = self.set_knobs.iter_mut().find(|(n, _)| n == name) {
                slot.1 = *value;
            } else {
                self.set_knobs.push((name.clone(), *value));
            }
        }
        // Mirror onto every *connected* replica; unconnected ones get
        // the knobs replayed at connect time.
        for i in 0..self.replicas.len() {
            if self.replicas[i].client.is_some() {
                let r = self.replicas[i]
                    .client
                    .as_mut()
                    .expect("checked above")
                    .query(sql);
                if r.is_err() && self.replicas[i].client.as_ref().is_none_or(|c| c.broken) {
                    self.eject(i);
                }
            }
        }
        Ok(result)
    }

    // ---- failover -----------------------------------------------------

    /// The primary is gone: probe the fleet, promote the most caught-up
    /// healthy replica in place, re-point the rest at it, and re-target
    /// this router. The old primary is dropped — when it comes back its
    /// stale epoch fences it out of the new history.
    fn failover(&mut self) -> Result<()> {
        self.stats.failovers += 1;
        self.primary = None;
        let mut best: Option<(usize, u64)> = None;
        for i in 0..self.replicas.len() {
            // Bypass the ejection backoff: failover needs the freshest
            // possible picture of the fleet right now.
            self.replicas[i].eject_until = None;
            if let Ok(lsn) = self.probe_slot(i) {
                if best.is_none_or(|(_, b)| lsn > b) {
                    best = Some((i, lsn));
                }
            }
        }
        let (idx, _lsn) = best.ok_or_else(|| {
            HyError::Unavailable(format!(
                "failover: primary {} is unreachable and no healthy replica is left to promote",
                self.primary_addr
            ))
        })?;
        let new_primary = self.replicas[idx].addr.clone();
        crate::request_promote_via(&self.config.net, new_primary.as_str())?;
        self.replicas.remove(idx);
        self.primary_addr = new_primary.clone();
        if self.rr >= self.replicas.len() {
            self.rr = 0;
        }
        // Re-point the survivors; one failing to repoint just gets
        // ejected — it will be retried when its backoff expires.
        for i in 0..self.replicas.len() {
            let addr = self.replicas[i].addr.clone();
            if crate::request_repoint_via(&self.config.net, addr.as_str(), &new_primary).is_err() {
                self.eject(i);
            } else {
                // The old session (if any) still redirects writes to the
                // dead primary's address; reconnect lazily.
                self.replicas[i].client = None;
            }
        }
        self.ensure_primary()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind_of(sql: &str) -> RouteKind {
        classify(sql).kind
    }

    #[test]
    fn reads_are_replica_safe() {
        assert!(matches!(kind_of("SELECT 1"), RouteKind::Read));
        assert!(matches!(
            kind_of("SELECT x FROM t ORDER BY x LIMIT 3"),
            RouteKind::Read
        ));
        assert!(matches!(kind_of("EXPLAIN SELECT 1"), RouteKind::Read));
    }

    #[test]
    fn writes_and_transactions_pin_to_primary() {
        for sql in [
            "INSERT INTO t VALUES (1)",
            "UPDATE t SET x = 1",
            "DELETE FROM t",
            "CREATE TABLE t (x INT)",
            "DROP TABLE t",
            "BEGIN",
            "COMMIT",
            "ROLLBACK",
            "EXPLAIN ANALYZE INSERT INTO t VALUES (1)",
            "SELECT 1; INSERT INTO t VALUES (2)",
        ] {
            assert!(matches!(kind_of(sql), RouteKind::Primary), "{sql}");
        }
    }

    #[test]
    fn unparseable_and_system_view_sql_go_to_primary() {
        assert!(matches!(kind_of("FLARGLE BARGLE"), RouteKind::Primary));
        assert!(matches!(
            kind_of("SELECT * FROM hylite.replication"),
            RouteKind::Primary
        ));
    }

    #[test]
    fn pure_set_scripts_broadcast() {
        let cls = classify("SET statement_timeout_ms = 100");
        assert!(matches!(cls.kind, RouteKind::SetOnly));
        assert_eq!(cls.set_knobs, vec![("statement_timeout_ms".into(), 100)]);
        // Mixed scripts run on the primary only.
        assert!(matches!(
            kind_of("SET statement_timeout_ms = 100; SELECT 1"),
            RouteKind::Primary
        ));
    }

    #[test]
    fn commit_advances_the_consistency_token() {
        assert!(classify("INSERT INTO t VALUES (1)").advances_lsn);
        assert!(classify("COMMIT").advances_lsn);
        assert!(!classify("SELECT 1").advances_lsn);
        assert!(!classify("BEGIN").advances_lsn);
        assert_eq!(classify("BEGIN").txn_after, Some(true));
        assert_eq!(classify("ROLLBACK").txn_after, Some(false));
        assert_eq!(classify("SELECT 1").txn_after, None);
    }
}
