//! `hylite-cli` — interactive REPL and one-shot client for hylite-server.
//!
//! ```text
//! hylite-cli [--addr 127.0.0.1:5433]              # REPL
//! hylite-cli --execute "SELECT 1 + 1"             # one statement, print, exit
//! hylite-cli --shutdown                           # graceful server shutdown
//! ```
//!
//! In the REPL, statements end with `;` (possibly spanning lines);
//! `\q` quits, `\cancelinfo` prints the session id/secret usable with an
//! out-of-band cancel connection, `\metrics` dumps the server's metrics
//! (`hylite.metrics`), and `\lag` shows replication progress
//! (`hylite.replication`).

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Instant;

use hylite_client::{request_shutdown, HyliteClient};

struct Args {
    addr: String,
    execute: Option<String>,
    shutdown: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        addr: "127.0.0.1:5433".into(),
        execute: None,
        shutdown: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                parsed.addr = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| "--addr requires a value".to_string())?;
            }
            "--execute" | "-e" => {
                i += 1;
                parsed.execute = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| "--execute requires a SQL string".to_string())?,
                );
            }
            "--shutdown" => parsed.shutdown = true,
            "--help" | "-h" => {
                return Err(
                    "usage: hylite-cli [--addr HOST:PORT] [--execute SQL] [--shutdown]".into(),
                )
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
        i += 1;
    }
    Ok(parsed)
}

fn run_one(client: &mut HyliteClient, sql: &str) -> bool {
    let started = Instant::now();
    match client.query(sql) {
        Ok(result) => {
            let elapsed = started.elapsed();
            if !result.schema.is_empty() {
                print!("{}", result.to_table_string());
                println!(
                    "({} row{}, {:.1} ms)",
                    result.row_count(),
                    if result.row_count() == 1 { "" } else { "s" },
                    elapsed.as_secs_f64() * 1e3
                );
            } else {
                println!(
                    "OK, {} row{} affected ({:.1} ms)",
                    result.rows_affected,
                    if result.rows_affected == 1 { "" } else { "s" },
                    elapsed.as_secs_f64() * 1e3
                );
            }
            true
        }
        Err(e) => {
            match client.last_error_code() {
                Some(code) => eprintln!("error [{}]: {e}", code.as_u16()),
                None => eprintln!("error: {e}"),
            }
            false
        }
    }
}

fn repl(client: &mut HyliteClient) {
    println!("hylite-cli connected (session {})", client.session_id());
    println!("statements end with ';' — \\q quits, \\? lists meta-commands");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        print!(
            "{}",
            if buffer.is_empty() {
                "hylite> "
            } else {
                "   ...> "
            }
        );
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "" => continue,
                "\\q" | "exit" | "quit" => break,
                "\\cancelinfo" => {
                    let h = client.cancel_handle();
                    println!("{h:?}");
                    continue;
                }
                // Meta-commands over the system views: plain SQL under the
                // hood, so they work against any server (including replicas).
                "\\metrics" => {
                    run_one(client, "SELECT * FROM hylite.metrics");
                    continue;
                }
                "\\lag" => {
                    run_one(client, "SELECT * FROM hylite.replication");
                    continue;
                }
                "\\help" | "\\?" => {
                    println!(
                        "\\q quit  \\cancelinfo cancel credentials  \
                         \\metrics server metrics  \\lag replication status"
                    );
                    continue;
                }
                _ => {}
            }
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let sql = std::mem::take(&mut buffer);
            run_one(client, sql.trim().trim_end_matches(';'));
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.shutdown {
        return match request_shutdown(&args.addr) {
            Ok(()) => {
                println!("shutdown requested");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut client = match HyliteClient::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect to {} failed: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let code = match args.execute {
        Some(sql) => {
            if run_one(&mut client, &sql) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        None => {
            repl(&mut client);
            ExitCode::SUCCESS
        }
    };
    let _ = client.close();
    code
}
