//! `hylite-cli` — interactive REPL and one-shot client for hylite-server.
//!
//! ```text
//! hylite-cli [--addr 127.0.0.1:5433]              # REPL
//! hylite-cli --execute "SELECT 1 + 1"             # one statement, print, exit
//! hylite-cli --shutdown                           # graceful server shutdown
//! hylite-cli --backup DIR [--backup-base B] [--verify]  # online backup
//! hylite-cli --addr P --replicas R1,R2            # routed: reads spread over replicas
//! ```
//!
//! With `--replicas`, the CLI speaks through [`HyliteRouter`]: writes go
//! to `--addr` (the primary), reads round-robin across the replicas
//! under the chosen `--consistency` mode (`session`, the default,
//! guarantees read-your-own-writes; `any-replica` allows bounded
//! staleness), and a dead primary triggers automatic promotion of the
//! most caught-up replica unless `--no-failover` is given.
//!
//! In the REPL, statements end with `;` (possibly spanning lines);
//! `\q` quits, `\cancelinfo` prints the session id/secret usable with an
//! out-of-band cancel connection, `\metrics` dumps the server's metrics
//! (`hylite.metrics`), `\lag` shows replication progress
//! (`hylite.replication`), and `\route` shows where the router sent the
//! last statement plus its fleet counters.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Instant;

use hylite_client::{
    request_backup, request_shutdown, Consistency, HyliteClient, HyliteRouter, RemoteResult,
    RouterConfig,
};

struct Args {
    addr: String,
    replicas: Vec<String>,
    consistency: Consistency,
    no_failover: bool,
    execute: Option<String>,
    shutdown: bool,
    backup: Option<String>,
    backup_base: Option<String>,
    verify: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        addr: "127.0.0.1:5433".into(),
        replicas: Vec::new(),
        consistency: Consistency::Session,
        no_failover: false,
        execute: None,
        shutdown: false,
        backup: None,
        backup_base: None,
        verify: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                parsed.addr = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| "--addr requires a value".to_string())?;
            }
            "--replicas" => {
                i += 1;
                let list = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| "--replicas requires HOST:PORT[,HOST:PORT...]".to_string())?;
                parsed
                    .replicas
                    .extend(list.split(',').filter(|s| !s.is_empty()).map(String::from));
            }
            "--consistency" => {
                i += 1;
                parsed.consistency = match args.get(i).map(String::as_str) {
                    Some("session") => Consistency::Session,
                    Some("any-replica") => Consistency::AnyReplica,
                    other => {
                        return Err(format!(
                            "--consistency must be 'session' or 'any-replica', got {other:?}"
                        ))
                    }
                };
            }
            "--no-failover" => parsed.no_failover = true,
            "--execute" | "-e" => {
                i += 1;
                parsed.execute = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| "--execute requires a SQL string".to_string())?,
                );
            }
            "--shutdown" => parsed.shutdown = true,
            "--backup" => {
                i += 1;
                parsed.backup = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| "--backup requires a server-side directory".to_string())?,
                );
            }
            "--backup-base" => {
                i += 1;
                parsed.backup_base =
                    Some(args.get(i).cloned().ok_or_else(|| {
                        "--backup-base requires a server-side directory".to_string()
                    })?);
            }
            "--verify" => parsed.verify = true,
            "--help" | "-h" => {
                return Err(
                    "usage: hylite-cli [--addr HOST:PORT] [--replicas HOST:PORT,...] \
                     [--consistency session|any-replica] [--no-failover] \
                     [--execute SQL] [--shutdown] \
                     [--backup DIR [--backup-base DIR] [--verify]]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
        i += 1;
    }
    Ok(parsed)
}

/// One connection, direct or routed — the REPL doesn't care which.
enum Conn {
    Single(HyliteClient),
    Routed(Box<HyliteRouter>),
}

impl Conn {
    fn query(&mut self, sql: &str) -> hylite_common::Result<RemoteResult> {
        match self {
            Conn::Single(c) => c.query(sql),
            Conn::Routed(r) => r.query(sql),
        }
    }

    fn error_code(&self) -> Option<u16> {
        match self {
            Conn::Single(c) => c.last_error_code().map(|c| c.as_u16()),
            Conn::Routed(_) => None,
        }
    }
}

fn run_one(conn: &mut Conn, sql: &str) -> bool {
    let started = Instant::now();
    match conn.query(sql) {
        Ok(result) => {
            let elapsed = started.elapsed();
            if !result.schema.is_empty() {
                print!("{}", result.to_table_string());
                println!(
                    "({} row{}, {:.1} ms)",
                    result.row_count(),
                    if result.row_count() == 1 { "" } else { "s" },
                    elapsed.as_secs_f64() * 1e3
                );
            } else {
                println!(
                    "OK, {} row{} affected ({:.1} ms)",
                    result.rows_affected,
                    if result.rows_affected == 1 { "" } else { "s" },
                    elapsed.as_secs_f64() * 1e3
                );
            }
            true
        }
        Err(e) => {
            match conn.error_code() {
                Some(code) => eprintln!("error [{code}]: {e}"),
                None => eprintln!("error: {e}"),
            }
            false
        }
    }
}

/// `\lag` — replication progress, with a friendly message when the
/// server has nothing to report (pre-standalone-row servers).
fn show_lag(conn: &mut Conn) {
    match conn.query("SELECT * FROM hylite.replication") {
        Ok(result) if result.row_count() == 0 => println!("no replication configured"),
        Ok(result) => {
            print!("{}", result.to_table_string());
            println!("({} rows)", result.row_count());
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

fn show_route(conn: &Conn) {
    match conn {
        Conn::Single(_) => println!("not routed (single connection; use --replicas)"),
        Conn::Routed(r) => {
            match r.last_route() {
                Some(route) => println!("last statement: {route}"),
                None => println!("no statement routed yet"),
            }
            println!(
                "primary {}  replicas [{}]  consistency {}",
                r.primary_addr(),
                r.replica_addrs().join(", "),
                r.consistency()
            );
            let s = r.stats();
            println!(
                "writes {}  replica reads {}  primary reads {} ({} fallbacks)  \
                 probes {}  ejections {}  failovers {}",
                s.writes,
                s.reads_replica,
                s.reads_primary,
                s.primary_fallbacks,
                s.probes,
                s.ejections,
                s.failovers
            );
        }
    }
}

fn repl(conn: &mut Conn) {
    match conn {
        Conn::Single(c) => println!("hylite-cli connected (session {})", c.session_id()),
        Conn::Routed(r) => println!(
            "hylite-cli routed: primary {}, {} replica(s), {} consistency",
            r.primary_addr(),
            r.replica_addrs().len(),
            r.consistency()
        ),
    }
    println!("statements end with ';' — \\q quits, \\? lists meta-commands");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        print!(
            "{}",
            if buffer.is_empty() {
                "hylite> "
            } else {
                "   ...> "
            }
        );
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "" => continue,
                "\\q" | "exit" | "quit" => break,
                "\\cancelinfo" => {
                    match conn {
                        Conn::Single(c) => println!("{:?}", c.cancel_handle()),
                        Conn::Routed(_) => {
                            println!("\\cancelinfo is per-connection; not available when routed")
                        }
                    }
                    continue;
                }
                // Meta-commands over the system views: plain SQL under the
                // hood, so they work against any server (including replicas).
                "\\metrics" => {
                    run_one(conn, "SELECT * FROM hylite.metrics");
                    continue;
                }
                "\\lag" => {
                    show_lag(conn);
                    continue;
                }
                "\\route" => {
                    show_route(conn);
                    continue;
                }
                "\\backups" => {
                    run_one(conn, "SELECT * FROM hylite.backups");
                    continue;
                }
                "\\help" | "\\?" => {
                    println!(
                        "\\q quit  \\cancelinfo cancel credentials  \
                         \\metrics server metrics  \\lag replication status  \
                         \\route router status  \\backup DIR [FROM BASE] [VERIFY] online backup  \
                         \\backups last backup + archive state"
                    );
                    continue;
                }
                cmd if cmd.starts_with("\\backup ") => {
                    // `\backup DIR [FROM BASE] [VERIFY]` — sugar over the
                    // BACKUP SQL statement, so it works routed or direct.
                    let mut rest: Vec<&str> = cmd["\\backup ".len()..].split_whitespace().collect();
                    let verify = rest
                        .last()
                        .is_some_and(|w| w.eq_ignore_ascii_case("verify"));
                    if verify {
                        rest.pop();
                    }
                    let sql = match rest.as_slice() {
                        [dir] => Some(format!("BACKUP TO '{dir}'")),
                        [dir, from, base] if from.eq_ignore_ascii_case("from") => {
                            Some(format!("BACKUP TO '{dir}' FROM '{base}'"))
                        }
                        _ => None,
                    };
                    match sql {
                        Some(mut sql) => {
                            if verify {
                                sql.push_str(" VERIFY");
                            }
                            run_one(conn, &sql);
                        }
                        None => eprintln!("usage: \\backup DIR [FROM BASE] [VERIFY]"),
                    }
                    continue;
                }
                _ => {}
            }
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let sql = std::mem::take(&mut buffer);
            run_one(conn, sql.trim().trim_end_matches(';'));
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.shutdown {
        return match request_shutdown(&args.addr) {
            Ok(()) => {
                println!("shutdown requested");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(dir) = &args.backup {
        return match request_backup(&args.addr, dir, args.backup_base.as_deref(), args.verify) {
            Ok(report) => {
                println!(
                    "backup complete: lsn {}, {} segments copied, {} bytes",
                    report.lsn, report.segments, report.bytes
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("backup failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut conn = if args.replicas.is_empty() {
        match HyliteClient::connect(&args.addr) {
            Ok(c) => Conn::Single(c),
            Err(e) => {
                eprintln!("connect to {} failed: {e}", args.addr);
                return ExitCode::FAILURE;
            }
        }
    } else {
        let config = RouterConfig::new(&args.addr)
            .replicas(args.replicas.clone())
            .consistency(args.consistency)
            .auto_failover(!args.no_failover);
        match HyliteRouter::connect(config) {
            Ok(r) => Conn::Routed(Box::new(r)),
            Err(e) => {
                eprintln!("router connect to {} failed: {e}", args.addr);
                return ExitCode::FAILURE;
            }
        }
    };
    let code = match args.execute {
        Some(sql) => {
            if run_one(&mut conn, &sql) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        None => {
            repl(&mut conn);
            ExitCode::SUCCESS
        }
    };
    match conn {
        Conn::Single(c) => {
            let _ = c.close();
        }
        Conn::Routed(r) => r.close(),
    }
    code
}
