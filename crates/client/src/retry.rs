//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Admission control makes overload rejection (`Overloaded`,
//! `QueueTimeout`) a *normal* server answer, so a well-behaved client
//! retries it instead of surfacing it — but with exponential backoff so a
//! fleet of rejected clients does not immediately stampede back, and with
//! jitter so they do not all come back in lockstep. The policy is bounded
//! twice: a maximum attempt count and a wall-clock deadline, whichever
//! trips first.

use std::time::Duration;

use hylite_common::HyError;

/// When and how often to retry a retryable failure.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub initial_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Give up once the next sleep would cross this total elapsed budget.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            deadline: Duration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The full (pre-jitter) backoff for retry number `retry` (0-based):
    /// `initial_backoff * 2^retry`, capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = retry.min(20); // 2^20 × anything already saturates the cap
        self.initial_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff)
    }

    /// The backoff with jitter applied: uniform in `[backoff/2, backoff]`
    /// ("equal jitter"), derived deterministically from `seed` so tests
    /// can reproduce schedules.
    pub fn jittered_backoff(&self, retry: u32, seed: u64) -> Duration {
        let full = self.backoff(retry);
        let nanos = full.as_nanos() as u64;
        if nanos == 0 {
            return full;
        }
        let half = nanos / 2;
        let jitter = splitmix64(seed.wrapping_add(u64::from(retry))) % (nanos - half + 1);
        Duration::from_nanos(half + jitter)
    }
}

/// True when the failure is worth retrying: the server shed the work
/// without judging the SQL invalid (admission rejection, shutdown,
/// governed abort, disk-pressure degraded mode) or the connection could
/// not be established.
pub fn is_retryable(e: &HyError) -> bool {
    matches!(
        e,
        HyError::Unavailable(_)
            | HyError::Cancelled(_)
            | HyError::Timeout(_)
            | HyError::BudgetExceeded(_)
            | HyError::DiskFull(_)
    )
}

/// Annotate the error a retry loop gives up with, with how many attempts
/// were made — the variant (and therefore the wire error code and
/// retryability) is preserved, only the message grows a suffix, so a
/// caller reading "after 5 attempts" knows the budget was spent rather
/// than the first try failing.
pub fn with_attempts(e: HyError, attempts: u32) -> HyError {
    let annotate = |m: String| format!("{m} (after {attempts} attempts)");
    match e {
        HyError::Parse(m) => HyError::Parse(annotate(m)),
        HyError::Bind(m) => HyError::Bind(annotate(m)),
        HyError::Plan(m) => HyError::Plan(annotate(m)),
        HyError::Execution(m) => HyError::Execution(annotate(m)),
        HyError::Storage(m) => HyError::Storage(annotate(m)),
        HyError::Catalog(m) => HyError::Catalog(annotate(m)),
        HyError::Type(m) => HyError::Type(annotate(m)),
        HyError::Analytics(m) => HyError::Analytics(annotate(m)),
        HyError::Transaction(m) => HyError::Transaction(annotate(m)),
        HyError::Cancelled(m) => HyError::Cancelled(annotate(m)),
        HyError::Timeout(m) => HyError::Timeout(annotate(m)),
        HyError::BudgetExceeded(m) => HyError::BudgetExceeded(annotate(m)),
        HyError::Unavailable(m) => HyError::Unavailable(annotate(m)),
        HyError::ReadOnly(m) => HyError::ReadOnly(annotate(m)),
        HyError::DiskFull(m) => HyError::DiskFull(annotate(m)),
        HyError::Protocol(m) => HyError::Protocol(annotate(m)),
        HyError::Internal(m) => HyError::Internal(annotate(m)),
    }
}

/// SplitMix64: tiny, seedable, good-enough mixing for jitter (no `rand`
/// dependency needed).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            deadline: Duration::from_secs(60),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(80));
        assert_eq!(p.backoff(4), Duration::from_millis(100), "capped");
        assert_eq!(p.backoff(31), Duration::from_millis(100), "no overflow");
    }

    #[test]
    fn jitter_stays_in_equal_jitter_band_and_is_deterministic() {
        let p = RetryPolicy::default();
        for retry in 0..6 {
            let full = p.backoff(retry);
            for seed in 0..64u64 {
                let j = p.jittered_backoff(retry, seed);
                assert!(j >= full / 2 && j <= full, "retry {retry} seed {seed}");
                assert_eq!(j, p.jittered_backoff(retry, seed), "deterministic");
            }
        }
    }

    #[test]
    fn jitter_actually_varies_by_seed() {
        let p = RetryPolicy::default();
        let distinct: std::collections::BTreeSet<_> =
            (0..32u64).map(|s| p.jittered_backoff(3, s)).collect();
        assert!(
            distinct.len() > 16,
            "got {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn retryable_taxonomy() {
        assert!(is_retryable(&HyError::Unavailable("overloaded".into())));
        assert!(is_retryable(&HyError::Timeout("slow".into())));
        assert!(!is_retryable(&HyError::Parse("bad sql".into())));
        assert!(!is_retryable(&HyError::Protocol("bad frame".into())));
    }

    #[test]
    fn none_policy_has_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }
}
