//! Execution utilities: hashable row keys, predicate application.

use std::hash::{Hash, Hasher};

use hylite_common::{Chunk, Result, Value};
use hylite_expr::ScalarExpr;

/// A row of values usable as a hash-table key (GROUP BY keys, join keys,
/// DISTINCT). SQL grouping semantics: NULLs compare equal to each other;
/// floats hash by bit pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct HashableRow(pub Vec<Value>);

impl Eq for HashableRow {}

impl Hash for HashableRow {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            match v {
                Value::Null => 0u8.hash(state),
                Value::Int(x) => {
                    1u8.hash(state);
                    x.hash(state);
                }
                Value::Float(x) => {
                    2u8.hash(state);
                    // Normalize -0.0 to 0.0 so equal floats hash equally.
                    let x = if *x == 0.0 { 0.0 } else { *x };
                    x.to_bits().hash(state);
                }
                Value::Bool(x) => {
                    3u8.hash(state);
                    x.hash(state);
                }
                Value::Str(x) => {
                    4u8.hash(state);
                    x.hash(state);
                }
            }
        }
    }
}

/// Evaluate `exprs` over a chunk and materialize row `i`'s key.
pub fn key_columns(
    exprs: &[ScalarExpr],
    chunk: &Chunk,
) -> Result<Vec<hylite_common::ColumnVector>> {
    exprs.iter().map(|e| e.eval(chunk)).collect()
}

/// Materialize the key of row `i` from pre-evaluated key columns.
pub fn key_at(cols: &[hylite_common::ColumnVector], i: usize) -> HashableRow {
    HashableRow(cols.iter().map(|c| c.value(i)).collect())
}

/// Apply a boolean predicate to a chunk, returning the surviving rows.
pub fn apply_predicate(chunk: &Chunk, predicate: &ScalarExpr) -> Result<Chunk> {
    let col = predicate.eval(chunk)?;
    let sel = col.to_selection()?;
    Ok(chunk.filter(&sel))
}

/// Total rows across chunks.
pub fn total_rows(chunks: &[Chunk]) -> usize {
    chunks.iter().map(Chunk::len).sum()
}

/// Total heap bytes across chunks — the memory-budget charge for a
/// materialized intermediate. Columns shared between chunks via `Arc`
/// (e.g. working-table clones) are counted per reference, so this is an
/// upper bound on the true live set.
pub fn heap_bytes(chunks: &[Chunk]) -> u64 {
    chunks.iter().map(Chunk::heap_bytes).sum::<usize>() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{ColumnVector, DataType};
    use std::collections::HashSet;

    #[test]
    fn nulls_group_together() {
        let a = HashableRow(vec![Value::Null, Value::Int(1)]);
        let b = HashableRow(vec![Value::Null, Value::Int(1)]);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn negative_zero_equals_zero() {
        let a = HashableRow(vec![Value::Float(0.0)]);
        let b = HashableRow(vec![Value::Float(-0.0)]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn distinct_values_differ() {
        let mut set = HashSet::new();
        set.insert(HashableRow(vec![Value::Int(1)]));
        set.insert(HashableRow(vec![Value::Int(2)]));
        set.insert(HashableRow(vec![Value::from("1")]));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn predicate_filters() {
        let chunk = Chunk::new(vec![ColumnVector::from_i64(vec![1, 5, 3])]);
        let pred = ScalarExpr::binary(
            hylite_expr::BinaryOp::Gt,
            ScalarExpr::column(0, DataType::Int64),
            ScalarExpr::literal(2i64),
        )
        .unwrap();
        let out = apply_predicate(&chunk, &pred).unwrap();
        assert_eq!(out.column(0).as_i64().unwrap(), &[5, 3]);
    }
}
