//! Morsel-driven parallel table scans with fused filter/projection.

use hylite_common::governor::Governor;
use hylite_common::{Chunk, Result, CHUNK_ROWS};
use hylite_expr::ScalarExpr;
use hylite_storage::TableSnapshot;
use rayon::prelude::*;

/// Rows per scan morsel. A multiple of the execution chunk size so each
/// parallel task produces a handful of chunks.
pub const MORSEL_ROWS: usize = 32 * CHUNK_ROWS;

/// Scan a snapshot in parallel, applying the scan-local column projection
/// and pushed-down filter inside each morsel task (pipeline fusion).
///
/// Each morsel task starts with a governor check, so a cancelled or
/// timed-out statement stops the scan within one morsel even on very
/// large tables.
pub fn scan(
    snapshot: &TableSnapshot,
    projection: Option<&[usize]>,
    filter: Option<&ScalarExpr>,
    governor: &Governor,
) -> Result<Vec<Chunk>> {
    let morsels = snapshot.morsels(MORSEL_ROWS);
    let results: Vec<Result<Vec<Chunk>>> = morsels
        .par_iter()
        .map(|m| {
            governor.check()?;
            let (chunk, _ids) = snapshot.read_morsel(m);
            if chunk.is_empty() {
                return Ok(vec![]);
            }
            let chunk = match projection {
                Some(cols) => chunk.project(cols),
                None => chunk,
            };
            let chunk = match filter {
                Some(pred) => crate::util::apply_predicate(&chunk, pred)?,
                None => chunk,
            };
            if chunk.is_empty() {
                Ok(vec![])
            } else {
                Ok(vec![chunk])
            }
        })
        .collect();
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Scan returning both surviving chunks and their global row ids
/// (sequential; used by UPDATE/DELETE to locate target rows). Checks the
/// governor once per morsel.
pub fn scan_with_row_ids(
    snapshot: &TableSnapshot,
    filter: Option<&ScalarExpr>,
    governor: &Governor,
) -> Result<Vec<(Chunk, Vec<usize>)>> {
    let mut out = Vec::new();
    for m in snapshot.morsels(MORSEL_ROWS) {
        governor.check()?;
        let (chunk, ids) = snapshot.read_morsel(&m);
        if chunk.is_empty() {
            continue;
        }
        match filter {
            None => out.push((chunk, ids)),
            Some(pred) => {
                let col = pred.eval(&chunk)?;
                let sel = col.to_selection()?;
                let kept: Vec<usize> = sel.iter_ones().map(|i| ids[i]).collect();
                if !kept.is_empty() {
                    out.push((chunk.filter(&sel), kept));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{DataType, Field, Schema, Value};
    use hylite_expr::BinaryOp;
    use hylite_storage::Table;

    fn table(n: usize) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("v", DataType::Float64),
            ]),
        );
        let rows: Vec<Vec<Value>> = (0..n as i64)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 * 0.5)])
            .collect();
        t.insert_rows(&rows).unwrap();
        t.commit();
        t
    }

    #[test]
    fn full_scan_returns_all_rows() {
        let t = table(10_000);
        let chunks = scan(&t.snapshot(), None, None, &Governor::unlimited()).unwrap();
        assert_eq!(crate::util::total_rows(&chunks), 10_000);
    }

    #[test]
    fn projection_selects_columns() {
        let t = table(100);
        let chunks = scan(&t.snapshot(), Some(&[1]), None, &Governor::unlimited()).unwrap();
        assert_eq!(chunks[0].num_columns(), 1);
        assert_eq!(chunks[0].column(0).data_type(), DataType::Float64);
    }

    #[test]
    fn filter_fused_into_scan() {
        let t = table(1000);
        let pred = ScalarExpr::binary(
            BinaryOp::Lt,
            ScalarExpr::column(0, DataType::Int64),
            ScalarExpr::literal(10i64),
        )
        .unwrap();
        let chunks = scan(&t.snapshot(), None, Some(&pred), &Governor::unlimited()).unwrap();
        assert_eq!(crate::util::total_rows(&chunks), 10);
    }

    #[test]
    fn row_ids_track_matches() {
        let mut t = table(100);
        t.delete_rows(&[0, 1]).unwrap();
        t.commit();
        let pred = ScalarExpr::binary(
            BinaryOp::Lt,
            ScalarExpr::column(0, DataType::Int64),
            ScalarExpr::literal(5i64),
        )
        .unwrap();
        let hits = scan_with_row_ids(&t.snapshot(), Some(&pred), &Governor::unlimited()).unwrap();
        let ids: Vec<usize> = hits.iter().flat_map(|(_, ids)| ids.clone()).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }
}
