//! Morsel-driven parallel table scans with fused filter/projection.

use hylite_common::governor::Governor;
use hylite_common::{Chunk, Result, CHUNK_ROWS};
use hylite_expr::{BinaryOp, ScalarExpr};
use hylite_storage::{ScanPruning, TableSnapshot, ZoneRange};
use rayon::prelude::*;

/// Rows per scan morsel. A multiple of the execution chunk size so each
/// parallel task produces a handful of chunks.
pub const MORSEL_ROWS: usize = 32 * CHUNK_ROWS;

/// Collect the zone-map ranges implied by a pushed-down filter: every
/// conjunct of the form `col <cmp> literal` (either orientation) becomes
/// a [`ZoneRange`] on the underlying table column. Disjunctions, NULL
/// literals and computed operands contribute nothing, keeping pruning
/// conservative — the filter itself still runs over every surviving row.
///
/// The filter is evaluated against the *projected* chunk, so its column
/// indexes are translated through `projection` back into table columns
/// (the space zone maps live in).
pub fn extract_zone_ranges(filter: &ScalarExpr, projection: Option<&[usize]>) -> Vec<ZoneRange> {
    let mut out = Vec::new();
    collect_ranges(filter, projection, &mut out);
    out
}

fn collect_ranges(expr: &ScalarExpr, projection: Option<&[usize]>, out: &mut Vec<ZoneRange>) {
    let ScalarExpr::Binary {
        op, left, right, ..
    } = expr
    else {
        return;
    };
    match op {
        BinaryOp::And => {
            collect_ranges(left, projection, out);
            collect_ranges(right, projection, out);
        }
        BinaryOp::Eq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
            let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                (ScalarExpr::Column { index, .. }, ScalarExpr::Literal(v)) => (*index, v, *op),
                (ScalarExpr::Literal(v), ScalarExpr::Column { index, .. }) => {
                    (*index, v, flip(*op))
                }
                _ => return,
            };
            // `col <cmp> NULL` is never true; leave that to the filter.
            if lit.is_null() {
                return;
            }
            let col = projection.map_or(col, |p| p[col]);
            let (lower, upper) = match op {
                BinaryOp::Eq => (Some((lit.clone(), true)), Some((lit.clone(), true))),
                BinaryOp::Lt => (None, Some((lit.clone(), false))),
                BinaryOp::LtEq => (None, Some((lit.clone(), true))),
                BinaryOp::Gt => (Some((lit.clone(), false)), None),
                BinaryOp::GtEq => (Some((lit.clone(), true)), None),
                _ => unreachable!("comparison operators only"),
            };
            out.push(ZoneRange { col, lower, upper });
        }
        _ => {}
    }
}

/// Mirror a comparison for the `literal <cmp> col` orientation.
fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Scan a snapshot in parallel, applying the scan-local column projection
/// and pushed-down filter inside each morsel task (pipeline fusion).
///
/// Each morsel task starts with a governor check, so a cancelled or
/// timed-out statement stops the scan within one morsel even on very
/// large tables.
pub fn scan(
    snapshot: &TableSnapshot,
    projection: Option<&[usize]>,
    filter: Option<&ScalarExpr>,
    governor: &Governor,
) -> Result<Vec<Chunk>> {
    scan_pruned(snapshot, projection, filter, governor).map(|(chunks, _)| chunks)
}

/// [`scan`], additionally reporting how many disk blocks the zone maps
/// let the scan skip (for EXPLAIN ANALYZE and the scan telemetry).
pub fn scan_pruned(
    snapshot: &TableSnapshot,
    projection: Option<&[usize]>,
    filter: Option<&ScalarExpr>,
    governor: &Governor,
) -> Result<(Vec<Chunk>, ScanPruning)> {
    let ranges = filter.map_or_else(Vec::new, |f| extract_zone_ranges(f, projection));
    let (morsels, pruning) = snapshot.pruned_morsels(MORSEL_ROWS, &ranges);
    let results: Vec<Result<Vec<Chunk>>> = morsels
        .par_iter()
        .map(|m| {
            governor.check()?;
            let (chunk, _ids) = snapshot.read_morsel(m)?;
            if chunk.is_empty() {
                return Ok(vec![]);
            }
            let chunk = match projection {
                Some(cols) => chunk.project(cols),
                None => chunk,
            };
            let chunk = match filter {
                Some(pred) => crate::util::apply_predicate(&chunk, pred)?,
                None => chunk,
            };
            if chunk.is_empty() {
                Ok(vec![])
            } else {
                Ok(vec![chunk])
            }
        })
        .collect();
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok((out, pruning))
}

/// Scan returning both surviving chunks and their global row ids
/// (sequential; used by UPDATE/DELETE to locate target rows). Checks the
/// governor once per morsel.
pub fn scan_with_row_ids(
    snapshot: &TableSnapshot,
    filter: Option<&ScalarExpr>,
    governor: &Governor,
) -> Result<Vec<(Chunk, Vec<usize>)>> {
    let mut out = Vec::new();
    for m in snapshot.morsels(MORSEL_ROWS) {
        governor.check()?;
        let (chunk, ids) = snapshot.read_morsel(&m)?;
        if chunk.is_empty() {
            continue;
        }
        match filter {
            None => out.push((chunk, ids)),
            Some(pred) => {
                let col = pred.eval(&chunk)?;
                let sel = col.to_selection()?;
                let kept: Vec<usize> = sel.iter_ones().map(|i| ids[i]).collect();
                if !kept.is_empty() {
                    out.push((chunk.filter(&sel), kept));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::{DataType, Field, Schema, Value};
    use hylite_expr::BinaryOp;
    use hylite_storage::Table;

    fn table(n: usize) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("v", DataType::Float64),
            ]),
        );
        let rows: Vec<Vec<Value>> = (0..n as i64)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 * 0.5)])
            .collect();
        t.insert_rows(&rows).unwrap();
        t.commit();
        t
    }

    #[test]
    fn full_scan_returns_all_rows() {
        let t = table(10_000);
        let chunks = scan(&t.snapshot(), None, None, &Governor::unlimited()).unwrap();
        assert_eq!(crate::util::total_rows(&chunks), 10_000);
    }

    #[test]
    fn projection_selects_columns() {
        let t = table(100);
        let chunks = scan(&t.snapshot(), Some(&[1]), None, &Governor::unlimited()).unwrap();
        assert_eq!(chunks[0].num_columns(), 1);
        assert_eq!(chunks[0].column(0).data_type(), DataType::Float64);
    }

    #[test]
    fn filter_fused_into_scan() {
        let t = table(1000);
        let pred = ScalarExpr::binary(
            BinaryOp::Lt,
            ScalarExpr::column(0, DataType::Int64),
            ScalarExpr::literal(10i64),
        )
        .unwrap();
        let chunks = scan(&t.snapshot(), None, Some(&pred), &Governor::unlimited()).unwrap();
        assert_eq!(crate::util::total_rows(&chunks), 10);
    }

    #[test]
    fn row_ids_track_matches() {
        let mut t = table(100);
        t.delete_rows(&[0, 1]).unwrap();
        t.commit();
        let pred = ScalarExpr::binary(
            BinaryOp::Lt,
            ScalarExpr::column(0, DataType::Int64),
            ScalarExpr::literal(5i64),
        )
        .unwrap();
        let hits = scan_with_row_ids(&t.snapshot(), Some(&pred), &Governor::unlimited()).unwrap();
        let ids: Vec<usize> = hits.iter().flat_map(|(_, ids)| ids.clone()).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }
}
