//! Sorting and LIMIT/OFFSET.

use hylite_common::{Chunk, DataType, Result};
use hylite_planner::logical::SortKey;

/// Sort materialized chunks by the given keys (NULLs first, stable).
pub fn sort(chunks: &[Chunk], keys: &[SortKey], types: &[DataType]) -> Result<Vec<Chunk>> {
    let all = Chunk::concat(types, chunks)?;
    let n = all.len();
    if n <= 1 {
        return Ok(vec![all]);
    }
    let key_cols: Vec<hylite_common::ColumnVector> = keys
        .iter()
        .map(|k| k.expr.eval(&all))
        .collect::<Result<_>>()?;
    let mut indices: Vec<usize> = (0..n).collect();
    indices.sort_by(|&a, &b| {
        for (k, col) in keys.iter().zip(&key_cols) {
            let ord = col.value(a).sort_cmp(&col.value(b));
            let ord = if k.asc { ord } else { ord.reverse() };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(vec![all.take(&indices)])
}

/// Apply LIMIT/OFFSET to a chunk stream.
pub fn limit(chunks: Vec<Chunk>, limit: Option<usize>, offset: usize) -> Vec<Chunk> {
    let mut out = Vec::new();
    let mut skipped = 0usize;
    let mut taken = 0usize;
    for chunk in chunks {
        let mut start = 0usize;
        if skipped < offset {
            let skip_here = (offset - skipped).min(chunk.len());
            skipped += skip_here;
            start = skip_here;
        }
        if start >= chunk.len() {
            continue;
        }
        let available = chunk.len() - start;
        let want = match limit {
            Some(l) => {
                if taken >= l {
                    break;
                }
                available.min(l - taken)
            }
            None => available,
        };
        if want == 0 {
            continue;
        }
        taken += want;
        out.push(chunk.slice(start, want));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hylite_common::ColumnVector;
    use hylite_expr::ScalarExpr;

    fn chunks() -> Vec<Chunk> {
        vec![
            Chunk::new(vec![
                ColumnVector::from_i64(vec![3, 1]),
                ColumnVector::from_str(vec!["c", "a"]),
            ]),
            Chunk::new(vec![
                ColumnVector::from_i64(vec![2]),
                ColumnVector::from_str(vec!["b"]),
            ]),
        ]
    }

    fn types() -> Vec<DataType> {
        vec![DataType::Int64, DataType::Varchar]
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let keys = vec![SortKey {
            expr: ScalarExpr::column(0, DataType::Int64),
            asc: true,
        }];
        let out = sort(&chunks(), &keys, &types()).unwrap();
        assert_eq!(out[0].column(0).as_i64().unwrap(), &[1, 2, 3]);
        let keys = vec![SortKey {
            expr: ScalarExpr::column(0, DataType::Int64),
            asc: false,
        }];
        let out = sort(&chunks(), &keys, &types()).unwrap();
        assert_eq!(out[0].column(0).as_i64().unwrap(), &[3, 2, 1]);
    }

    #[test]
    fn multi_key_sort() {
        let c = Chunk::new(vec![
            ColumnVector::from_i64(vec![1, 1, 0]),
            ColumnVector::from_str(vec!["b", "a", "z"]),
        ]);
        let keys = vec![
            SortKey {
                expr: ScalarExpr::column(0, DataType::Int64),
                asc: true,
            },
            SortKey {
                expr: ScalarExpr::column(1, DataType::Varchar),
                asc: true,
            },
        ];
        let out = sort(&[c], &keys, &types()).unwrap();
        assert_eq!(
            out[0].column(1).as_varchar().unwrap(),
            &["z".to_string(), "a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn nulls_sort_first() {
        let mut col = ColumnVector::from_i64(vec![5]);
        col.push_null();
        let c = Chunk::new(vec![col]);
        let keys = vec![SortKey {
            expr: ScalarExpr::column(0, DataType::Int64),
            asc: true,
        }];
        let out = sort(&[c], &keys, &[DataType::Int64]).unwrap();
        assert!(out[0].column(0).value(0).is_null());
    }

    #[test]
    fn limit_and_offset_across_chunks() {
        let cs = chunks(); // rows: [3,1],[2]
        let out = limit(cs.clone(), Some(2), 0);
        assert_eq!(crate::util::total_rows(&out), 2);
        let out = limit(cs.clone(), Some(10), 1);
        assert_eq!(crate::util::total_rows(&out), 2);
        let out = limit(cs.clone(), Some(1), 2);
        assert_eq!(crate::util::total_rows(&out), 1);
        assert_eq!(out[0].column(0).as_i64().unwrap(), &[2]);
        let out = limit(cs, None, 5);
        assert_eq!(crate::util::total_rows(&out), 0);
    }
}
