//! Glue between the plan's analytics nodes and the `hylite-analytics`
//! operator implementations: materialize subplan inputs, run the
//! operator, shape the output relation.

use hylite_analytics::{
    class_stats, kmeans_assign, kmeans_governed, pagerank_governed, KMeansConfig, NaiveBayesModel,
    PageRankConfig,
};
use hylite_common::{Chunk, ColumnVector, DataType, HyError, Result};
use hylite_expr::BoundLambda;
use hylite_graph::CsrGraph;
use hylite_planner::LogicalPlan;
use std::sync::Arc;

use crate::executor::Executor;

impl Executor {
    /// Report an iterative analytics operator's run into the metrics
    /// registry (`<op>.runs`, `<op>.iterations_total`, `<op>.iteration_us`)
    /// and annotate the operator's profile span.
    fn record_iterations(
        &mut self,
        op: &str,
        iterations: usize,
        converged: bool,
        iter_micros: &[u64],
    ) {
        {
            let m = self.ctx.metrics();
            m.counter(&format!("{op}.runs")).inc();
            m.counter(&format!("{op}.iterations_total"))
                .add(iterations as u64);
            let per_iter = m.histogram(&format!("{op}.iteration_us"));
            for &us in iter_micros {
                per_iter.record(us);
            }
        }
        self.ctx.stats.iterations += iterations;
        self.ctx.profile_note("iterations", iterations);
        self.ctx.profile_note("converged", converged);
    }

    /// KMEANS(data, centers, λ, max_iter) → (cluster_id, dims..., size).
    pub(crate) fn exec_kmeans(
        &mut self,
        data: &LogicalPlan,
        centers: &LogicalPlan,
        lambda: Option<&BoundLambda>,
        max_iterations: usize,
    ) -> Result<Vec<Chunk>> {
        let data_chunks = self.execute(data)?;
        let center_rows = self.centers_matrix(centers)?;
        let governor = Arc::clone(self.ctx.governor());
        let result = kmeans_governed(
            &data_chunks,
            center_rows,
            lambda,
            &KMeansConfig { max_iterations },
            &governor,
        )?;
        self.record_iterations(
            "kmeans",
            result.iterations,
            result.converged,
            &result.iter_micros,
        );
        // Per-iteration centroid shift, scaled to integer micro-units for
        // the log-scale histogram.
        {
            let shift = self.ctx.metrics().histogram("kmeans.centroid_shift_micro");
            for &s in &result.shift_history {
                shift.record((s * 1e6) as u64);
            }
        }
        if let Some(&last) = result.shift_history.last() {
            self.ctx
                .profile_note("final_centroid_shift", format!("{last:.6}"));
        }
        let k = result.centers.len();
        let d = result.centers.first().map_or(0, Vec::len);
        let mut cols: Vec<ColumnVector> = Vec::with_capacity(d + 2);
        cols.push(ColumnVector::from_i64((0..k as i64).collect()));
        for dim in 0..d {
            cols.push(ColumnVector::from_f64(
                result.centers.iter().map(|c| c[dim]).collect(),
            ));
        }
        cols.push(ColumnVector::from_i64(
            result.sizes.iter().map(|&s| s as i64).collect(),
        ));
        Ok(vec![Chunk::new(cols)])
    }

    /// KMEANS_ASSIGN(data, centers, λ) → (dims..., cluster_id).
    pub(crate) fn exec_kmeans_assign(
        &mut self,
        data: &LogicalPlan,
        centers: &LogicalPlan,
        lambda: Option<&BoundLambda>,
    ) -> Result<Vec<Chunk>> {
        let data_chunks = self.execute(data)?;
        let center_rows = self.centers_matrix(centers)?;
        let assignments = kmeans_assign(&data_chunks, &center_rows, lambda)?;
        let out = data_chunks
            .iter()
            .zip(assignments)
            .map(|(chunk, assign)| {
                let mut cols = chunk.columns().to_vec();
                cols.push(std::sync::Arc::new(ColumnVector::from_i64(
                    assign.into_iter().map(i64::from).collect(),
                )));
                Chunk::from_arc_columns(cols)
            })
            .collect();
        Ok(out)
    }

    /// PAGERANK(edges, d, ε, max_iter) → (vertex, rank).
    pub(crate) fn exec_pagerank(
        &mut self,
        edges: &LogicalPlan,
        weighted: bool,
        damping: f64,
        epsilon: f64,
        max_iterations: usize,
    ) -> Result<Vec<Chunk>> {
        let edge_chunks = self.execute(edges)?;
        let governor = Arc::clone(self.ctx.governor());
        // Flatten the edge list into (src, dest[, weight]) arrays.
        let mut src = Vec::new();
        let mut dest = Vec::new();
        let mut weights = Vec::new();
        for chunk in &edge_chunks {
            let s = chunk.column(0);
            let d = chunk.column(1);
            if s.null_count() > 0 || d.null_count() > 0 {
                return Err(HyError::Analytics(
                    "PAGERANK edge list must not contain NULLs".into(),
                ));
            }
            src.extend_from_slice(s.as_i64()?);
            dest.extend_from_slice(d.as_i64()?);
            if weighted {
                let w = chunk.column(2);
                if w.null_count() > 0 {
                    return Err(HyError::Analytics(
                        "PAGERANK edge weights must not contain NULLs".into(),
                    ));
                }
                weights.extend_from_slice(w.as_f64()?);
            }
        }
        // Query-local CSR with dense re-labeling (§6.3).
        let config = PageRankConfig {
            damping,
            epsilon,
            max_iterations,
        };
        // Charge the flattened edge arrays for the duration of the run.
        let edge_bytes = (src.len() + dest.len()) as u64 * 8 + weights.len() as u64 * 8;
        let _edges_charge = governor.reserve_scoped(edge_bytes)?;
        let (graph, result) = if weighted {
            let (graph, csr_weights) = CsrGraph::from_weighted_edges(&src, &dest, &weights)?;
            let result = hylite_analytics::pagerank::pagerank_weighted_governed(
                &graph,
                &csr_weights,
                &config,
                &governor,
            )?;
            (graph, result)
        } else {
            let graph = CsrGraph::from_edges(&src, &dest)?;
            let result = pagerank_governed(&graph, &config, &governor)?;
            (graph, result)
        };
        self.record_iterations(
            "pagerank",
            result.iterations,
            result.converged,
            &result.iter_micros,
        );
        // Per-iteration residual (summed |Δrank|), scaled to integer
        // nano-units — residuals shrink toward ε ≈ 1e-9.
        {
            let residual = self.ctx.metrics().histogram("pagerank.residual_nano");
            for &r in &result.residual_history {
                residual.record((r * 1e9) as u64);
            }
        }
        if let Some(&last) = result.residual_history.last() {
            self.ctx
                .profile_note("final_residual", format!("{last:.3e}"));
        }
        // Reverse mapping back to the original vertex ids.
        let vertices: Vec<i64> = (0..graph.num_vertices() as u32)
            .map(|v| graph.mapping().to_original(v))
            .collect();
        Ok(vec![Chunk::new(vec![
            ColumnVector::from_i64(vertices),
            ColumnVector::from_f64(result.ranks),
        ])])
    }

    /// NAIVE_BAYES_TRAIN(data) → (class, attribute, prior, mean, stddev).
    pub(crate) fn exec_nb_train(
        &mut self,
        data: &LogicalPlan,
        feature_names: &[String],
        output_types: &[DataType],
    ) -> Result<Vec<Chunk>> {
        let chunks = self.execute(data)?;
        let governor = Arc::clone(self.ctx.governor());
        let model = NaiveBayesModel::train_governed(&chunks, feature_names, &governor)?;
        let rows = model.to_rows();
        Ok(vec![Chunk::from_rows(output_types, &rows)?])
    }

    /// NAIVE_BAYES_PREDICT(model, data) → (features..., label).
    pub(crate) fn exec_nb_predict(
        &mut self,
        model: &LogicalPlan,
        data: &LogicalPlan,
        feature_names: &[String],
    ) -> Result<Vec<Chunk>> {
        let model_chunks = self.execute(model)?;
        let model = NaiveBayesModel::from_relation(&model_chunks, feature_names)?;
        let data_chunks = self.execute(data)?;
        let labels = model.predict(&data_chunks)?;
        let out = data_chunks
            .iter()
            .zip(labels)
            .map(|(chunk, label_col)| {
                let mut cols = chunk.columns().to_vec();
                cols.push(std::sync::Arc::new(label_col));
                Chunk::from_arc_columns(cols)
            })
            .collect();
        Ok(out)
    }

    /// CLASS_STATS(data) → (class, attribute, count, mean, stddev, min, max).
    pub(crate) fn exec_class_stats(
        &mut self,
        data: &LogicalPlan,
        feature_names: &[String],
        output_types: &[DataType],
    ) -> Result<Vec<Chunk>> {
        let chunks = self.execute(data)?;
        let rows: Vec<Vec<hylite_common::Value>> = class_stats(&chunks, feature_names)?
            .iter()
            .map(|r| r.to_values())
            .collect();
        Ok(vec![Chunk::from_rows(output_types, &rows)?])
    }

    /// Materialize a centers subplan into a k×d row-major matrix.
    fn centers_matrix(&mut self, centers: &LogicalPlan) -> Result<Vec<Vec<f64>>> {
        let chunks = self.execute(centers)?;
        let mut rows = Vec::new();
        for chunk in &chunks {
            let cols: Vec<&[f64]> = (0..chunk.num_columns())
                .map(|i| {
                    if chunk.column(i).null_count() > 0 {
                        return Err(HyError::Analytics(
                            "k-Means centers must not contain NULLs".into(),
                        ));
                    }
                    chunk.column(i).as_f64()
                })
                .collect::<Result<_>>()?;
            for i in 0..chunk.len() {
                rows.push(cols.iter().map(|c| c[i]).collect());
            }
        }
        if rows.is_empty() {
            return Err(HyError::Analytics(
                "k-Means requires a non-empty centers relation".into(),
            ));
        }
        Ok(rows)
    }
}
