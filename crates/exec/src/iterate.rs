//! Iteration constructs: the SQL:1999 recursive CTE (appending) and the
//! paper's ITERATE operator (non-appending, §5.1).

use std::collections::HashSet;
use std::sync::Arc;

use hylite_common::{Chunk, HyError, Result};
use hylite_planner::LogicalPlan;

use crate::executor::Executor;
use crate::util::{total_rows, HashableRow};

/// Infinite-loop guard for recursive CTEs — the paper notes both
/// constructs "can produce infinite loops \[which\] need to be detected and
/// aborted by the database system".
pub const MAX_RECURSION_DEPTH: usize = 1_000_000;

impl Executor {
    /// Execute `WITH RECURSIVE name AS (init UNION [ALL] step)`.
    ///
    /// Appending semantics: the result accumulates every iteration's
    /// tuples. With `UNION` (not ALL) rows are de-duplicated and the
    /// fixpoint is reached when no *new* row appears; with `UNION ALL`
    /// iteration ends when the step yields no rows.
    pub(crate) fn exec_recursive_cte(
        &mut self,
        name: &str,
        init: &LogicalPlan,
        step: &LogicalPlan,
        all: bool,
    ) -> Result<Vec<Chunk>> {
        let types = init.schema().types();
        let mut working = self.execute(init)?;
        let mut seen: HashSet<HashableRow> = HashSet::new();
        if !all {
            working = dedup_against(&types, working, &mut seen)?;
        }
        let mut result: Vec<Chunk> = working.clone();
        let mut depth = 0usize;
        while total_rows(&working) > 0 {
            // One check per iteration: a cancelled or timed-out statement
            // stops the recursion within one step execution.
            self.ctx.check_governor()?;
            depth += 1;
            self.ctx.stats.iterations += 1;
            if depth > MAX_RECURSION_DEPTH {
                return Err(HyError::Execution(format!(
                    "recursive CTE '{name}' exceeded {MAX_RECURSION_DEPTH} iterations \
                     (infinite loop guard)"
                )));
            }
            self.ctx.push_working(name, Arc::new(working));
            let step_result = self.execute(step);
            self.ctx.pop_working(name);
            let mut new = step_result?;
            if !all {
                new = dedup_against(&types, new, &mut seen)?;
            }
            if total_rows(&new) == 0 {
                break;
            }
            result.extend(new.iter().cloned());
            // Appending semantics: the accumulated result is the live
            // intermediate state (this is what §5.1 charges the CTE for).
            self.ctx.stats.observe_working_rows(total_rows(&result));
            working = new;
        }
        self.ctx
            .metrics()
            .counter("cte.iterations_total")
            .add(depth as u64);
        self.ctx.profile_note("iterations", depth);
        self.ctx
            .profile_note("accumulated_rows", total_rows(&result));
        Ok(result)
    }

    /// Execute the non-appending `ITERATE(init, step, stop)` operator.
    ///
    /// The working table holds only the previous iteration; each step
    /// *replaces* it. Iteration stops when the stop subquery produces at
    /// least one row, or at `max_iterations`.
    pub(crate) fn exec_iterate(
        &mut self,
        init: &LogicalPlan,
        step: &LogicalPlan,
        stop: &LogicalPlan,
        max_iterations: usize,
    ) -> Result<Vec<Chunk>> {
        let mut current = Arc::new(self.execute(init)?);
        let budgeted = self.ctx.governor().budget().limit() != u64::MAX;
        let mut iterations = 0usize;
        loop {
            // One check per iteration: a cancelled or timed-out statement
            // stops the loop within one step execution.
            self.ctx.check_governor()?;
            self.ctx.push_working("iterate", Arc::clone(&current));
            let stop_rows = self.execute(stop);
            let stop_now = match &stop_rows {
                Ok(chunks) => {
                    // The stop subquery's output dies immediately; refund
                    // its budget charge so long loops don't accumulate it.
                    if budgeted {
                        self.ctx.release_scoped(crate::util::heap_bytes(chunks));
                    }
                    total_rows(chunks) > 0
                }
                Err(_) => {
                    self.ctx.pop_working("iterate");
                    stop_rows?;
                    unreachable!();
                }
            };
            if stop_now || iterations >= max_iterations {
                self.ctx.pop_working("iterate");
                break;
            }
            iterations += 1;
            self.ctx.stats.iterations += 1;
            let next = self.execute(step);
            self.ctx.pop_working("iterate");
            let next = next?;
            // At most two generations alive: `current` (previous) and
            // `next`. Record that before dropping the old generation.
            self.ctx
                .stats
                .observe_working_rows(total_rows(&current) + total_rows(&next));
            // Non-appending semantics: the old generation is dead once
            // replaced — refund its budget charge mid-loop.
            if budgeted {
                self.ctx.release_scoped(crate::util::heap_bytes(&current));
            }
            current = Arc::new(next);
        }
        self.ctx
            .metrics()
            .counter("iterate.iterations_total")
            .add(iterations as u64);
        self.ctx.profile_note("iterations", iterations);
        self.ctx
            .profile_note("peak_working_rows", self.ctx.stats.peak_working_rows);
        Ok(Arc::try_unwrap(current).unwrap_or_else(|a| (*a).clone()))
    }
}

/// Keep only rows not yet in `seen`, inserting the survivors.
fn dedup_against(
    types: &[hylite_common::DataType],
    chunks: Vec<Chunk>,
    seen: &mut HashSet<HashableRow>,
) -> Result<Vec<Chunk>> {
    let mut cols: Vec<hylite_common::ColumnVector> = types
        .iter()
        .map(|&t| hylite_common::ColumnVector::empty(t))
        .collect();
    let mut kept = 0usize;
    for chunk in &chunks {
        for i in 0..chunk.len() {
            let row = HashableRow(chunk.row(i).into_values());
            if seen.insert(row.clone()) {
                for (c, v) in row.0.iter().enumerate() {
                    cols[c].push_value(v)?;
                }
                kept += 1;
            }
        }
    }
    if kept == total_rows(&chunks) {
        return Ok(chunks);
    }
    Ok(vec![Chunk::new(cols)])
}
